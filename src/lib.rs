//! # cagra-repro — a Rust reproduction of CAGRA (ICDE 2024)
//!
//! This facade crate re-exports the whole workspace so downstream
//! users can depend on one crate:
//!
//! * [`cagra`] — the paper's contribution: fixed-degree proximity
//!   graph construction (NN-Descent + rank-based reordering + reverse
//!   edges) and the iterative top-M search with single-/multi-CTA
//!   mappings.
//! * [`dataset`], [`distance`], [`graph`], [`knn`] — substrates:
//!   vector storage (FP32/FP16), metrics, graph analysis (SCC, 2-hop),
//!   exact k-NN and NN-Descent.
//! * [`gpu_sim`] — the timing-functional A100 model used in place of
//!   real CUDA hardware (see DESIGN.md for the substitution argument).
//! * [`hnsw`], [`nssg`], [`ggnn`], [`ganns`] — the paper's comparison
//!   methods, implemented from scratch.
//! * [`eval`] — the per-figure experiment harness
//!   (`cargo run -p eval --release -- all`).
//!
//! ## Quickstart
//!
//! ```
//! use cagra_repro::prelude::*;
//!
//! // 1k random 32-dim vectors.
//! let spec = SynthSpec { dim: 32, n: 1000, queries: 1, family: Family::Gaussian, seed: 7 };
//! let (base, queries) = spec.generate();
//!
//! // Build the CAGRA graph (degree 16) and search it.
//! let (index, _report) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(16));
//! let hits = index.search(queries.row(0), 5, &SearchParams::for_k(5));
//! assert_eq!(hits.len(), 5);
//! assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
//! ```

pub use cagra;
pub use dataset;
pub use distance;
pub use eval;
pub use ganns;
pub use ggnn;
pub use gpu_sim;
pub use graph;
pub use hnsw;
pub use knn;
pub use nssg;
pub use song;

/// The types most applications need.
pub mod prelude {
    pub use cagra::build::GraphConfig;
    pub use cagra::search::planner::{choose, Mode, Thresholds};
    pub use cagra::{CagraIndex, HashPolicy, SearchParams};
    pub use dataset::synth::{Family, SynthSpec};
    pub use dataset::{Dataset, DatasetF16, VectorStore};
    pub use distance::Metric;
    pub use knn::topk::Neighbor;
}
