#!/bin/bash
cd /root/repo
echo "=== fig16 (reduced ladder n=1000) ==="
CAGRA_N=1000 CAGRA_QUERIES=150 ./target/release/eval fig16 > results/fig16.txt 2>&1
echo "=== fig13 (new binary: INT8 + serial-queue model) ==="
./target/release/eval fig13 > results/fig13.txt 2>&1
echo "=== ext-search ==="
CAGRA_N=3000 CAGRA_QUERIES=150 ./target/release/eval ext-search > results/ext_search.txt 2>&1
echo "=== headline (n=2000) ==="
CAGRA_N=2000 CAGRA_QUERIES=100 ./target/release/eval headline > results/headline.txt 2>&1
echo "=== ext-shard ==="
CAGRA_N=3000 CAGRA_QUERIES=100 ./target/release/eval ext-shard > results/ext_shard.txt 2>&1
echo "=== fig9 at n=8000 ==="
CAGRA_N=8000 ./target/release/eval fig9 > results/fig9_n8000.txt 2>&1
echo FINAL_DONE
