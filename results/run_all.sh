#!/bin/bash
# Regenerates every table/figure. Scale via CAGRA_N etc.
cd /root/repo
for exp in table1 fig3 fig4 fig5 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 headline ext-shard; do
  echo "=== running $exp ==="
  ./target/release/eval $exp > results/$exp.txt 2>&1 || echo "FAILED: $exp"
done
echo "=== running fig9 at CAGRA_N=8000 (scale check) ==="
CAGRA_N=8000 ./target/release/eval fig9 > results/fig9_n8000.txt 2>&1 || echo "FAILED: fig9_n8000"
echo ALL_EXPERIMENTS_DONE
