//! Quickstart: build a CAGRA index over random vectors and search it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cagra_repro::prelude::*;

fn main() {
    // A synthetic workload: 20k Gaussian vectors in 64 dimensions plus
    // 5 held-out queries. Swap in `dataset::io::read_fvecs` to load a
    // real fvecs file instead.
    let spec = SynthSpec { dim: 64, n: 20_000, queries: 5, family: Family::Gaussian, seed: 42 };
    let (base, queries) = spec.generate();

    // Build: NN-Descent initial graph (d_init = 2d) + CAGRA
    // optimization (rank-based reordering, pruning, reverse edges).
    let t0 = std::time::Instant::now();
    let (index, report) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(32));
    println!(
        "built CAGRA graph: {} nodes, degree {}, in {:.2?} (kNN {:.2?} + optimize {:.2?})",
        index.graph().len(),
        index.graph().degree(),
        t0.elapsed(),
        report.knn_time,
        report.opt_time,
    );

    // Search: k = 10 with default parameters. Single queries
    // automatically dispatch to the multi-CTA style mapping (Fig. 7).
    let params = SearchParams::for_k(10);
    for qi in 0..queries.len() {
        let results = index.search(queries.row(qi), 10, &params);
        let ids: Vec<u32> = results.iter().map(|n| n.id).collect();
        println!("query {qi}: top-10 = {ids:?} (nearest dist {:.3})", results[0].dist);
    }

    // Batch mode: all queries at once, thread-parallel.
    let batch = index.search_batch(&queries, 10, &params);
    assert_eq!(batch.len(), queries.len());
    println!("batch search returned {} result lists", batch.len());
}
