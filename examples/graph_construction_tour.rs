//! A guided tour of CAGRA graph construction (Figs. 1 and 2 of the
//! paper) on a dataset small enough to print: watch the k-NN lists
//! become ranks, the detourable-route counts reorder each list, and
//! the reverse edges interleave into the final fixed-degree graph.
//!
//! ```text
//! cargo run --release --example graph_construction_tour
//! ```

use cagra::optimize::{detour_counts_rank, merge, reverse_lists};
use cagra_repro::prelude::*;
use knn::flat::KnnLists;
use knn::nn_descent::exact_all_pairs;

fn main() {
    // 12 points on a noisy circle: enough structure for detours.
    let mut flat = Vec::new();
    for i in 0..12 {
        let t = i as f32 / 12.0 * std::f32::consts::TAU;
        let wobble = if i % 3 == 0 { 0.25 } else { 0.0 };
        flat.extend_from_slice(&[(1.0 + wobble) * t.cos(), (1.0 + wobble) * t.sin()]);
    }
    let base = Dataset::from_flat(flat, 2);
    let d_init = 6;
    let d = 4;

    // Stage 1: exact k-NN lists, sorted by distance — list position is
    // the *initial rank* the optimization uses in place of distances.
    let knn = KnnLists::from_rows(&exact_all_pairs(&base, Metric::SquaredL2, d_init, 1));
    println!("initial {d_init}-NN lists (id:rank, sorted by distance):");
    for (v, list) in knn.rows().enumerate() {
        let row: Vec<String> =
            list.iter().enumerate().map(|(r, n)| format!("{}@r{r}", n.id)).collect();
        println!("  node {v:>2}: {}", row.join("  "));
    }

    // Stage 2: detourable-route counts (Eq. 3, rank form). An edge
    // X->Y with many two-hop detours max(rank) < rank(X->Y) is
    // redundant and gets pushed back in the reorder.
    println!("\ndetourable-route counts per edge (rank criterion):");
    for v in 0..knn.len() {
        let counts = detour_counts_rank(&knn, v);
        let row: Vec<String> =
            knn.row(v).iter().zip(&counts).map(|(n, c)| format!("{}:{c}", n.id)).collect();
        println!("  node {v:>2}: {}", row.join("  "));
    }

    // Stage 3: full optimization = reorder + prune + reverse + merge.
    let opts = cagra::optimize::OptimizeOptions::new(d);
    let graph = cagra::optimize::optimize(&knn, &base, Metric::SquaredL2, &opts);
    println!("\nfinal CAGRA graph (degree {d}):");
    for v in 0..graph.len() {
        println!("  node {v:>2} -> {:?}", graph.neighbors(v));
    }

    // The pieces, shown separately: pruned forward lists and the
    // rank-sorted reverse lists they interleave with.
    let pruned: Vec<Vec<u32>> = knn.rows().map(|l| l[..d].iter().map(|n| n.id).collect()).collect();
    let reversed = reverse_lists(&pruned, d);
    println!("\nreverse lists (sorted by forward rank — \"someone who");
    println!("considers you more important is also more important to you\"):");
    for (v, list) in reversed.iter().enumerate() {
        println!("  node {v:>2} <- {list:?}");
    }
    let merged = merge(&pruned, &reversed, d);
    println!("\nmerge(pruned, reversed) without reordering, for contrast:");
    for v in 0..merged.len() {
        println!("  node {v:>2} -> {:?}", merged.neighbors(v));
    }

    // Reachability before/after, the Fig. 3 quantities.
    use graph::stats::graph_stats;
    use graph::AdjacencyGraph;
    let knn_graph: Vec<Vec<u32>> =
        knn.rows().map(|l| l[..d].iter().map(|n| n.id).collect()).collect();
    let before = graph_stats(&AdjacencyGraph::from_lists(&knn_graph), 1);
    let after = graph_stats(&AdjacencyGraph::from_fixed(&graph), 1);
    println!(
        "\nreachability: knn graph  -> strong CC {}, avg 2-hop {:.1}",
        before.strong_cc, before.avg_two_hop
    );
    println!(
        "reachability: CAGRA graph -> strong CC {}, avg 2-hop {:.1}",
        after.strong_cc, after.avg_two_hop
    );
}
