//! Multi-GPU sharding — the deployment the paper recommends when a
//! dataset outgrows one device's memory (Sec. IV-C2, Q-C5).
//!
//! Builds independent CAGRA graphs over contiguous shards, answers
//! queries by searching every shard and merging, verifies recall is
//! preserved, and prices the deployment on the multi-device simulator.
//!
//! ```text
//! cargo run --release --example sharded_deployment
//! ```

use cagra::ShardedIndex;
use cagra_repro::prelude::*;
use gpu_sim::{simulate_sharded_batch, DeviceSpec, Mapping};
use knn::brute::ground_truth;

fn main() {
    let spec = SynthSpec { dim: 96, n: 40_000, queries: 100, family: Family::Gaussian, seed: 21 };
    let (base, queries) = spec.generate();
    let gt = ground_truth(&base, Metric::SquaredL2, &queries, 10);

    let shards = 4;
    let (index, reports) =
        ShardedIndex::build(&base, Metric::SquaredL2, &GraphConfig::new(32), shards);
    println!(
        "built {shards} shards over {} vectors; per-shard build times: {:?}",
        index.len(),
        reports.iter().map(|r| r.total()).collect::<Vec<_>>()
    );

    // Search every query across all shards, collecting per-shard
    // traces for the device model.
    let params = SearchParams::for_k(10);
    let mut shard_traces: Vec<Vec<cagra::search::trace::SearchTrace>> =
        (0..shards).map(|_| Vec::with_capacity(queries.len())).collect();
    let mut hits = 0usize;
    for (qi, ids) in gt.iter().enumerate() {
        let (results, traces) = index.search_traced(queries.row(qi), 10, &params, Mode::SingleCta);
        for (s, t) in traces.into_iter().enumerate() {
            shard_traces[s].push(t);
        }
        let truth: std::collections::HashSet<u32> = ids.iter().copied().collect();
        hits += results.iter().filter(|n| truth.contains(&n.id)).count();
    }
    println!("sharded recall@10 = {:.4}", hits as f64 / (queries.len() * 10) as f64);

    // Price the same batch on `shards` simulated A100s.
    let device = DeviceSpec::a100();
    let timing = simulate_sharded_batch(&device, &shard_traces, 96, 4, 8, Mapping::SingleCta);
    println!(
        "simulated {} x {}: batch of {} in {:.3} ms -> {:.0} QPS (slowest shard bound)",
        shards,
        device.name,
        queries.len(),
        timing.seconds * 1e3,
        timing.qps
    );
    for (s, t) in timing.per_device.iter().enumerate() {
        println!(
            "  shard {s}: {:.3} ms compute, {:.3} ms bandwidth",
            t.compute_seconds * 1e3,
            t.bandwidth_seconds * 1e3
        );
    }
}
