//! Semantic document search — the large-batch, embedding-shaped
//! workload from the paper's introduction (recommenders, retrieval).
//!
//! Uses a clustered "embedding-like" distribution (the hard case in
//! the paper's evaluation), compares FP32 against FP16 storage, and
//! reports measured recall against exact ground truth.
//!
//! ```text
//! cargo run --release --example semantic_search
//! ```

use cagra_repro::prelude::*;
use knn::brute::ground_truth;

fn recall(results: &[Vec<Neighbor>], gt: &[Vec<u32>], k: usize) -> f64 {
    let mut hit = 0;
    for (res, truth) in results.iter().zip(gt) {
        for t in truth.iter().take(k) {
            if res.iter().any(|n| n.id == *t) {
                hit += 1;
            }
        }
    }
    hit as f64 / (gt.len() * k) as f64
}

fn main() {
    // "Document embeddings": 30k points in 200 dims with heavy cluster
    // overlap — mimics GloVe, the paper's canonical hard dataset.
    let spec = SynthSpec {
        dim: 200,
        n: 30_000,
        queries: 500,
        family: Family::Clustered { clusters: 128, spread: 1.0 },
        seed: 7,
    };
    let (base, queries) = spec.generate();
    println!("corpus: {} embeddings x {} dims, {} queries", base.len(), base.dim(), queries.len());

    let gt = ground_truth(&base, Metric::SquaredL2, &queries, 10);

    // Hard datasets want a higher degree (Table I gives GloVe d=80;
    // scaled here).
    let (index, report) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(48));
    println!("index built in {:.2?}", report.total());

    // FP32 search at increasing widths: the recall/throughput knob.
    let mut params = SearchParams::for_k(10);
    for itopk in [32usize, 64, 128, 256] {
        params.itopk = itopk;
        let t0 = std::time::Instant::now();
        let results = index.search_batch(&queries, 10, &params);
        let qps = queries.len() as f64 / t0.elapsed().as_secs_f64();
        println!(
            "fp32 itopk={itopk:>4}: recall@10 = {:.4}, {:>8.0} QPS (host CPU)",
            recall(&results, &gt, 10),
            qps
        );
    }

    // FP16 storage: half the memory traffic (the paper's Fig. 13
    // lever), same graph, nearly identical recall.
    let half = index.store().to_f16();
    let index16 = CagraIndex::from_parts(half, index.graph().clone(), Metric::SquaredL2);
    params.itopk = 128;
    let results = index16.search_batch(&queries, 10, &params);
    println!(
        "fp16 itopk= 128: recall@10 = {:.4} ({} bytes/vector vs {} for fp32)",
        recall(&results, &gt, 10),
        index16.store().bytes_per_vector(),
        index.store().bytes_per_vector(),
    );
}
