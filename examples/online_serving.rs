//! Online (single-query) serving — the latency-sensitive regime of
//! the paper's Fig. 14, where the multi-CTA mapping keeps a GPU busy
//! with one query.
//!
//! Demonstrates the Fig. 7 implementation-choice rule, per-query
//! latency percentiles on the host, and the simulated-A100 latency
//! derived from the recorded kernel trace.
//!
//! ```text
//! cargo run --release --example online_serving
//! ```

use cagra_repro::prelude::*;
use gpu_sim::{simulate_batch, DeviceSpec, Mapping};

fn main() {
    let spec = SynthSpec { dim: 96, n: 50_000, queries: 200, family: Family::Gaussian, seed: 3 };
    let (base, queries) = spec.generate();
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(32));

    let params = SearchParams::for_k(10);

    // The paper's dispatch rule: batch 1 -> multi-CTA; a 10k batch
    // with small itopk -> single-CTA.
    let t = Thresholds::default();
    assert_eq!(choose(1, params.itopk, t), Mode::MultiCta);
    assert_eq!(choose(10_000, params.itopk, t), Mode::SingleCta);
    println!(
        "dispatch: batch=1 -> {:?}, batch=10k -> {:?}",
        choose(1, params.itopk, t),
        choose(10_000, params.itopk, t)
    );

    // Serve queries one at a time and collect latencies.
    let mut host_lat_us: Vec<f64> = Vec::with_capacity(queries.len());
    let mut sim_lat_us: Vec<f64> = Vec::with_capacity(queries.len());
    let device = DeviceSpec::a100();
    for qi in 0..queries.len() {
        let t0 = std::time::Instant::now();
        let (results, trace) = index.search_mode(queries.row(qi), 10, &params, Mode::MultiCta);
        host_lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(results.len(), 10);
        let sim = simulate_batch(&device, &[trace], 96, 4, params.team_size, Mapping::MultiCta);
        sim_lat_us.push(sim.seconds * 1e6);
    }

    let pct = |v: &mut Vec<f64>, p: f64| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[((v.len() - 1) as f64 * p) as usize]
    };
    println!(
        "host CPU latency: p50 = {:.0} us, p99 = {:.0} us",
        pct(&mut host_lat_us.clone(), 0.5),
        pct(&mut host_lat_us.clone(), 0.99)
    );
    println!(
        "simulated A100 latency (multi-CTA, {} workers): p50 = {:.1} us, p99 = {:.1} us",
        params.num_cta,
        pct(&mut sim_lat_us.clone(), 0.5),
        pct(&mut sim_lat_us.clone(), 0.99)
    );
}
