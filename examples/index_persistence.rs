//! Build once, search forever: persist the CAGRA graph and the dataset
//! to disk and reload them — the reuse pattern the paper motivates
//! ("a proximity graph can be reused once it is constructed").
//!
//! Writes standard `fvecs` for vectors and the compact `CAGR` binary
//! format for the graph, so artifacts interoperate with the TexMex
//! tooling ecosystem.
//!
//! ```text
//! cargo run --release --example index_persistence
//! ```

use cagra_repro::prelude::*;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("cagra_repro_example");
    std::fs::create_dir_all(&dir)?;
    let vec_path = dir.join("base.fvecs");
    let graph_path = dir.join("graph.cagra");

    // Build and persist.
    let spec = SynthSpec { dim: 48, n: 10_000, queries: 3, family: Family::Gaussian, seed: 11 };
    let (base, queries) = spec.generate();
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(16));
    dataset::io::write_fvecs(BufWriter::new(File::create(&vec_path)?), index.store())?;
    graph::io::write_fixed(BufWriter::new(File::create(&graph_path)?), index.graph())?;
    println!(
        "persisted {} vectors to {} and the degree-{} graph to {}",
        index.store().len(),
        vec_path.display(),
        index.graph().degree(),
        graph_path.display()
    );

    // Reload into a fresh index — no rebuild.
    let base2 = dataset::io::read_fvecs(BufReader::new(File::open(&vec_path)?))?;
    let graph2 = graph::io::read_fixed(BufReader::new(File::open(&graph_path)?))?;
    let reloaded = CagraIndex::from_parts(base2, graph2, Metric::SquaredL2);

    // Identical results from the original and the reloaded index.
    let params = SearchParams::for_k(5);
    for qi in 0..queries.len() {
        let a = index.search(queries.row(qi), 5, &params);
        let b = reloaded.search(queries.row(qi), 5, &params);
        assert_eq!(a, b, "reloaded index must search identically");
        println!("query {qi}: {:?}", a.iter().map(|n| n.id).collect::<Vec<_>>());
    }
    println!("reloaded index verified");
    Ok(())
}
