//! Offline stand-in for `serde`.
//!
//! Nothing in this workspace serializes at runtime (there is no
//! `serde_json` and no `Serializer` anywhere); the derives exist so
//! that public structs carry the usual annotations and stay
//! source-compatible with the real crate. `Serialize`/`Deserialize`
//! are therefore marker traits with blanket impls, and the derive
//! macros (re-exported from `serde_derive`) expand to nothing while
//! accepting `#[serde(...)]` helper attributes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
