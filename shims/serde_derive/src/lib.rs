//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The workspace's `Serialize`/`Deserialize` impls are blanket impls
//! on marker traits (see the `serde` shim), so the derives only need
//! to exist — and accept `#[serde(...)]` helper attributes — while
//! expanding to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
