//! Offline stand-in for the `bytes` crate: just the little-endian
//! cursor reads over `&[u8]` and appends onto `Vec<u8>` the graph
//! serializers use.

/// Sequential little-endian reads from a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential little-endian writes onto a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut out = Vec::new();
        out.put_slice(b"hdr");
        out.put_u32_le(7);
        out.put_u64_le(u64::MAX - 1);
        let mut cur = &out[..];
        let mut hdr = [0u8; 3];
        cur.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(cur.get_u32_le(), 7);
        assert_eq!(cur.get_u64_le(), u64::MAX - 1);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        cur.get_u32_le();
    }
}
