//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-group API surface the `bench` crate uses
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `sample_size` / `warm_up_time` / `measurement_time`, `b.iter`)
//! with a plain wall-clock harness: warm up, calibrate an iteration
//! count per sample, take N samples, report median/min/max ns per
//! iteration. No statistics beyond that — the goal is honest,
//! reproducible relative numbers, not criterion's full analysis.
//!
//! Results are printed to stdout and written as
//! `BENCH_<group-slug>.json` under `target/bench-json` (override the
//! directory with `CAGRA_BENCH_JSON_DIR`), so CI and scripts can
//! diff runs without parsing log text.

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (one per `criterion_group!`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(150),
            measurement_time: Duration::from_millis(600),
            results: Vec::new(),
            finished: false,
        }
    }
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier, as in upstream criterion.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Debug)]
struct BenchResult {
    name: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters_per_sample: u64,
    samples: usize,
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<BenchResult>,
    finished: bool,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget spread across the samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(id.id, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(id.id, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, name: String, mut f: F) {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Warm-up: also yields a per-iteration time estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut iters = 1u64;
        while warm_start.elapsed() < self.warm_up_time {
            b.iters = iters;
            f(&mut b);
            warm_iters += iters;
            iters = iters.saturating_mul(2).min(1 << 20);
        }
        let warm_elapsed = warm_start.elapsed().max(Duration::from_nanos(1));
        let est_ns = (warm_elapsed.as_nanos() as f64 / warm_iters.max(1) as f64).max(0.5);

        // Calibrate so `sample_size` samples fill `measurement_time`.
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / est_ns) as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters_per_sample;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let (min, max) = (samples_ns[0], samples_ns[samples_ns.len() - 1]);

        println!(
            "{}/{}: median {:.1} ns/iter (min {:.1}, max {:.1}, {} iters x {} samples)",
            self.name, name, median, min, max, iters_per_sample, self.sample_size
        );
        self.results.push(BenchResult {
            name,
            median_ns: median,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            iters_per_sample,
            samples: samples_ns.len(),
        });
    }

    /// Finish the group, writing its JSON report.
    pub fn finish(&mut self) {
        self.finished = true;
        let dir = std::env::var("CAGRA_BENCH_JSON_DIR")
            .unwrap_or_else(|_| "target/bench-json".to_string());
        let slug: String =
            self.name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"group\": \"{}\",", self.name.replace('"', "\\\""));
        let _ = writeln!(json, "  \"benchmarks\": [");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "    {{\"name\": \"{}\", \"median_ns\": {:.2}, \"mean_ns\": {:.2}, \
                 \"min_ns\": {:.2}, \"max_ns\": {:.2}, \"iters_per_sample\": {}, \
                 \"samples\": {}}}{}",
                r.name.replace('"', "\\\""),
                r.median_ns,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.iters_per_sample,
                r.samples,
                comma,
            );
        }
        let _ = writeln!(json, "  ]");
        let _ = writeln!(json, "}}");
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = std::path::Path::new(&dir).join(format!("BENCH_{slug}.json"));
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

impl Drop for BenchmarkGroup {
    fn drop(&mut self) {
        if !self.finished && !self.results.is_empty() {
            self.finish();
        }
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        std::env::set_var("CAGRA_BENCH_JSON_DIR", std::env::temp_dir().join("bench-json-test"));
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim/self-test");
        g.sample_size(3);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        g.bench_function("count", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
        let path = std::env::temp_dir().join("bench-json-test").join("BENCH_shim_self_test.json");
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"group\": \"shim/self-test\""));
        assert!(text.contains("\"name\": \"count\""));
        assert!(text.contains("\"name\": \"param/7\""));
    }
}
