//! Offline stand-in for `loom`.
//!
//! Real `loom` runs a model closure under a controlled scheduler and
//! *exhaustively explores* every interleaving of the `loom::sync` /
//! `loom::thread` operations inside it. This shim provides the same
//! API surface — [`model`], [`thread::spawn`], the [`sync`] mirror of
//! `std::sync` — but explores by **bounded stress iteration** instead:
//! the closure runs [`iterations`] times on real OS threads, relying
//! on scheduling noise to vary interleavings. That is strictly weaker
//! than loom's exhaustive search (it can miss rare orderings) but
//! keeps the `cfg(loom)` model tests compilable and runnable in this
//! workspace's offline environments; when the real crate is available
//! the same tests run unmodified under the genuine checker because
//! only the `loom` package identity changes, not the API.
//!
//! API subset provided: `loom::model`, `loom::thread::{spawn,
//! yield_now, JoinHandle}`, `loom::sync::{Arc, Mutex, MutexGuard}`,
//! and `loom::sync::atomic::*`. As in real loom, models must keep
//! thread counts tiny (loom's own limit is 4 including main) and
//! bound their loops.

/// Number of stress iterations per [`model`] call: `LOOM_ITERS` env
/// var, default 64. (Real loom instead enumerates interleavings until
/// the state space is exhausted.)
pub fn iterations() -> usize {
    std::env::var("LOOM_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Run `f` repeatedly, as the model entry point. Panics inside the
/// closure (assertion failures on any iteration, from any spawned
/// thread that the closure joins) fail the model.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..iterations() {
        f();
    }
}

pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_spawned_threads_to_completion() {
        let total = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&total);
        super::model(move || {
            let c = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    super::thread::spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2);
            t.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), super::iterations());
    }
}
