//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the poison-free `Mutex` API the workspace uses is provided.
//! Poisoning is neutralized by unwrapping into the inner guard, which
//! matches `parking_lot` semantics (a panicking holder does not make
//! the lock unusable).

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutex with `parking_lot`'s panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (no poison error, as in `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// RwLock with `parking_lot`'s panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
