//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand` it actually calls: a seedable
//! generator (`StdRng`), uniform ranges (`gen_range`), the `Standard`
//! distribution (`gen`), Bernoulli draws (`gen_bool`), slice
//! shuffling, and the `Distribution` trait. The generator is
//! xoshiro256++ seeded through SplitMix64 — not the ChaCha12 stream
//! of upstream `StdRng`, so absolute draw values differ from real
//! `rand`, but every property the workspace relies on (determinism
//! for a fixed seed, uniformity good enough for recall experiments)
//! holds.

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64
            // cannot produce four zero outputs in a row, but guard
            // anyway.
            if s.iter().all(|&x| x == 0) {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// A value-producing distribution (subset of `rand`'s trait).
    pub trait Distribution<T> {
        /// Sample one value using `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The `Standard` distribution: canonical uniform values
    /// (floats in `[0, 1)`, integers over their full range).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<u32> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Draw from the [`distributions::Standard`] distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let unit = ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Sample from an explicit distribution.
    #[inline]
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
