//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest 1.x surface this workspace's
//! property tests use: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!`, numeric-range and tuple
//! strategies, `proptest::collection::vec`, `any::<T>()`, and
//! `Strategy::prop_map` / `prop_flat_map`.
//!
//! Differences from upstream: no shrinking (a failing case reports
//! the raw inputs' assertion message only), and the default case
//! count is 32 instead of 256 so the tier-1 suite stays fast. Both
//! can be tuned: `PROPTEST_CASES` overrides the default count, and
//! `#![proptest_config(ProptestConfig { cases: N, .. })]` works as
//! upstream. Case generation is deterministic per test name, so
//! failures reproduce across runs.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
        /// Upper bound on rejected (`prop_assume!`) cases before the
        /// test aborts, expressed as a multiple of `cases`.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32);
            ProptestConfig { cases, max_global_rejects: 1024 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` precondition failed; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic per-test generator.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seed from a test's fully qualified name (FNV-1a fold), so
        /// each test draws a stable, independent stream.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Next raw 64 bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw from `lo..=hi`.
        #[inline]
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            let span = hi - lo + 1;
            if span == 0 {
                // Full u64 range.
                self.next_u64()
            } else {
                lo + self.next_u64() % span
            }
        }

        /// Uniform draw from `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values (no shrinking in this stand-in).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each generated value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A constant strategy (upstream `Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Strategy covering a type's full value range.
    #[derive(Clone, Copy, Debug)]
    pub struct Full<T>(PhantomData<T>);

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Full<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Full<T> {
        Full(PhantomData)
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            // Finite values only: keeps arithmetic-heavy property
            // tests meaningful, as upstream's default does for floats.
            ((rng.unit_f64() - 0.5) * 2e6) as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2e12
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a vector strategy (`proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` followed by `#[test] fn` items whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        assert!(
                            __rejected < __config.max_global_rejects,
                            "proptest: too many prop_assume! rejections \
                             ({__rejected} rejects, {__accepted}/{} cases)",
                            __config.cases,
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {msg}\n\
                             (offline proptest stand-in: no shrinking)",
                            __accepted + 1,
                            __config.cases,
                        );
                    }
                }
            }
        }
    )*};
}

/// `assert!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} == {} failed: left = {:?}, right = {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                file!(),
                line!(),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}: left = {:?}, right = {:?}",
                format!($($fmt)+),
                __l,
                __r,
            )));
        }
    }};
}

/// `assert_ne!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} != {} failed: both = {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                __l,
                file!(),
                line!(),
            )));
        }
    }};
}

/// Skip the current generated case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (2usize..=24).generate(&mut rng);
            assert!((2..=24).contains(&w));
            let f = (-1e6f32..1e6).generate(&mut rng);
            assert!((-1e6..1e6).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_obeys_size_bounds() {
        let mut rng = TestRng::from_name("vecsize");
        let s = crate::collection::vec(0u32..10, 3..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let fixed = crate::collection::vec(0u32..10, 4usize);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
    }

    #[test]
    fn flat_map_composes() {
        let mut rng = TestRng::from_name("flatmap");
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0..n as u32, n..=n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| (x as usize) < v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_tuples((a, b) in (0u32..10, 0u32..10), c in any::<u64>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = c;
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + 1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
