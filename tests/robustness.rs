//! Torture tests: degenerate and adversarial datasets that a
//! production index must survive — duplicates, constant vectors,
//! dimension 1, huge magnitudes — across every index in the workspace.

use cagra_repro::prelude::*;
use ganns::{Ganns, GannsParams};
use ggnn::{Ggnn, GgnnParams};
use hnsw::{Hnsw, HnswParams};
use nssg::{Nssg, NssgParams};

/// Dataset where every vector appears four times.
fn duplicate_heavy(n: usize, dim: usize) -> Dataset {
    let spec = SynthSpec { dim, n: n / 4, queries: 0, family: Family::Gaussian, seed: 3 };
    let (base, _) = spec.generate();
    let mut flat = Vec::with_capacity(n * dim);
    for _ in 0..4 {
        flat.extend_from_slice(base.as_flat());
    }
    Dataset::from_flat(flat, dim)
}

#[test]
fn cagra_survives_duplicate_heavy_data() {
    let base = duplicate_heavy(800, 6);
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8));
    assert_eq!(index.graph().self_loops(), 0);
    let q = index.store().row(0).to_vec();
    let out = index.search(&q, 5, &SearchParams::for_k(5));
    assert_eq!(out.len(), 5);
    // All four duplicates of the query point are at distance zero.
    assert!(out.iter().take(4).all(|n| n.dist == 0.0), "{out:?}");
}

#[test]
fn baselines_survive_duplicate_heavy_data() {
    let base = duplicate_heavy(400, 4);
    let clone = |d: &Dataset| Dataset::from_flat(d.as_flat().to_vec(), d.dim());

    let h = Hnsw::build(clone(&base), Metric::SquaredL2, HnswParams::new(6));
    assert_eq!(h.search(base.row(1), 3, 32).len(), 3);

    let (g, _) = Nssg::build(clone(&base), Metric::SquaredL2, NssgParams::new(6));
    assert_eq!(g.search(base.row(1), 3, 32, 0).len(), 3);

    let (g, _) = Ggnn::build(clone(&base), Metric::SquaredL2, GgnnParams::new(6));
    assert_eq!(g.search(base.row(1), 3, 32, 0).0.len(), 3);

    let (g, _) = Ganns::build(clone(&base), Metric::SquaredL2, GannsParams::new(4));
    assert_eq!(g.search(base.row(1), 3, 32, 0).0.len(), 3);
}

#[test]
fn one_dimensional_data_works_end_to_end() {
    let base = Dataset::from_flat((0..500).map(|i| i as f32 * 0.37).collect(), 1);
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8));
    let out = index.search(&[37.0], 3, &SearchParams::for_k(3));
    // 37.0 / 0.37 = 100: the nearest 1-D points are 100, 99 or 101.
    assert_eq!(out[0].id, 100);
    assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
}

#[test]
fn huge_magnitudes_do_not_overflow_distances() {
    let spec = SynthSpec { dim: 4, n: 300, queries: 5, family: Family::Gaussian, seed: 8 };
    let (mut base_src, queries_src) = spec.generate();
    // Scale everything to 1e18; squared L2 would overflow f32 if the
    // kernels squared raw values of this size... verify behaviour is
    // still ordered (inf-safe top-k) and search terminates.
    let scaled: Vec<f32> = base_src.as_flat().iter().map(|x| x * 1e18).collect();
    base_src = Dataset::from_flat(scaled, 4);
    let (index, _) = CagraIndex::build(base_src, Metric::SquaredL2, &GraphConfig::new(8));
    let q: Vec<f32> = queries_src.row(0).iter().map(|x| x * 1e18).collect();
    let out = index.search(&q, 3, &SearchParams::for_k(3));
    assert_eq!(out.len(), 3);
}

#[test]
fn constant_dataset_terminates() {
    // Every vector identical: all distances tie at zero.
    let base = Dataset::from_flat(vec![1.0; 200 * 4], 4);
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8));
    let out = index.search(&[1.0, 1.0, 1.0, 1.0], 5, &SearchParams::for_k(5));
    assert_eq!(out.len(), 5);
    assert!(out.iter().all(|n| n.dist == 0.0));
    // Deterministic tie-break: ids ascending.
    let ids: Vec<u32> = out.iter().map(|n| n.id).collect();
    assert_eq!(ids, vec![0, 1, 2, 3, 4]);
}

#[test]
fn cosine_metric_end_to_end() {
    let spec = SynthSpec { dim: 16, n: 1500, queries: 30, family: Family::UnitSphere, seed: 12 };
    let (base, queries) = spec.generate();
    let gt = knn::brute::ground_truth(&base, Metric::Cosine, &queries, 10);
    let (index, _) = CagraIndex::build(base, Metric::Cosine, &GraphConfig::new(16));
    let mut hits = 0usize;
    for (qi, ids) in gt.iter().enumerate() {
        let out = index.search(queries.row(qi), 10, &SearchParams::for_k(10));
        let truth: std::collections::HashSet<u32> = ids.iter().copied().collect();
        hits += out.iter().filter(|n| truth.contains(&n.id)).count();
    }
    let recall = hits as f64 / (queries.len() * 10) as f64;
    assert!(recall > 0.9, "cosine recall@10 = {recall}");
}

#[test]
fn inner_product_metric_end_to_end() {
    let spec = SynthSpec { dim: 12, n: 1200, queries: 30, family: Family::Gaussian, seed: 14 };
    let (base, queries) = spec.generate();
    let gt = knn::brute::ground_truth(&base, Metric::InnerProduct, &queries, 10);
    let (index, _) = CagraIndex::build(base, Metric::InnerProduct, &GraphConfig::new(16));
    let mut hits = 0usize;
    for (qi, ids) in gt.iter().enumerate() {
        let out = index.search(queries.row(qi), 10, &SearchParams::for_k(10));
        let truth: std::collections::HashSet<u32> = ids.iter().copied().collect();
        hits += out.iter().filter(|n| truth.contains(&n.id)).count();
    }
    // MIPS over a graph built for it: weaker than L2 (inner product is
    // not a metric) but must be far above chance.
    let recall = hits as f64 / (queries.len() * 10) as f64;
    assert!(recall > 0.6, "inner-product recall@10 = {recall}");
}

#[test]
fn int8_store_is_searchable_with_modest_recall_loss() {
    let spec = SynthSpec { dim: 24, n: 1500, queries: 30, family: Family::Gaussian, seed: 16 };
    let (base, queries) = spec.generate();
    let gt = knn::brute::ground_truth(&base, Metric::SquaredL2, &queries, 10);
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(16));
    let index8 =
        CagraIndex::from_parts(index.store().to_i8(), index.graph().clone(), Metric::SquaredL2);
    let params = SearchParams::for_k(10);
    let score = |idx: &dyn Fn(usize) -> Vec<Neighbor>| {
        let mut hits = 0usize;
        for (qi, ids) in gt.iter().enumerate() {
            let out = idx(qi);
            let truth: std::collections::HashSet<u32> = ids.iter().copied().collect();
            hits += out.iter().filter(|n| truth.contains(&n.id)).count();
        }
        hits as f64 / (queries.len() * 10) as f64
    };
    let r32 = score(&|qi| index.search(queries.row(qi), 10, &params));
    let r8 = score(&|qi| index8.search(queries.row(qi), 10, &params));
    assert!(r32 > 0.9, "fp32 recall {r32}");
    assert!(r8 > r32 - 0.1, "int8 recall {r8} vs fp32 {r32}");
}

#[test]
fn smallest_viable_dataset_for_each_method() {
    // CAGRA needs n > d_init; everything else should cope with tiny n.
    let spec = SynthSpec { dim: 4, n: 40, queries: 2, family: Family::Gaussian, seed: 5 };
    let (base, queries) = spec.generate();
    let clone = |d: &Dataset| Dataset::from_flat(d.as_flat().to_vec(), d.dim());

    let (index, _) = CagraIndex::build(clone(&base), Metric::SquaredL2, &GraphConfig::new(8));
    assert_eq!(index.search(queries.row(0), 3, &SearchParams::for_k(3)).len(), 3);

    let h = Hnsw::build(clone(&base), Metric::SquaredL2, HnswParams::new(4));
    assert_eq!(h.search(queries.row(0), 3, 16).len(), 3);

    let (g, _) = Nssg::build(clone(&base), Metric::SquaredL2, NssgParams::new(4));
    assert_eq!(g.search(queries.row(0), 3, 16, 0).len(), 3);
}
