//! Integration: on-disk round trips through real files (fvecs dataset
//! + CAGR graph) reproduce identical search results.

use cagra_repro::prelude::*;
use std::fs::File;
use std::io::{BufReader, BufWriter};

#[test]
fn full_index_round_trips_through_disk() {
    let dir = std::env::temp_dir().join(format!("cagra_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let spec = SynthSpec { dim: 16, n: 800, queries: 5, family: Family::Gaussian, seed: 5 };
    let (base, queries) = spec.generate();
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8));

    let vec_path = dir.join("base.fvecs");
    let graph_path = dir.join("graph.bin");
    dataset::io::write_fvecs(BufWriter::new(File::create(&vec_path).unwrap()), index.store())
        .unwrap();
    graph::io::write_fixed(BufWriter::new(File::create(&graph_path).unwrap()), index.graph())
        .unwrap();

    let base2 = dataset::io::read_fvecs(BufReader::new(File::open(&vec_path).unwrap())).unwrap();
    let graph2 = graph::io::read_fixed(BufReader::new(File::open(&graph_path).unwrap())).unwrap();
    assert_eq!(base2.as_flat(), index.store().as_flat());
    assert_eq!(&graph2, index.graph());

    let reloaded = CagraIndex::from_parts(base2, graph2, Metric::SquaredL2);
    let params = SearchParams::for_k(5);
    for qi in 0..queries.len() {
        assert_eq!(
            index.search(queries.row(qi), 5, &params),
            reloaded.search(queries.row(qi), 5, &params),
            "query {qi}"
        );
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ground_truth_round_trips_as_ivecs() {
    let spec = SynthSpec { dim: 8, n: 300, queries: 10, family: Family::Gaussian, seed: 9 };
    let (base, queries) = spec.generate();
    let gt = knn::brute::ground_truth(&base, Metric::SquaredL2, &queries, 10);

    let dir = std::env::temp_dir().join(format!("cagra_gt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gt.ivecs");
    dataset::io::write_ivecs(BufWriter::new(File::create(&path).unwrap()), &gt).unwrap();
    let back = dataset::io::read_ivecs(BufReader::new(File::open(&path).unwrap())).unwrap();
    assert_eq!(gt, back);
    std::fs::remove_dir_all(&dir).unwrap();
}
