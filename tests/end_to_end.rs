//! Cross-crate integration: every index in the workspace builds over
//! the same dataset and reaches its expected recall floor, and CAGRA's
//! full pipeline (dataset -> NN-Descent -> optimize -> search ->
//! gpu-sim costing) holds together end to end.

use cagra_repro::prelude::*;
use ganns::{Ganns, GannsParams};
use ggnn::{Ggnn, GgnnParams};
use gpu_sim::{simulate_batch, DeviceSpec, Mapping};
use hnsw::{Hnsw, HnswParams};
use knn::brute::ground_truth;
use nssg::{Nssg, NssgParams};

const N: usize = 3000;
const DIM: usize = 24;
const K: usize = 10;

fn workload() -> (Dataset, Dataset, Vec<Vec<u32>>) {
    let spec = SynthSpec { dim: DIM, n: N, queries: 60, family: Family::Gaussian, seed: 0xeefe };
    let (base, queries) = spec.generate();
    let gt = ground_truth(&base, Metric::SquaredL2, &queries, K);
    (base, queries, gt)
}

fn recall(results: &[Vec<Neighbor>], gt: &[Vec<u32>]) -> f64 {
    let mut hit = 0;
    for (res, truth) in results.iter().zip(gt) {
        for t in truth {
            if res.iter().any(|n| n.id == *t) {
                hit += 1;
            }
        }
    }
    hit as f64 / (gt.len() * K) as f64
}

fn clone_of(base: &Dataset) -> Dataset {
    Dataset::from_flat(base.as_flat().to_vec(), base.dim())
}

#[test]
fn cagra_pipeline_end_to_end() {
    let (base, queries, gt) = workload();
    let (index, report) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(16));
    assert!(report.total().as_secs_f64() > 0.0);
    assert_eq!(index.graph().degree(), 16);
    assert_eq!(index.graph().self_loops(), 0);

    let mut params = SearchParams::for_k(K);
    params.itopk = 128;
    let out =
        index.search_batch_traced(&queries, K, &params, cagra::search::planner::Mode::SingleCta);
    let results: Vec<_> = out.iter().map(|(r, _)| r.clone()).collect();
    let r = recall(&results, &gt);
    assert!(r > 0.9, "CAGRA recall@10 = {r}");

    // Traces cost on the device model with sane magnitudes.
    let traces: Vec<_> = out.into_iter().map(|(_, t)| t).collect();
    let timing = simulate_batch(&DeviceSpec::a100(), &traces, DIM, 4, 8, Mapping::SingleCta);
    assert!(timing.qps > 1000.0, "simulated QPS {} too low to be plausible", timing.qps);
    assert!(timing.seconds < 1.0, "60 queries cannot take {}s on an A100", timing.seconds);
}

#[test]
fn all_baselines_reach_their_floors() {
    let (base, queries, gt) = workload();

    let h = Hnsw::build(clone_of(&base), Metric::SquaredL2, HnswParams::new(8));
    let r = recall(&h.search_batch(&queries, K, 128), &gt);
    assert!(r > 0.9, "HNSW recall {r}");

    let (g, _) = Nssg::build(clone_of(&base), Metric::SquaredL2, NssgParams::new(16));
    let r = recall(&g.search_batch(&queries, K, 128), &gt);
    assert!(r > 0.85, "NSSG recall {r}");

    let (g, _) = Ggnn::build(clone_of(&base), Metric::SquaredL2, GgnnParams::new(16));
    let results: Vec<_> = g.search_batch(&queries, K, 128).into_iter().map(|(r, _)| r).collect();
    let r = recall(&results, &gt);
    assert!(r > 0.85, "GGNN recall {r}");

    let (g, _) = Ganns::build(clone_of(&base), Metric::SquaredL2, GannsParams::new(8));
    let results: Vec<_> = g.search_batch(&queries, K, 128).into_iter().map(|(r, _)| r).collect();
    let r = recall(&results, &gt);
    assert!(r > 0.85, "GANNS recall {r}");
}

#[test]
fn cagra_beats_its_own_unoptimized_knn_graph() {
    // The optimization exists to improve search: at equal degree and
    // equal search settings, the CAGRA graph must reach at least the
    // recall of the truncated k-NN graph it started from.
    let (base, queries, gt) = workload();
    let d = 16;
    let knn = knn::NnDescent::new(knn::NnDescentParams::new(2 * d)).build(&base, Metric::SquaredL2);
    let plain_rows: Vec<Vec<u32>> =
        knn.rows().map(|l| l[..d].iter().map(|n| n.id).collect()).collect();
    let plain = graph::FixedDegreeGraph::from_rows(&plain_rows, d);
    let opts = cagra::optimize::OptimizeOptions::new(d);
    let optimized = cagra::optimize::optimize(&knn, &base, Metric::SquaredL2, &opts);

    let params = SearchParams::for_k(K);
    let search = |g: &graph::FixedDegreeGraph| {
        let index = CagraIndex::from_parts(clone_of(&base), g.clone(), Metric::SquaredL2);
        let out = index.search_batch(&queries, K, &params);
        recall(&out, &gt)
    };
    let r_plain = search(&plain);
    let r_opt = search(&optimized);
    assert!(
        r_opt >= r_plain - 0.01,
        "optimized graph recall {r_opt} must not trail knn graph {r_plain}"
    );
    assert!(r_opt > 0.85, "optimized recall {r_opt}");
}

#[test]
fn fp16_index_matches_fp32_results_closely() {
    let (base, queries, gt) = workload();
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(16));
    let index16 =
        CagraIndex::from_parts(index.store().to_f16(), index.graph().clone(), Metric::SquaredL2);
    let params = SearchParams::for_k(K);
    let r32 = recall(&index.search_batch(&queries, K, &params), &gt);
    let r16 = recall(&index16.search_batch(&queries, K, &params), &gt);
    assert!((r32 - r16).abs() < 0.03, "fp32 {r32} vs fp16 {r16}");
}
