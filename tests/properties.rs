//! Cross-crate property tests (proptest): invariants that must hold
//! for arbitrary datasets and parameters, not just the fixtures the
//! unit tests use.

use cagra_repro::prelude::*;
use proptest::prelude::*;

/// An arbitrary small Gaussian-ish dataset: dims 2..=24, 80..=300
/// points, plus a seed.
fn small_workload() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..=24, 80usize..=300, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn optimized_graph_invariants_hold_for_arbitrary_data((dim, n, seed) in small_workload()) {
        let spec = SynthSpec { dim, n, queries: 0, family: Family::Gaussian, seed };
        let (base, _) = spec.generate();
        let d = 8;
        let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(d));
        let g = index.graph();
        prop_assert_eq!(g.len(), n);
        prop_assert_eq!(g.degree(), d);
        prop_assert_eq!(g.self_loops(), 0);
        for v in 0..n {
            let mut ids = g.neighbors(v).to_vec();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), d, "node {} has duplicate edges", v);
        }
    }

    #[test]
    fn search_results_are_sorted_unique_and_within_range((dim, n, seed) in small_workload()) {
        let spec = SynthSpec { dim, n, queries: 3, family: Family::Gaussian, seed };
        let (base, queries) = spec.generate();
        let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8));
        let params = SearchParams::for_k(5);
        for qi in 0..queries.len() {
            let out = index.search(queries.row(qi), 5, &params);
            prop_assert_eq!(out.len(), 5);
            prop_assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
            let mut ids: Vec<u32> = out.iter().map(|x| x.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), 5);
            prop_assert!(ids.iter().all(|&id| (id as usize) < n));
        }
    }

    #[test]
    fn indexed_point_finds_itself((dim, n, seed) in small_workload()) {
        let spec = SynthSpec { dim, n, queries: 0, family: Family::Gaussian, seed };
        let (base, _) = spec.generate();
        let (index, _) = CagraIndex::build(
            Dataset::from_flat(base.as_flat().to_vec(), dim),
            Metric::SquaredL2,
            &GraphConfig::new(8),
        );
        // Querying with a vector that is in the index must return it
        // first with distance zero (continuous data: a.s. unique).
        let probe = n / 2;
        let out = index.search(base.row(probe), 3, &SearchParams::for_k(3));
        prop_assert_eq!(out[0].id as usize, probe);
        prop_assert_eq!(out[0].dist, 0.0);
    }

    #[test]
    fn recall_close_to_exact_under_generous_width((dim, n, seed) in (2usize..=12, 100usize..=250, any::<u64>())) {
        let spec = SynthSpec { dim, n, queries: 5, family: Family::Gaussian, seed };
        let (base, queries) = spec.generate();
        let gt = knn::brute::ground_truth(&base, Metric::SquaredL2, &queries, 5);
        let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8));
        let mut params = SearchParams::for_k(5);
        params.itopk = 128; // generous relative to n
        let mut hit = 0usize;
        for (qi, truth) in gt.iter().enumerate() {
            let out = index.search(queries.row(qi), 5, &params);
            hit += truth.iter().filter(|t| out.iter().any(|x| x.id == **t)).count();
        }
        let recall = hit as f64 / (gt.len() * 5) as f64;
        prop_assert!(recall > 0.85, "recall {} too low for exhaustive-width search", recall);
    }
}
