//! NSSG baseline — Fu et al.'s Satellite System Graph.
//!
//! The paper compares against NSSG twice: construction time (Fig. 11,
//! where NSSG also builds an explicit k-NN graph first and then
//! optimizes it, like CAGRA) and graph quality (Fig. 12, where the
//! CAGRA graph is searched *with NSSG's search implementation*). To
//! support the latter, the beam search here ([`beam_search`]) operates
//! over any adjacency structure, so a converted CAGRA graph plugs in
//! directly.
//!
//! Construction follows the NSSG recipe: a k-NN base graph, a
//! candidate pool of neighbors-of-neighbors per node, greedy selection
//! under the *minimum angle* criterion (an edge is kept only if it
//! spreads at least `angle` degrees away from every kept edge), and a
//! final connectivity pass linking unreachable nodes from the root's
//! BFS tree.

pub mod build;
pub mod search;

pub use build::{Nssg, NssgParams};
pub use search::beam_search;
