//! NSSG beam search: random-start best-first traversal over any
//! adjacency structure.
//!
//! Exposed as a free function so the Fig. 12 experiment can run the
//! *same* search implementation over both the NSSG graph and a
//! converted CAGRA graph, exactly as the paper does.

use crate::build::Nssg;
use dataset::VectorStore;
use distance::{DistanceOracle, Metric};
use knn::parallel::{default_threads, parallel_map};
use knn::topk::{cmp_neighbor, Neighbor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Best-first beam search with pool width `l`, starting from
/// `n_starts` random nodes (NSSG initializes by random sampling, like
/// CAGRA). Returns up to `k` ascending-distance results and the number
/// of distance computations performed.
#[allow(clippy::too_many_arguments)]
pub fn beam_search<S: VectorStore + ?Sized>(
    adjacency: &[Vec<u32>],
    store: &S,
    metric: Metric,
    query: &[f32],
    k: usize,
    l: usize,
    n_starts: usize,
    seed: u64,
) -> (Vec<Neighbor>, u64) {
    assert_eq!(adjacency.len(), store.len(), "graph and dataset sizes differ");
    assert_eq!(query.len(), store.dim(), "query dimension mismatch");
    let n = adjacency.len();
    if n == 0 || k == 0 {
        return (Vec::new(), 0);
    }
    let l = l.max(k);
    let oracle = DistanceOracle::new(store, metric);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut visited: HashSet<u32> = HashSet::with_capacity(l * 8);

    // Pool: sorted ascending, bounded at `l`, with an "expanded" flag
    // (the classic NSG/NSSG search loop).
    let mut pool: Vec<(Neighbor, bool)> = Vec::with_capacity(l + 1);
    for _ in 0..n_starts.max(1).min(n) {
        let id = rng.gen_range(0..n) as u32;
        if visited.insert(id) {
            pool.push((Neighbor::new(id, oracle.to_row(query, id as usize)), false));
        }
    }
    pool.sort_unstable_by(|a, b| cmp_neighbor(&a.0, &b.0));
    pool.truncate(l);

    while let Some(pos) = pool.iter().position(|(_, expanded)| !expanded) {
        pool[pos].1 = true;
        let node = pool[pos].0.id;
        for &nb in &adjacency[node as usize] {
            if !visited.insert(nb) {
                continue;
            }
            let d = oracle.to_row(query, nb as usize);
            let worst = pool.last().map(|(n, _)| n.dist).unwrap_or(f32::INFINITY);
            if pool.len() < l || d < worst {
                let item = (Neighbor::new(nb, d), false);
                let at = pool.partition_point(|(p, _)| cmp_neighbor(p, &item.0).is_lt());
                pool.insert(at, item);
                pool.truncate(l);
            }
        }
    }

    let out = pool.into_iter().take(k).map(|(n, _)| n).collect();
    (out, oracle.computed())
}

impl<S: VectorStore> Nssg<S> {
    /// Single-query search with pool width `l` (the NSSG `L_search`).
    /// NSSG fills the initial pool with `l` random points (like
    /// CAGRA's random initialization), so `n_starts = l`.
    pub fn search(&self, query: &[f32], k: usize, l: usize, seed: u64) -> Vec<Neighbor> {
        let mut res =
            beam_search(self.adjacency(), self.store(), self.metric(), query, k, l, l, seed).0;
        if let Some(m) = self.id_map() {
            for nb in &mut res {
                nb.id = m.original_of_internal(nb.id);
            }
        }
        res
    }

    /// Thread-parallel batch search (the paper uses HNSW's
    /// bottom-layer multithreaded search for NSSG batching; ours is
    /// query-parallel, which is the same structure).
    pub fn search_batch<Q: VectorStore>(
        &self,
        queries: &Q,
        k: usize,
        l: usize,
    ) -> Vec<Vec<Neighbor>> {
        let dim = queries.dim();
        assert_eq!(dim, self.store().dim(), "query dimension mismatch");
        parallel_map(queries.len(), default_threads(), |qi| {
            let mut q = vec![0.0f32; dim];
            queries.get_into(qi, &mut q);
            self.search(&q, k, l, 0x5eed ^ qi as u64)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::NssgParams;
    use dataset::synth::{Family, SynthSpec};
    use knn::brute::ground_truth;

    fn setup(n: usize) -> (Nssg<dataset::Dataset>, dataset::Dataset) {
        let spec = SynthSpec { dim: 8, n, queries: 40, family: Family::Gaussian, seed: 9 };
        let (base, queries) = spec.generate();
        let (g, _) = Nssg::build(base, Metric::SquaredL2, NssgParams::new(16));
        (g, queries)
    }

    fn recall(g: &Nssg<dataset::Dataset>, queries: &dataset::Dataset, k: usize, l: usize) -> f64 {
        let got = g.search_batch(queries, k, l);
        let gt = ground_truth(g.store(), Metric::SquaredL2, queries, k);
        let mut hits = 0usize;
        for (a, b) in got.iter().zip(&gt) {
            let bs: std::collections::HashSet<u32> = b.iter().copied().collect();
            hits += a.iter().filter(|n| bs.contains(&n.id)).count();
        }
        hits as f64 / (gt.len() * k) as f64
    }

    #[test]
    fn reaches_high_recall() {
        let (g, queries) = setup(2000);
        let r = recall(&g, &queries, 10, 128);
        assert!(r > 0.9, "NSSG recall@10 = {r}");
    }

    #[test]
    fn relabel_preserves_recall_and_remaps_root() {
        let (mut g, queries) = setup(1500);
        // Ground truth in original ids, captured before the store is
        // permuted (results stay in original ids throughout).
        let gt = ground_truth(g.store(), Metric::SquaredL2, &queries, 10);
        let score = |g: &Nssg<dataset::Dataset>| {
            let got = g.search_batch(&queries, 10, 128);
            let mut hits = 0usize;
            for (a, b) in got.iter().zip(&gt) {
                let bs: std::collections::HashSet<u32> = b.iter().copied().collect();
                hits += a.iter().filter(|n| bs.contains(&n.id)).count();
            }
            hits as f64 / (gt.len() * 10) as f64
        };
        let before = score(&g);
        g.relabel(graph::relabel::RelabelStrategy::Rcm);
        let m = g.id_map().expect("rcm on a real graph is not identity");
        assert_eq!(m.strategy, graph::relabel::RelabelStrategy::Rcm);
        // Root must follow the renumbering: it indexes the adjacency.
        assert!((g.root() as usize) < g.adjacency().len());
        let after = score(&g);
        // Starts are drawn in internal space, so allow a small drift.
        assert!(after > before - 0.05, "relabeled {after} vs baseline {before}");
    }

    #[test]
    fn recall_grows_with_pool_width() {
        let (g, queries) = setup(1500);
        let lo = recall(&g, &queries, 10, 10);
        let hi = recall(&g, &queries, 10, 160);
        assert!(hi >= lo, "L=160 ({hi}) must be >= L=10 ({lo})");
    }

    #[test]
    fn beam_search_works_on_foreign_graphs() {
        // The Fig. 12 path: run NSSG search over an arbitrary
        // adjacency structure (here: a simple exact kNN graph).
        let spec = SynthSpec { dim: 4, n: 300, queries: 1, family: Family::Gaussian, seed: 2 };
        let (base, queries) = spec.generate();
        let knn = knn::nn_descent::exact_all_pairs(&base, Metric::SquaredL2, 8, 1);
        let adjacency: Vec<Vec<u32>> =
            knn.iter().map(|l| l.iter().map(|n| n.id).collect()).collect();
        let (got, dists) =
            beam_search(&adjacency, &base, Metric::SquaredL2, queries.row(0), 5, 64, 8, 7);
        assert_eq!(got.len(), 5);
        assert!(dists > 0);
        assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn empty_and_zero_k() {
        let store = dataset::Dataset::empty(4);
        let (got, _) = beam_search(&[], &store, Metric::SquaredL2, &[0.0; 4], 5, 10, 4, 0);
        assert!(got.is_empty());
        let (g, queries) = setup(200);
        let (got, _) =
            beam_search(g.adjacency(), g.store(), Metric::SquaredL2, queries.row(0), 0, 10, 4, 0);
        assert!(got.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, queries) = setup(400);
        let a = g.search(queries.row(0), 5, 64, 3);
        let b = g.search(queries.row(0), 5, 64, 3);
        assert_eq!(a, b);
    }
}
