//! NSSG construction: k-NN base graph + angle pruning + connectivity.

use dataset::{PermutableStore, VectorStore};
use distance::{dot, DistanceOracle, Metric};
use graph::relabel::{self, IdMap, RelabelStrategy};
use graph::AdjacencyGraph;
use knn::flat::KnnLists;
use knn::topk::Neighbor;
use knn::{NnDescent, NnDescentParams};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// NSSG construction parameters (naming follows the NSSG paper).
#[derive(Clone, Copy, Debug)]
pub struct NssgParams {
    /// Max out-degree `R`.
    pub range: usize,
    /// Candidate pool size `L` per node.
    pub l: usize,
    /// Minimum angle between kept edges, degrees (paper: 60).
    pub angle_deg: f32,
    /// Base k-NN graph degree (0 = `2 * range`).
    pub knn_k: usize,
    /// Seed for NN-Descent.
    pub seed: u64,
}

impl NssgParams {
    /// NSSG-paper-flavored defaults for a degree budget.
    pub fn new(range: usize) -> Self {
        NssgParams { range, l: range * 4, angle_deg: 60.0, knn_k: 0, seed: 0x55a6 }
    }
}

/// Construction timing breakdown (Fig. 11 shows NSSG's knn/opt split).
#[derive(Clone, Copy, Debug, Default)]
pub struct NssgBuildReport {
    /// Base k-NN graph time.
    pub knn_time: Duration,
    /// Pruning + connectivity time.
    pub opt_time: Duration,
}

/// A built NSSG index owning its store.
pub struct Nssg<S> {
    store: S,
    metric: Metric,
    adjacency: Vec<Vec<u32>>,
    root: u32,
    params: NssgParams,
    id_map: Option<IdMap>,
}

impl<S: VectorStore + PermutableStore> Nssg<S> {
    /// Renumber vertices for memory locality (same contract as
    /// `CagraIndex::relabel`): adjacency, vector rows, and the
    /// connectivity root move together; searches keep returning
    /// original ids.
    pub fn relabel(&mut self, strategy: RelabelStrategy) {
        let perm = relabel::compute_lists(&self.adjacency, strategy);
        if perm.is_identity() {
            return;
        }
        self.adjacency = relabel::apply_to_lists(&self.adjacency, &perm);
        self.store = self.store.permuted(perm.old_of_new_slice());
        self.root = perm.new_of_old(self.root);
        self.id_map = Some(match self.id_map.take() {
            Some(prev) => IdMap { perm: prev.perm.then(&perm), strategy },
            None => IdMap { perm, strategy },
        });
    }
}

impl<S: VectorStore> Nssg<S> {
    /// Build the NSSG over `store`.
    pub fn build(store: S, metric: Metric, params: NssgParams) -> (Self, NssgBuildReport) {
        assert!(params.range >= 2, "range must be at least 2");
        let n = store.len();
        let k = if params.knn_k == 0 { params.range * 2 } else { params.knn_k };
        assert!(n > k, "dataset of {n} vectors cannot support knn_k = {k}");

        let t0 = Instant::now();
        let knn = NnDescent::new(NnDescentParams { seed: params.seed, ..NnDescentParams::new(k) })
            .build(&store, metric);
        let knn_time = t0.elapsed();

        let t1 = Instant::now();
        let mut adjacency = prune_all(&store, metric, &knn, &params);
        let root = 0u32;
        ensure_connectivity(&mut adjacency, root, &knn);
        let opt_time = t1.elapsed();

        (
            Nssg { store, metric, adjacency, root, params, id_map: None },
            NssgBuildReport { knn_time, opt_time },
        )
    }

    /// Average out-degree (the quantity Fig. 12 matches CAGRA's `d` to).
    pub fn average_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            return 0.0;
        }
        let total: usize = self.adjacency.iter().map(Vec::len).sum();
        total as f64 / self.adjacency.len() as f64
    }

    /// The owned store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Parameters used at build time.
    pub fn params(&self) -> &NssgParams {
        &self.params
    }

    /// Root used by the connectivity pass.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Adjacency lists (borrowed by the search and the experiments).
    pub fn adjacency(&self) -> &[Vec<u32>] {
        &self.adjacency
    }

    /// The active relabel map, if [`Nssg::relabel`] reordered the index.
    pub fn id_map(&self) -> Option<&IdMap> {
        self.id_map.as_ref()
    }

    /// CSR view for the graph-analysis tooling.
    pub fn to_adjacency_graph(&self) -> AdjacencyGraph {
        AdjacencyGraph::from_lists(&self.adjacency)
    }
}

/// Angle-criterion pruning for every node.
fn prune_all<S: VectorStore + ?Sized>(
    store: &S,
    metric: Metric,
    knn: &KnnLists,
    params: &NssgParams,
) -> Vec<Vec<u32>> {
    let n = knn.len();
    let dim = store.dim();
    let cos_min = (params.angle_deg.to_radians()).cos();
    let oracle = DistanceOracle::new(store, metric);
    let mut out: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut v_buf = vec![0.0f32; dim];
    let mut u_buf = vec![0.0f32; dim];
    let mut pool: Vec<Neighbor> = Vec::new();
    // Direction vectors of selected edges, flattened.
    let mut dirs: Vec<f32> = Vec::new();

    for v in 0..n {
        store.get_into(v, &mut v_buf);
        // Pool: k-NN plus neighbors-of-neighbors up to L entries.
        pool.clear();
        pool.extend_from_slice(knn.row(v));
        'outer: for nb in knn.row(v) {
            for nn in knn.row(nb.id as usize) {
                if pool.len() >= params.l {
                    break 'outer;
                }
                if nn.id as usize != v && !pool.iter().any(|p| p.id == nn.id) {
                    pool.push(Neighbor::new(nn.id, oracle.to_row(&v_buf, nn.id as usize)));
                }
            }
        }
        pool.sort_unstable_by(knn::topk::cmp_neighbor);

        // Greedy selection under the minimum-angle criterion.
        let mut selected: Vec<u32> = Vec::with_capacity(params.range);
        dirs.clear();
        for cand in pool.iter() {
            if selected.len() == params.range {
                break;
            }
            store.get_into(cand.id as usize, &mut u_buf);
            let mut dir: Vec<f32> = u_buf.iter().zip(&v_buf).map(|(a, b)| a - b).collect();
            let norm = dot(&dir, &dir).sqrt();
            if norm == 0.0 {
                continue; // duplicate point; a zero-length edge spreads nowhere
            }
            for x in &mut dir {
                *x /= norm;
            }
            let ok = dirs.chunks_exact(dim).all(|w| dot(&dir, w) < cos_min);
            if ok {
                selected.push(cand.id);
                dirs.extend_from_slice(&dir);
            }
        }
        // Degenerate fallback (all candidates colinear/duplicates):
        // keep nearest neighbors so no node is edgeless.
        if selected.is_empty() {
            selected.extend(knn.row(v).iter().take(params.range).map(|nb| nb.id));
        }
        out.push(selected);
    }
    out
}

/// BFS from the root; any unreached node gets an incoming edge from
/// its nearest reached k-NN (or the root), the NSG/NSSG tree-link step.
fn ensure_connectivity(adjacency: &mut [Vec<u32>], root: u32, knn: &KnnLists) {
    let n = adjacency.len();
    if n == 0 {
        return;
    }
    let mut reached = vec![false; n];
    let mut queue = VecDeque::new();
    reached[root as usize] = true;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &u in &adjacency[v as usize] {
            if !reached[u as usize] {
                reached[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    for v in 0..n {
        if reached[v] {
            continue;
        }
        // Attach from the nearest reached neighbor in the base graph.
        let from =
            knn.row(v).iter().find(|nb| reached[nb.id as usize]).map(|nb| nb.id).unwrap_or(root);
        adjacency[from as usize].push(v as u32);
        // Everything reachable from v becomes reached.
        reached[v] = true;
        queue.push_back(v as u32);
        while let Some(w) = queue.pop_front() {
            for &u in &adjacency[w as usize] {
                if !reached[u as usize] {
                    reached[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::synth::{Family, SynthSpec};
    use graph::scc::strongly_connected_components;

    fn gaussian(n: usize, seed: u64) -> dataset::Dataset {
        SynthSpec { dim: 8, n, queries: 0, family: Family::Gaussian, seed }.generate().0
    }

    #[test]
    fn builds_with_bounded_degree() {
        let (g, report) = Nssg::build(gaussian(600, 1), Metric::SquaredL2, NssgParams::new(12));
        assert_eq!(g.adjacency().len(), 600);
        for (v, list) in g.adjacency().iter().enumerate() {
            // Connectivity repair may exceed R by a few edges.
            assert!(list.len() <= 12 + 4, "node {v} degree {}", list.len());
            assert!(!list.is_empty(), "node {v} has no edges");
            assert!(list.iter().all(|&u| u as usize != v), "self edge at {v}");
        }
        assert!(g.average_degree() > 2.0);
        assert!(report.knn_time + report.opt_time > Duration::ZERO);
    }

    #[test]
    fn root_reaches_every_node() {
        let (g, _) = Nssg::build(gaussian(500, 2), Metric::SquaredL2, NssgParams::new(8));
        let adj = g.to_adjacency_graph();
        let mut reached = vec![false; adj.len()];
        let mut stack = vec![g.root()];
        reached[g.root() as usize] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &u in adj.neighbors(v as usize) {
                if !reached[u as usize] {
                    reached[u as usize] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        assert_eq!(count, 500, "all nodes must be reachable from the root");
    }

    #[test]
    fn angle_pruning_spreads_edges() {
        // Narrower angle keeps more edges; wider angle prunes harder.
        let base = gaussian(400, 3);
        let wide = NssgParams { angle_deg: 75.0, ..NssgParams::new(16) };
        let narrow = NssgParams { angle_deg: 30.0, ..NssgParams::new(16) };
        let (g_wide, _) = Nssg::build(
            dataset::Dataset::from_flat(base.as_flat().to_vec(), 8),
            Metric::SquaredL2,
            wide,
        );
        let (g_narrow, _) = Nssg::build(base, Metric::SquaredL2, narrow);
        assert!(
            g_narrow.average_degree() >= g_wide.average_degree(),
            "narrow {} vs wide {}",
            g_narrow.average_degree(),
            g_wide.average_degree()
        );
    }

    #[test]
    fn graph_is_mostly_one_strong_component_after_repair() {
        let (g, _) = Nssg::build(gaussian(500, 4), Metric::SquaredL2, NssgParams::new(12));
        let scc = strongly_connected_components(&g.to_adjacency_graph());
        // Directed graphs need not be strongly connected, but the
        // largest component should dominate.
        let largest = scc.sizes().into_iter().max().unwrap();
        assert!(largest > 350, "largest strong CC {largest}");
    }

    #[test]
    fn duplicate_points_do_not_break_build() {
        let mut flat = Vec::new();
        for i in 0..80 {
            let v = (i % 10) as f32; // many exact duplicates
            flat.extend_from_slice(&[v, v, v, v]);
        }
        let d = dataset::Dataset::from_flat(flat, 4);
        let (g, _) = Nssg::build(d, Metric::SquaredL2, NssgParams::new(4));
        assert_eq!(g.adjacency().len(), 80);
        assert!(g.adjacency().iter().all(|l| !l.is_empty()));
    }

    #[test]
    #[should_panic(expected = "range must be at least 2")]
    fn tiny_range_rejected() {
        let _ = Nssg::build(gaussian(100, 1), Metric::SquaredL2, NssgParams::new(1));
    }
}
