//! `cagra-cli` — command-line front end for the CAGRA reproduction.
//!
//! Subcommands mirror a production vector-index workflow over the
//! standard TexMex file formats:
//!
//! ```text
//! cagra-cli synth  --preset deep --n 10000 --queries 100 --out-dir work/
//! cagra-cli gt     --base work/base.fvecs --queries work/queries.fvecs --k 10 --out work/gt.ivecs
//! cagra-cli build  --base work/base.fvecs --degree 32 --out work/graph.cagra
//! cagra-cli search --base work/base.fvecs --graph work/graph.cagra \
//!                  --queries work/queries.fvecs --k 10 --gt work/gt.ivecs
//! cagra-cli stats  --graph work/graph.cagra
//! cagra-cli serve  --index work/index.cgix --addr 127.0.0.1:7878
//! ```
//!
//! `bundle --pq M` stores vectors as `M`-byte product-quantized codes
//! with the full-precision rows appended as a memory-mapped rerank
//! tail (format v3); `search`/`serve` then accept `--rerank D` to
//! traverse over LUT-based approximate distances and re-score the top
//! `D` candidates exactly (ISSUE 8).
//!
//! `serve` runs the online micro-batching query service (ISSUE 6):
//! single-query TCP requests are coalesced into micro-batches under a
//! `--max-batch`/`--max-wait-us` policy with bounded-queue admission
//! control (`--queue-cap`). `--self-test N --clients C` drives N
//! requests through the bound server and exits — a one-command
//! serving smoke.

pub mod args;
pub mod commands;

pub use args::Args;

/// Entry point shared by the binary and the integration tests.
/// Returns an error message suitable for printing to stderr.
pub fn run(argv: &[String]) -> Result<String, String> {
    let (cmd, args) = args::parse(argv)?;
    match cmd.as_str() {
        "synth" => commands::synth(&args),
        "gt" => commands::ground_truth(&args),
        "build" => commands::build(&args),
        "bundle" => commands::bundle(&args),
        "search" => commands::search(&args),
        "serve" => commands::serve(&args),
        "stats" => commands::stats(&args),
        other => Err(format!("unknown command '{other}'. {}", args::USAGE)),
    }
}
