//! Minimal `--flag value` argument parsing (no external parser crates
//! in the allowed dependency list).

use std::collections::HashMap;

/// Usage string shown on errors.
pub const USAGE: &str = "usage: cagra-cli <synth|gt|build|bundle|search|serve|stats> \
     [--flag value]... (bundle accepts --relabel identity|degree|rcm|gorder and --pq M; \
     search/serve accept --rerank D for two-phase search over PQ bundles)";

/// Parsed flags for one subcommand.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
}

/// Split `argv` into (subcommand, flags).
pub fn parse(argv: &[String]) -> Result<(String, Args), String> {
    let mut it = argv.iter();
    let cmd = it.next().ok_or_else(|| USAGE.to_string())?.clone();
    let mut flags = HashMap::new();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{flag}'. {USAGE}"))?;
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        if flags.insert(name.to_string(), value.clone()).is_some() {
            return Err(format!("--{name} given twice"));
        }
    }
    Ok((cmd, Args { flags }))
}

impl Args {
    /// Required string flag.
    pub fn req(&self, name: &str) -> Result<&str, String> {
        self.flags.get(name).map(String::as_str).ok_or_else(|| format!("missing --{name}"))
    }

    /// Optional string flag.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Required numeric flag.
    pub fn req_usize(&self, name: &str) -> Result<usize, String> {
        self.req(name)?.parse().map_err(|_| format!("--{name} must be a number"))
    }

    /// Optional numeric flag with a default.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(name) {
            Some(v) => v.parse().map_err(|_| format!("--{name} must be a number")),
            None => Ok(default),
        }
    }

    /// Optional boolean flag (`--name true|false`), default false.
    pub fn bool_or(&self, name: &str, default: bool) -> Result<bool, String> {
        match self.flags.get(name).map(String::as_str) {
            Some("true") | Some("1") => Ok(true),
            Some("false") | Some("0") => Ok(false),
            Some(_) => Err(format!("--{name} must be true or false")),
            None => Ok(default),
        }
    }

    /// Optional u64 flag with a default.
    pub fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(name) {
            Some(v) => v.parse().map_err(|_| format!("--{name} must be a number")),
            None => Ok(default),
        }
    }

    /// Test helper: build from pairs.
    pub fn from_pairs(pairs: &[(&str, &str)]) -> Args {
        Args { flags: pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let (cmd, args) = parse(&sv(&["build", "--base", "x.fvecs", "--degree", "32"])).unwrap();
        assert_eq!(cmd, "build");
        assert_eq!(args.req("base").unwrap(), "x.fvecs");
        assert_eq!(args.req_usize("degree").unwrap(), 32);
        assert_eq!(args.usize_or("itopk", 64).unwrap(), 64);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&sv(&["build", "--base"])).is_err());
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        assert!(parse(&sv(&["build", "--k", "1", "--k", "2"])).is_err());
    }

    #[test]
    fn non_flag_is_an_error() {
        assert!(parse(&sv(&["build", "base.fvecs"])).is_err());
    }

    #[test]
    fn empty_argv_is_an_error() {
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let (_, args) = parse(&sv(&["build", "--degree", "abc"])).unwrap();
        assert!(args.req_usize("degree").is_err());
        assert!(args.usize_or("degree", 1).is_err());
    }
}
