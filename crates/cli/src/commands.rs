//! The five subcommands. Each returns its human-readable report as a
//! string so the integration tests can assert on it.

use crate::args::Args;
use cagra::build::GraphConfig;
use cagra::params::ReorderStrategy;
use cagra::search::planner::Mode;
use cagra::{CagraIndex, RelabelStrategy, SearchParams};
use dataset::pq::{PqConfig, PqStore};
use dataset::presets::{DatasetPreset, PresetName};
use dataset::{Dataset, VectorStore};
use distance::Metric;
use graph::stats::{graph_stats, locality_stats};
use graph::AdjacencyGraph;
use knn::topk::Neighbor;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read as _};
use std::path::Path;
use std::time::Instant;

/// Parse `--rerank <depth>` (absent or 0 = single-phase search).
fn parse_rerank(args: &Args, k: usize) -> Result<usize, String> {
    let depth = args.usize_or("rerank", 0)?;
    if depth > 0 && depth < k {
        return Err(format!("--rerank {depth} must be at least k ({k})"));
    }
    Ok(depth)
}

/// Parse `--relabel <identity|degree|rcm|gorder>` (absent = identity).
fn parse_relabel(args: &Args) -> Result<RelabelStrategy, String> {
    match args.opt("relabel") {
        None => Ok(RelabelStrategy::Identity),
        Some(s) => RelabelStrategy::parse(s)
            .ok_or_else(|| format!("unknown relabel strategy '{s}' (identity|degree|rcm|gorder)")),
    }
}

/// One-line memory-locality summary of a graph's numbering.
fn locality_line(g: &graph::FixedDegreeGraph, vec_row_bytes: usize) -> String {
    let s = locality_stats(g, vec_row_bytes);
    format!(
        "locality: mean edge span {:.0}, bandwidth {}, est row tx {:.2}",
        s.mean_edge_span, s.bandwidth, s.est_row_transactions
    )
}

fn parse_metric(args: &Args) -> Result<Metric, String> {
    match args.opt("metric").unwrap_or("l2") {
        "l2" => Ok(Metric::SquaredL2),
        "ip" => Ok(Metric::InnerProduct),
        "cosine" => Ok(Metric::Cosine),
        other => Err(format!("unknown metric '{other}' (l2|ip|cosine)")),
    }
}

fn read_dataset(path: &str) -> Result<Dataset, String> {
    let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    dataset::io::read_fvecs(BufReader::new(f)).map_err(|e| format!("read {path}: {e}"))
}

/// Honour `--metrics-out FILE`: dump the global metrics registry as
/// JSON and append the human-readable table to the command report.
/// A no-op when the flag is absent.
fn dump_metrics(args: &Args, report: &mut String) -> Result<(), String> {
    let Some(path) = args.opt("metrics-out") else { return Ok(()) };
    let snap = obs::metrics().snapshot();
    std::fs::write(path, snap.to_json()).map_err(|e| format!("write {path}: {e}"))?;
    let _ = writeln!(report, "\n{}", snap.render());
    let _ = writeln!(report, "[metrics written to {path}]");
    if !snap.enabled {
        let _ = writeln!(
            report,
            "note: built without the `obs` feature; metrics are empty (rebuild with `--features obs`)"
        );
    }
    Ok(())
}

fn create(path: &str) -> Result<BufWriter<File>, String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
    }
    Ok(BufWriter::new(File::create(path).map_err(|e| format!("create {path}: {e}"))?))
}

/// `synth`: generate a preset-shaped dataset as fvecs files.
pub fn synth(args: &Args) -> Result<String, String> {
    let preset = PresetName::parse(args.req("preset")?)
        .ok_or_else(|| "unknown preset (sift|gist|glove|nytimes|deep)".to_string())?;
    let n = args.req_usize("n")?;
    let queries = args.usize_or("queries", 100)?;
    let seed = args.u64_or("seed", 0xda7a)?;
    let dir = args.req("out-dir")?;
    let (base, qs) = DatasetPreset::get(preset).spec(n, queries, seed).generate();
    let base_path = format!("{dir}/base.fvecs");
    let q_path = format!("{dir}/queries.fvecs");
    dataset::io::write_fvecs(create(&base_path)?, &base).map_err(|e| e.to_string())?;
    dataset::io::write_fvecs(create(&q_path)?, &qs).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {n} x {}d base vectors to {base_path} and {queries} queries to {q_path}",
        base.dim()
    ))
}

/// `gt`: exact ground truth as ivecs.
pub fn ground_truth(args: &Args) -> Result<String, String> {
    let base = read_dataset(args.req("base")?)?;
    let queries = read_dataset(args.req("queries")?)?;
    let k = args.req_usize("k")?;
    let metric = parse_metric(args)?;
    let out = args.req("out")?;
    let t0 = Instant::now();
    let gt = knn::brute::ground_truth(&base, metric, &queries, k);
    dataset::io::write_ivecs(create(out)?, &gt).map_err(|e| e.to_string())?;
    Ok(format!("wrote exact top-{k} for {} queries to {out} in {:.2?}", gt.len(), t0.elapsed()))
}

/// `build`: construct and persist a CAGRA graph.
pub fn build(args: &Args) -> Result<String, String> {
    let base = read_dataset(args.req("base")?)?;
    let degree = args.req_usize("degree")?;
    let metric = parse_metric(args)?;
    let strategy = match args.opt("strategy").unwrap_or("rank") {
        "rank" => ReorderStrategy::RankBased,
        "distance" => ReorderStrategy::DistanceBased,
        other => return Err(format!("unknown strategy '{other}' (rank|distance)")),
    };
    let d_init = args.usize_or("d-init", 0)?;
    let out = args.req("out")?;
    let config = GraphConfig { strategy, intermediate_degree: d_init, ..GraphConfig::new(degree) };
    let (index, report) = CagraIndex::build(base, metric, &config);
    graph::io::write_fixed(create(out)?, index.graph()).map_err(|e| e.to_string())?;
    let s = report.stats;
    let mut text = format!(
        "built degree-{degree} graph over {} vectors in {:.2?} (kNN {:.2?} + optimize {:.2?}); wrote {out}\n\
         stages: nn-init {:.2?} | nn-iters {:.2?} ({} iters) | reorder {:.2?} | reverse {:.2?} | merge {:.2?}; \
         distances: nn {} + opt {}",
        index.graph().len(),
        report.total(),
        report.knn_time,
        report.opt_time,
        s.nn_init,
        s.nn_iters,
        s.nn_iterations,
        s.reorder,
        s.reverse,
        s.merge,
        report.nn_distance_computations,
        s.opt_distance_computations,
    );
    let _ = write!(text, "\n{}", locality_line(index.graph(), index.store().dim() * 4));
    dump_metrics(args, &mut text)?;
    Ok(text)
}

/// `bundle`: build and persist a single-file index (vectors + graph +
/// metric together, so they cannot drift apart). `--relabel` renumbers
/// graph and vectors jointly for memory locality; the permutation is
/// persisted so loaded bundles keep answering in original ids.
/// `--pq M` writes a product-quantized v3 bundle instead: M-byte codes
/// plus the graph up front, the full-precision rows as a mmap-able
/// tail that `search --rerank` re-scores against.
pub fn bundle(args: &Args) -> Result<String, String> {
    let base = read_dataset(args.req("base")?)?;
    let degree = args.req_usize("degree")?;
    let metric = parse_metric(args)?;
    let relabel = parse_relabel(args)?;
    let pq_m = match args.opt("pq") {
        None => None,
        Some(v) => {
            let m: usize = v.parse().map_err(|_| "--pq must be a number".to_string())?;
            if m == 0 || m > base.dim() {
                return Err(format!("--pq {m} must be in 1..={} (the dataset dim)", base.dim()));
            }
            Some(m)
        }
    };
    let out = args.req("out")?;
    let config = GraphConfig::new(degree);
    // PQ bundles store the full-precision rows in original id order;
    // keep a copy before the build (possibly) relabels the store.
    let full = pq_m.map(|_| Dataset::from_flat(base.as_flat().to_vec(), base.dim()));
    let (index, report) = match relabel {
        RelabelStrategy::Identity => CagraIndex::build(base, metric, &config),
        s => CagraIndex::build_with_relabel(base, metric, &config, s),
    };
    let mut text = match pq_m {
        None => {
            cagra::index_io::write_index(create(out)?, &index).map_err(|e| e.to_string())?;
            format!(
                "bundled {} vectors + degree-{degree} graph into {out} (built in {:.2?})",
                index.store().len(),
                report.total()
            )
        }
        Some(m) => {
            // Encode in the index's (possibly relabeled) row order so
            // codes stay aligned with the graph.
            let store = dataset::pq::build(index.store(), &PqConfig::new(m));
            let pq_index = CagraIndex::from_parts_mapped(
                store,
                index.graph().clone(),
                metric,
                index.id_map().cloned(),
            );
            let full = full.expect("full-precision copy kept for PQ bundles");
            cagra::index_io::write_index_pq(create(out)?, &pq_index, &full)
                .map_err(|e| e.to_string())?;
            format!(
                "bundled {} vectors as {m}-byte PQ codes + degree-{degree} graph into {out} \
                 (built in {:.2?}; resident {m} B/vec vs f32 {} B/vec, rerank tail mmap'd)",
                pq_index.store().len(),
                report.total(),
                full.bytes_per_vector()
            )
        }
    };
    if let Some(m) = index.id_map() {
        let _ = write!(
            text,
            "\nrelabeled with {} in {:.2?}; {}",
            m.strategy.label(),
            report.stats.relabel,
            locality_line(index.graph(), index.store().dim() * 4)
        );
    }
    Ok(text)
}

/// A loaded index of either storage flavour. The two variants share
/// every search surface; dispatch once here instead of at each call.
enum LoadedIndex {
    F32(CagraIndex<Dataset>),
    Pq(CagraIndex<PqStore>),
}

/// Peek a bundle's format version (magic + u32, before any payload).
fn bundle_version(path: &str) -> Result<u32, String> {
    let mut head = [0u8; 8];
    let mut f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    f.read_exact(&mut head).map_err(|e| format!("read {path}: {e}"))?;
    if &head[0..4] != b"CGIX" {
        return Err(format!("{path} is not an index bundle (bad magic)"));
    }
    Ok(u32::from_le_bytes(head[4..8].try_into().unwrap()))
}

/// Load a persisted index: either `--index bundle.cgix` (format
/// version dispatched automatically — v3 PQ bundles get their mmap'd
/// rerank tail attached) or the `--base fvecs --graph cagra
/// [--metric m]` pair (shared by `search` and `serve`).
fn load_index(args: &Args) -> Result<LoadedIndex, String> {
    if let Some(bundle_path) = args.opt("index") {
        if bundle_version(bundle_path)? >= 3 {
            match cagra::index_io::read_index_pq(Path::new(bundle_path)) {
                Ok(index) => return Ok(LoadedIndex::Pq(index)),
                // A v3+ bundle can still carry plain f32 storage; the
                // reader's pointer error says to fall through.
                Err(e) if e.to_string().contains("read_index") => {}
                Err(e) => return Err(e.to_string()),
            }
        }
        let f = File::open(bundle_path).map_err(|e| format!("open {bundle_path}: {e}"))?;
        cagra::index_io::read_index(BufReader::new(f))
            .map(LoadedIndex::F32)
            .map_err(|e| e.to_string())
    } else {
        let base = read_dataset(args.req("base")?)?;
        let graph_file = File::open(args.req("graph")?).map_err(|e| e.to_string())?;
        let g = graph::io::read_fixed(BufReader::new(graph_file)).map_err(|e| e.to_string())?;
        let metric = parse_metric(args)?;
        Ok(LoadedIndex::F32(CagraIndex::from_parts(base, g, metric)))
    }
}

/// Batch-search either storage flavour with the parsed mode.
fn search_batch<S: VectorStore>(
    index: &CagraIndex<S>,
    queries: &Dataset,
    k: usize,
    params: &SearchParams,
    mode: Option<Mode>,
) -> Vec<Vec<Neighbor>> {
    match mode {
        None => index.search_batch(queries, k, params),
        Some(m) => index.search_batch_mode(queries, k, params, m),
    }
}

/// `search`: query a persisted index; reports recall when ground truth
/// is supplied. Accepts either `--index bundle.cgix` or the
/// `--base fvecs --graph cagra` pair. `--rerank R` enables two-phase
/// search on PQ bundles: traversal over approximate distances, then an
/// exact re-score of the top R candidates against the mmap'd
/// full-precision rows.
pub fn search(args: &Args) -> Result<String, String> {
    let queries = read_dataset(args.req("queries")?)?;
    let k = args.req_usize("k")?;
    let mut params = SearchParams::for_k(k);
    params.itopk = args.usize_or("itopk", params.itopk)?.max(k);
    params.rerank_depth = parse_rerank(args, k)?;
    let mode = match args.opt("mode").unwrap_or("auto") {
        "auto" => None,
        "single" => Some(Mode::SingleCta),
        "multi" => Some(Mode::MultiCta),
        other => return Err(format!("unknown mode '{other}' (auto|single|multi)")),
    };

    let index = load_index(args)?;
    if params.rerank_depth > 0 && matches!(index, LoadedIndex::F32(_)) {
        return Err(
            "--rerank needs a full-precision rerank source; f32 indexes are already exact \
             (build a PQ bundle with `bundle --pq M`)"
                .to_string(),
        );
    }
    let t0 = Instant::now();
    let results = match &index {
        LoadedIndex::F32(ix) => search_batch(ix, &queries, k, &params, mode),
        LoadedIndex::Pq(ix) => search_batch(ix, &queries, k, &params, mode),
    };
    let wall = t0.elapsed().as_secs_f64();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "searched {} queries (k={k}, itopk={}) in {:.2?}: {:.0} QPS",
        queries.len(),
        params.itopk,
        t0.elapsed(),
        queries.len() as f64 / wall
    );
    if let Some(gt_path) = args.opt("gt") {
        let gt_file = File::open(gt_path).map_err(|e| e.to_string())?;
        let gt = dataset::io::read_ivecs(BufReader::new(gt_file)).map_err(|e| e.to_string())?;
        if gt.len() != results.len() {
            return Err(format!("gt has {} rows but {} queries searched", gt.len(), results.len()));
        }
        let mut hit = 0usize;
        let mut total = 0usize;
        for (res, truth) in results.iter().zip(&gt) {
            let truth = &truth[..truth.len().min(k)];
            total += truth.len();
            hit += truth.iter().filter(|t| res.iter().any(|n| n.id == **t)).count();
        }
        let _ = writeln!(report, "recall@{k} = {:.4}", hit as f64 / total.max(1) as f64);
    } else {
        for (qi, res) in results.iter().take(5).enumerate() {
            let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
            let _ = writeln!(report, "query {qi}: {ids:?}");
        }
    }
    dump_metrics(args, &mut report)?;
    Ok(report)
}

/// `serve`: run the online micro-batching query service over a
/// persisted index (ISSUE 6).
///
/// Binds a TCP listener speaking the v1 length-prefixed protocol and
/// serves until killed. With `--self-test N` it instead drives `N`
/// requests through the freshly bound server from `--clients`
/// concurrent TCP connections (queries sampled from the index's own
/// base vectors), reports throughput/latency/batching, and exits —
/// the smoke path the integration tests and quick-start use.
pub fn serve(args: &Args) -> Result<String, String> {
    let k = args.usize_or("k", 10)?;
    let mut params = SearchParams::for_k(k);
    params.itopk = args.usize_or("itopk", params.itopk)?.max(k);
    params.rerank_depth = parse_rerank(args, k)?;
    let mut config = serve::ServeConfig::new(params);
    config.max_batch = args.usize_or("max-batch", config.max_batch)?;
    config.max_wait = std::time::Duration::from_micros(args.u64_or("max-wait-us", 0)?);
    config.queue_capacity = args.usize_or("queue-cap", config.queue_capacity)?;
    config.worker_threads = args.usize_or("threads", 0)?;
    let addr = args.opt("addr").unwrap_or("127.0.0.1:0");
    let self_test = match args.opt("self-test") {
        Some(v) => Some(v.parse::<usize>().map_err(|_| "--self-test must be a number")?),
        None => None,
    };

    let dynamic = args.bool_or("dynamic", false)?;
    match load_index(args)? {
        LoadedIndex::F32(ix) => {
            if params.rerank_depth > 0 {
                return Err(
                    "--rerank needs a PQ bundle (f32 indexes are already exact)".to_string()
                );
            }
            let (sample, n) = sample_rows(&ix);
            if dynamic {
                if ix.id_map().is_some() {
                    return Err("--dynamic true needs an unrelabeled index (the dynamic \
                                wrapper owns id assignment; rebuild without --relabel)"
                        .to_string());
                }
                let degree = ix.graph().degree();
                let backend =
                    cagra::DynamicIndex::from_index(ix, cagra::DynamicParams::new(degree));
                serve_index(backend, sample, n, args, k, params, config, addr, self_test)
            } else {
                serve_index(ix, sample, n, args, k, params, config, addr, self_test)
            }
        }
        LoadedIndex::Pq(ix) => {
            if dynamic {
                return Err(
                    "--dynamic true needs a plain f32 index (PQ bundles are static)".to_string()
                );
            }
            let (sample, n) = sample_rows(&ix);
            serve_index(ix, sample, n, args, k, params, config, addr, self_test)
        }
    }
}

/// Sample up to 128 base rows for self-test queries (decoded, so PQ
/// stores work too), plus the total row count.
fn sample_rows<S: VectorStore>(index: &CagraIndex<S>) -> (Vec<Vec<f32>>, usize) {
    let mut row = vec![0.0f32; index.store().dim()];
    let sample = (0..index.store().len().min(128))
        .map(|i| {
            index.store().get_into(i, &mut row);
            row.clone()
        })
        .collect();
    (sample, index.store().len())
}

/// The serve body, generic over the search backend (a static index of
/// either storage flavour, or the dynamic wrapper).
#[allow(clippy::too_many_arguments)]
fn serve_index<B: serve::SearchBackend>(
    backend: B,
    sample: Vec<Vec<f32>>,
    n: usize,
    args: &Args,
    k: usize,
    params: SearchParams,
    config: serve::ServeConfig,
    addr: &str,
    self_test: Option<usize>,
) -> Result<String, String> {
    let service = std::sync::Arc::new(
        serve::Service::start(backend, config).map_err(|e| format!("start service: {e}"))?,
    );
    let mut server = serve::TcpServer::spawn(std::sync::Arc::clone(&service), addr)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = server.local_addr();

    let Some(total) = self_test else {
        println!(
            "serving {n} vectors on {bound} (k<=itopk {}, max-batch {}, max-wait {:?}, \
             queue-cap {}); press Ctrl-C to stop",
            params.itopk, config.max_batch, config.max_wait, config.queue_capacity
        );
        loop {
            std::thread::park();
        }
    };

    let clients = args.usize_or("clients", 4)?.max(1);
    let per_client = total.div_ceil(clients);
    let t0 = Instant::now();
    let outcomes: Vec<(u64, u64, u64, u32)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let sample = &sample;
                s.spawn(move || {
                    let mut client =
                        serve::Client::connect(bound).expect("self-test client connect");
                    let (mut ok, mut err, mut e2e_sum, mut max_batch) = (0u64, 0u64, 0u64, 0u32);
                    for i in 0..per_client {
                        let q = &sample[(c * per_client + i) % sample.len()];
                        match client.search(q, k) {
                            Ok(resp) => {
                                ok += 1;
                                e2e_sum += resp.meta.e2e_ns;
                                max_batch = max_batch.max(resp.meta.batch_size);
                            }
                            Err(_) => err += 1,
                        }
                    }
                    (ok, err, e2e_sum, max_batch)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("self-test client")).collect()
    });
    let wall = t0.elapsed();
    server.shutdown();

    let ok: u64 = outcomes.iter().map(|o| o.0).sum();
    let err: u64 = outcomes.iter().map(|o| o.1).sum();
    let e2e_sum: u64 = outcomes.iter().map(|o| o.2).sum();
    let max_batch: u32 = outcomes.iter().map(|o| o.3).max().unwrap_or(0);
    let mut report = format!(
        "self-test on {bound}: {ok} served / {err} failed over {clients} connections in {wall:.2?} \
         ({:.0} QPS); mean e2e {:.3} ms, largest batch {max_batch}",
        ok as f64 / wall.as_secs_f64().max(1e-9),
        e2e_sum as f64 / ok.max(1) as f64 / 1e6,
    );
    dump_metrics(args, &mut report)?;
    Ok(report)
}

/// `stats`: reachability metrics of a persisted graph (the Fig. 3
/// quantities).
pub fn stats(args: &Args) -> Result<String, String> {
    let graph_file = File::open(args.req("graph")?).map_err(|e| e.to_string())?;
    let g = graph::io::read_fixed(BufReader::new(graph_file)).map_err(|e| e.to_string())?;
    let stride = args.usize_or("two-hop-stride", (g.len() / 2000).max(1))?;
    let s = graph_stats(&AdjacencyGraph::from_fixed(&g), stride);
    Ok(format!(
        "nodes: {}\ndegree: {}\nstrong CC: {}\nlargest CC: {:.1}%\navg 2-hop: {:.1} (max {})\nself loops: {}",
        g.len(),
        g.degree(),
        s.strong_cc,
        100.0 * s.largest_cc_fraction,
        s.avg_two_hop,
        graph::two_hop::max_two_hop(g.degree()),
        g.self_loops()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> String {
        // Distinct per test: tests run in parallel within one process.
        let dir = std::env::temp_dir().join(format!("cagra_cli_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn full_cli_workflow() {
        let dir = tmpdir("full");
        let out = synth(&Args::from_pairs(&[
            ("preset", "deep"),
            ("n", "600"),
            ("queries", "20"),
            ("out-dir", &dir),
        ]))
        .unwrap();
        assert!(out.contains("600 x 96d"));

        let base = format!("{dir}/base.fvecs");
        let queries = format!("{dir}/queries.fvecs");
        let gt_path = format!("{dir}/gt.ivecs");
        let graph_path = format!("{dir}/graph.cagra");

        let out = ground_truth(&Args::from_pairs(&[
            ("base", &base),
            ("queries", &queries),
            ("k", "10"),
            ("out", &gt_path),
        ]))
        .unwrap();
        assert!(out.contains("top-10"));

        let out =
            build(&Args::from_pairs(&[("base", &base), ("degree", "16"), ("out", &graph_path)]))
                .unwrap();
        assert!(out.contains("degree-16"));

        let out = search(&Args::from_pairs(&[
            ("base", &base),
            ("queries", &queries),
            ("graph", &graph_path),
            ("k", "10"),
            ("gt", &gt_path),
        ]))
        .unwrap();
        assert!(out.contains("recall@10"));
        // Parse the recall and require a sane floor.
        let recall: f64 = out
            .lines()
            .find(|l| l.starts_with("recall@10"))
            .and_then(|l| l.split('=').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .unwrap();
        assert!(recall > 0.85, "cli recall {recall}");

        let out = stats(&Args::from_pairs(&[("graph", &graph_path)])).unwrap();
        assert!(out.contains("degree: 16"));
        assert!(out.contains("self loops: 0"));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bundle_workflow() {
        let dir = tmpdir("bundle");
        synth(&Args::from_pairs(&[
            ("preset", "deep"),
            ("n", "400"),
            ("queries", "10"),
            ("out-dir", &dir),
        ]))
        .unwrap();
        let base = format!("{dir}/base.fvecs");
        let queries = format!("{dir}/queries.fvecs");
        let bundle_path = format!("{dir}/index.cgix");
        let out =
            bundle(&Args::from_pairs(&[("base", &base), ("degree", "8"), ("out", &bundle_path)]))
                .unwrap();
        assert!(out.contains("bundled 400 vectors"));
        let metrics_path = format!("{dir}/metrics.json");
        let out = search(&Args::from_pairs(&[
            ("index", &bundle_path),
            ("queries", &queries),
            ("k", "5"),
            ("metrics-out", &metrics_path),
        ]))
        .unwrap();
        assert!(out.contains("searched 10 queries"));
        assert!(out.contains("[metrics written to"));
        let json = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(json.contains("cagra-metrics-v1"));
        assert!(json.contains("search.iterations"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn relabeled_bundle_round_trips_and_answers_in_original_ids() {
        let dir = tmpdir("relabel");
        synth(&Args::from_pairs(&[
            ("preset", "glove"),
            ("n", "500"),
            ("queries", "10"),
            ("out-dir", &dir),
        ]))
        .unwrap();
        let base = format!("{dir}/base.fvecs");
        let queries = format!("{dir}/queries.fvecs");
        let gt_path = format!("{dir}/gt.ivecs");
        ground_truth(&Args::from_pairs(&[
            ("base", &base),
            ("queries", &queries),
            ("k", "5"),
            ("out", &gt_path),
        ]))
        .unwrap();
        let bundle_path = format!("{dir}/index.cgix");
        let out = bundle(&Args::from_pairs(&[
            ("base", &base),
            ("degree", "8"),
            ("relabel", "rcm"),
            ("out", &bundle_path),
        ]))
        .unwrap();
        assert!(out.contains("relabeled with rcm"), "report: {out}");
        assert!(out.contains("locality:"), "report: {out}");
        // The permuted bundle must still answer in original ids, so
        // recall against the pre-relabel ground truth stays high.
        let out = search(&Args::from_pairs(&[
            ("index", &bundle_path),
            ("queries", &queries),
            ("k", "5"),
            ("gt", &gt_path),
        ]))
        .unwrap();
        let recall: f64 = out
            .lines()
            .find(|l| l.starts_with("recall@5"))
            .and_then(|l| l.split('=').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .unwrap();
        assert!(recall > 0.85, "relabeled bundle recall {recall}");
        // Unknown strategies are rejected with the valid set listed.
        let err = bundle(&Args::from_pairs(&[
            ("base", &base),
            ("degree", "8"),
            ("relabel", "zorder"),
            ("out", &bundle_path),
        ]))
        .unwrap_err();
        assert!(err.contains("identity|degree|rcm|gorder"), "error: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pq_bundle_two_phase_workflow() {
        let dir = tmpdir("pq");
        synth(&Args::from_pairs(&[
            ("preset", "deep"),
            ("n", "600"),
            ("queries", "20"),
            ("out-dir", &dir),
        ]))
        .unwrap();
        let base = format!("{dir}/base.fvecs");
        let queries = format!("{dir}/queries.fvecs");
        let gt_path = format!("{dir}/gt.ivecs");
        ground_truth(&Args::from_pairs(&[
            ("base", &base),
            ("queries", &queries),
            ("k", "10"),
            ("out", &gt_path),
        ]))
        .unwrap();
        let bundle_path = format!("{dir}/index_pq.cgix");
        let out = bundle(&Args::from_pairs(&[
            ("base", &base),
            ("degree", "16"),
            ("pq", "24"),
            ("out", &bundle_path),
        ]))
        .unwrap();
        assert!(out.contains("24-byte PQ codes"), "report: {out}");

        let recall_of = |extra: &[(&str, &str)]| -> f64 {
            let mut pairs = vec![
                ("index", bundle_path.as_str()),
                ("queries", queries.as_str()),
                ("k", "10"),
                ("gt", gt_path.as_str()),
                ("itopk", "64"),
            ];
            pairs.extend_from_slice(extra);
            let out = search(&Args::from_pairs(&pairs)).unwrap();
            out.lines()
                .find(|l| l.starts_with("recall@10"))
                .and_then(|l| l.split('=').nth(1))
                .and_then(|v| v.trim().parse().ok())
                .unwrap()
        };
        let single = recall_of(&[]);
        let two_phase = recall_of(&[("rerank", "64")]);
        assert!(two_phase >= single, "rerank lost recall: {two_phase} vs {single}");
        assert!(two_phase > 0.9, "two-phase recall {two_phase}");

        // Rerank depth below k is rejected up front.
        let err = search(&Args::from_pairs(&[
            ("index", &bundle_path),
            ("queries", &queries),
            ("k", "10"),
            ("rerank", "5"),
        ]))
        .unwrap_err();
        assert!(err.contains("at least k"), "error: {err}");

        // --rerank against a plain f32 bundle points at `bundle --pq`.
        let f32_path = format!("{dir}/index_f32.cgix");
        bundle(&Args::from_pairs(&[("base", &base), ("degree", "16"), ("out", &f32_path)]))
            .unwrap();
        let err = search(&Args::from_pairs(&[
            ("index", &f32_path),
            ("queries", &queries),
            ("k", "10"),
            ("rerank", "32"),
        ]))
        .unwrap_err();
        assert!(err.contains("bundle --pq"), "error: {err}");

        // Subspace count outside 1..=dim is rejected.
        let err = bundle(&Args::from_pairs(&[
            ("base", &base),
            ("degree", "16"),
            ("pq", "0"),
            ("out", &bundle_path),
        ]))
        .unwrap_err();
        assert!(err.contains("--pq"), "error: {err}");

        // The PQ bundle serves two-phase over TCP out of the box.
        let out = serve(&Args::from_pairs(&[
            ("index", &bundle_path),
            ("self-test", "32"),
            ("clients", "2"),
            ("k", "5"),
            ("rerank", "32"),
            ("max-wait-us", "100"),
        ]))
        .unwrap();
        assert!(out.contains("32 served / 0 failed"), "unexpected report: {out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn relabeled_pq_bundle_answers_in_original_ids() {
        let dir = tmpdir("pq_relabel");
        synth(&Args::from_pairs(&[
            ("preset", "deep"),
            ("n", "500"),
            ("queries", "10"),
            ("out-dir", &dir),
        ]))
        .unwrap();
        let base = format!("{dir}/base.fvecs");
        let queries = format!("{dir}/queries.fvecs");
        let gt_path = format!("{dir}/gt.ivecs");
        ground_truth(&Args::from_pairs(&[
            ("base", &base),
            ("queries", &queries),
            ("k", "5"),
            ("out", &gt_path),
        ]))
        .unwrap();
        let bundle_path = format!("{dir}/index.cgix");
        let out = bundle(&Args::from_pairs(&[
            ("base", &base),
            ("degree", "8"),
            ("pq", "24"),
            ("relabel", "rcm"),
            ("out", &bundle_path),
        ]))
        .unwrap();
        assert!(out.contains("relabeled with rcm"), "report: {out}");
        let out = search(&Args::from_pairs(&[
            ("index", &bundle_path),
            ("queries", &queries),
            ("k", "5"),
            ("itopk", "64"),
            ("rerank", "32"),
            ("gt", &gt_path),
        ]))
        .unwrap();
        let recall: f64 = out
            .lines()
            .find(|l| l.starts_with("recall@5"))
            .and_then(|l| l.split('=').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .unwrap();
        assert!(recall > 0.85, "relabeled PQ bundle recall {recall}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_self_test_round_trips_over_tcp() {
        let dir = tmpdir("serve");
        synth(&Args::from_pairs(&[
            ("preset", "deep"),
            ("n", "500"),
            ("queries", "10"),
            ("out-dir", &dir),
        ]))
        .unwrap();
        let base = format!("{dir}/base.fvecs");
        let bundle_path = format!("{dir}/index.cgix");
        bundle(&Args::from_pairs(&[("base", &base), ("degree", "8"), ("out", &bundle_path)]))
            .unwrap();
        let out = serve(&Args::from_pairs(&[
            ("index", &bundle_path),
            ("self-test", "64"),
            ("clients", "4"),
            ("k", "5"),
            ("max-wait-us", "100"),
        ]))
        .unwrap();
        assert!(out.contains("64 served / 0 failed"), "unexpected report: {out}");
        assert!(!out.contains(" 0 QPS"), "throughput must be nonzero: {out}");

        // The same bundle served through the dynamic wrapper answers
        // the identical self-test (ids 0..n are preserved verbatim).
        let out = serve(&Args::from_pairs(&[
            ("index", &bundle_path),
            ("dynamic", "true"),
            ("self-test", "32"),
            ("clients", "2"),
            ("k", "5"),
        ]))
        .unwrap();
        assert!(out.contains("32 served / 0 failed"), "dynamic serve report: {out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(parse_metric(&Args::from_pairs(&[("metric", "hamming")])).is_err());
        assert!(read_dataset("/nonexistent/base.fvecs").is_err());
        assert!(synth(&Args::from_pairs(&[("preset", "bogus"), ("n", "10"), ("out-dir", "/tmp")]))
            .is_err());
        assert!(build(&Args::from_pairs(&[
            ("base", "/nonexistent"),
            ("degree", "8"),
            ("out", "/tmp/x")
        ]))
        .is_err());
    }

    #[test]
    fn metric_flag_parses_all_variants() {
        assert_eq!(parse_metric(&Args::from_pairs(&[])).unwrap(), Metric::SquaredL2);
        assert_eq!(
            parse_metric(&Args::from_pairs(&[("metric", "ip")])).unwrap(),
            Metric::InnerProduct
        );
        assert_eq!(
            parse_metric(&Args::from_pairs(&[("metric", "cosine")])).unwrap(),
            Metric::Cosine
        );
    }
}
