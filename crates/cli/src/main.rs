//! `cagra-cli` binary entry point.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&argv) {
        Ok(report) => println!("{report}"),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
