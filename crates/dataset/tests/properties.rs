//! Storage, f16, quantization and I/O invariants over arbitrary data.

use dataset::io::{read_fvecs, write_fvecs};
use dataset::{Dataset, VectorStore, F16};
use proptest::prelude::*;

proptest! {
    #[test]
    fn f16_round_trip_preserves_order(a in -6.0e4f32..6.0e4, b in -6.0e4f32..6.0e4) {
        // Narrowing is monotone: order can collapse to equality but
        // never invert.
        let (ha, hb) = (F16::from_f32(a).to_f32(), F16::from_f32(b).to_f32());
        if a < b {
            prop_assert!(ha <= hb, "{a} < {b} but {ha} > {hb}");
        }
    }

    #[test]
    fn f16_error_is_bounded(x in -6.0e4f32..6.0e4) {
        let rt = F16::from_f32(x).to_f32();
        // Relative error <= 2^-11 for normals, absolute <= 2^-25 in
        // the subnormal range.
        let bound = (x.abs() * 2f32.powi(-11)).max(2f32.powi(-25));
        prop_assert!((rt - x).abs() <= bound, "x={x} rt={rt}");
    }

    #[test]
    fn f16_narrowing_is_idempotent(x in -6.0e4f32..6.0e4) {
        let once = F16::from_f32(x);
        let twice = F16::from_f32(once.to_f32());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn fvecs_round_trip(data in proptest::collection::vec(-1e6f32..1e6, 3..120)) {
        let dim = 3;
        let n = data.len() / dim;
        let d = Dataset::from_flat(data[..n * dim].to_vec(), dim);
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &d).unwrap();
        let back = read_fvecs(&buf[..]);
        if n == 0 {
            prop_assert!(back.is_err()); // empty stream is an error
        } else {
            let back = back.unwrap();
            prop_assert_eq!(back.as_flat(), d.as_flat());
        }
    }

    #[test]
    fn i8_quantization_error_within_half_step(data in proptest::collection::vec(-500.0f32..500.0, 8..64)) {
        let dim = 4;
        let n = data.len() / dim;
        prop_assume!(n > 0);
        let d = Dataset::from_flat(data[..n * dim].to_vec(), dim);
        let q = d.to_i8();
        let mut out = vec![0.0f32; dim];
        for i in 0..n {
            q.get_into(i, &mut out);
            for (j, &o) in out.iter().enumerate() {
                let err = (o - d.row(i)[j]).abs();
                prop_assert!(err <= q.max_abs_error(j) * 1.01 + 1e-5, "err {err} at ({i},{j})");
            }
        }
    }

    #[test]
    fn synth_is_deterministic_and_shaped(n in 1usize..64, dim in 1usize..16, seed in any::<u64>()) {
        use dataset::synth::{Family, SynthSpec};
        let spec = SynthSpec { dim, n, queries: 2, family: Family::Gaussian, seed };
        let (a, qa) = spec.generate();
        let (b, qb) = spec.generate();
        prop_assert_eq!(a.as_flat(), b.as_flat());
        prop_assert_eq!(qa.as_flat(), qb.as_flat());
        prop_assert_eq!(a.len(), n);
        prop_assert_eq!(a.dim(), dim);
        prop_assert!(a.as_flat().iter().all(|x| x.is_finite()));
    }
}
