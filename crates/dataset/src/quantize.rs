//! Int8 scalar quantization — the next step of the paper's
//! "low-precision data types for dataset vectors" proposal
//! (Sec. IV-C1 introduces the idea; FP16 is evaluated in Figs. 13/14,
//! and Int8 quarters the memory traffic of FP32 at a further small
//! recall cost).
//!
//! Symmetric per-dimension affine quantization: for each dimension
//! `j`, `q = round(x / scale_j)` clamped to `[-127, 127]`, with
//! `scale_j = max_i |x_ij| / 127`. Per-dimension scales keep
//! dimensions with very different magnitudes (common in embeddings)
//! from washing out.
//!
//! Scale fitting has two paths: [`DatasetI8::from_f32`] scans every
//! row (exact maxima), and [`DatasetI8::from_f32_sampled`] estimates
//! scales on the same deterministic row sample the PQ k-means trainer
//! draws ([`crate::sample`], stage [`crate::sample::STAGE_SAMPLE`]).
//! Both are single-RNG-stream serial fits, so scalar and product
//! quantization produce bit-identical codes for a given `(data, seed)`
//! under any thread count — out-of-sample outliers simply saturate at
//! `±127` instead of stretching the scale.

use crate::sample::{derive_seed, sample_rows, STAGE_SAMPLE};
use crate::storage::{Dataset, VectorStore};

/// An `N x dim` matrix of int8 codes plus per-dimension scales.
#[derive(Clone, Debug)]
pub struct DatasetI8 {
    codes: Vec<i8>,
    scales: Vec<f32>,
    dim: usize,
}

impl DatasetI8 {
    /// Quantize an f32 dataset.
    pub fn from_f32(src: &Dataset) -> DatasetI8 {
        let dim = src.dim();
        let n = src.len();
        let mut scales = vec![0.0f32; dim];
        for i in 0..n {
            for (j, &x) in src.row(i).iter().enumerate() {
                scales[j] = scales[j].max(x.abs());
            }
        }
        for s in &mut scales {
            *s = if *s == 0.0 { 1.0 } else { *s / 127.0 };
        }
        let mut codes = Vec::with_capacity(n * dim);
        for i in 0..n {
            for (j, &x) in src.row(i).iter().enumerate() {
                codes.push((x / scales[j]).round().clamp(-127.0, 127.0) as i8);
            }
        }
        DatasetI8 { codes, scales, dim }
    }

    /// Quantize with scales estimated on a deterministic row sample —
    /// the exact rows `sample_rows(n, sample, derive_seed(seed,
    /// STAGE_SAMPLE))` selects, i.e. the same rows a [`crate::pq`]
    /// codebook trained with the same `seed` fits on. Rows outside the
    /// sample clamp to `±127` when they exceed the sampled maxima.
    pub fn from_f32_sampled(src: &Dataset, sample: usize, seed: u64) -> DatasetI8 {
        let dim = src.dim();
        let rows = sample_rows(src.len(), sample.max(1), derive_seed(seed, STAGE_SAMPLE));
        let mut scales = vec![0.0f32; dim];
        for &i in &rows {
            for (j, &x) in src.row(i as usize).iter().enumerate() {
                scales[j] = scales[j].max(x.abs());
            }
        }
        for s in &mut scales {
            *s = if *s == 0.0 { 1.0 } else { *s / 127.0 };
        }
        let mut codes = Vec::with_capacity(src.len() * dim);
        for i in 0..src.len() {
            for (j, &x) in src.row(i).iter().enumerate() {
                codes.push((x / scales[j]).round().clamp(-127.0, 127.0) as i8);
            }
        }
        DatasetI8 { codes, scales, dim }
    }

    /// Per-dimension dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Raw codes of row `i`.
    pub fn row_codes(&self, i: usize) -> &[i8] {
        &self.codes[i * self.dim..(i + 1) * self.dim]
    }

    /// Worst-case absolute reconstruction error per dimension
    /// (half a quantization step).
    pub fn max_abs_error(&self, j: usize) -> f32 {
        self.scales[j] * 0.5
    }
}

impl VectorStore for DatasetI8 {
    fn len(&self) -> usize {
        self.codes.len() / self.dim
    }
    fn dim(&self) -> usize {
        self.dim
    }
    fn get_into(&self, i: usize, out: &mut [f32]) {
        for ((o, &c), &s) in out.iter_mut().zip(self.row_codes(i)).zip(&self.scales) {
            *o = c as f32 * s;
        }
    }
    fn bytes_per_vector(&self) -> usize {
        self.dim // one byte per element; scales amortize to ~0
    }
    fn flat_i8(&self) -> Option<(&[i8], &[f32])> {
        Some((&self.codes, &self.scales))
    }
}

impl crate::storage::PermutableStore for DatasetI8 {
    fn permuted(&self, old_of_new: &[u32]) -> Self {
        assert_eq!(old_of_new.len(), self.len(), "permutation/store size mismatch");
        let mut codes = Vec::with_capacity(self.codes.len());
        for &old in old_of_new {
            codes.extend_from_slice(self.row_codes(old as usize));
        }
        // Scales are per-dimension, not per-row: they do not move.
        DatasetI8 { codes, scales: self.scales.clone(), dim: self.dim }
    }
}

impl Dataset {
    /// Quantize to int8 (see [`DatasetI8`]).
    pub fn to_i8(&self) -> DatasetI8 {
        DatasetI8::from_f32(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_within_half_a_step() {
        let d = Dataset::from_flat(vec![1.0, -50.0, 0.25, 120.0, 0.5, -0.125, -3.0, 60.0], 2);
        let q = d.to_i8();
        let mut out = vec![0.0f32; 2];
        for i in 0..d.len() {
            q.get_into(i, &mut out);
            for (j, &o) in out.iter().enumerate() {
                let err = (o - d.row(i)[j]).abs();
                // 1.01x allows for f32 rounding in the scale itself.
                assert!(
                    err <= q.max_abs_error(j) * 1.01 + 1e-6,
                    "row {i} dim {j}: err {err} > bound {}",
                    q.max_abs_error(j)
                );
            }
        }
    }

    #[test]
    fn extremes_map_to_full_range() {
        let d = Dataset::from_flat(vec![127.0, -127.0, 0.0, 63.5], 1);
        let q = d.to_i8();
        assert_eq!(q.row_codes(0), &[127]);
        assert_eq!(q.row_codes(1), &[-127]);
        assert_eq!(q.row_codes(2), &[0]);
    }

    #[test]
    fn constant_zero_dimension_is_safe() {
        let d = Dataset::from_flat(vec![0.0, 5.0, 0.0, -5.0], 2);
        let q = d.to_i8();
        let mut out = vec![0.0f32; 2];
        q.get_into(0, &mut out);
        assert_eq!(out[0], 0.0); // no NaN from a zero scale
    }

    #[test]
    fn quarter_the_footprint_of_fp32() {
        let d = Dataset::from_flat(vec![1.0; 64], 16);
        let q = d.to_i8();
        assert_eq!(q.bytes_per_vector() * 4, d.bytes_per_vector());
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn sampled_scales_are_reproducible_and_shared_with_pq() {
        use crate::synth::{Family, SynthSpec};
        let spec = SynthSpec { dim: 6, n: 200, queries: 0, family: Family::Gaussian, seed: 3 };
        let (d, _) = spec.generate();
        // Same (data, seed) => bit-identical codes, run to run. The
        // fit is a single seeded RNG stream, so CAGRA_THREADS (or any
        // other ambient parallelism) cannot perturb it.
        let a = DatasetI8::from_f32_sampled(&d, 64, 77);
        let b = DatasetI8::from_f32_sampled(&d, 64, 77);
        assert_eq!(a.row_codes(5), b.row_codes(5));
        assert_eq!(a.scales(), b.scales());
        // The scale fit uses the same sampler stage as PQ k-means:
        // reproducing the draw by hand gives the same maxima.
        let rows = crate::sample::sample_rows(
            200,
            64,
            crate::sample::derive_seed(77, crate::sample::STAGE_SAMPLE),
        );
        let mut want = vec![0.0f32; 6];
        for &i in &rows {
            for (j, &x) in d.row(i as usize).iter().enumerate() {
                want[j] = want[j].max(x.abs());
            }
        }
        for (s, w) in a.scales().iter().zip(&want) {
            assert_eq!(*s, if *w == 0.0 { 1.0 } else { *w / 127.0 });
        }
        // A sample covering every row reproduces the exact path.
        let full = DatasetI8::from_f32_sampled(&d, 200, 77);
        let exact = DatasetI8::from_f32(&d);
        assert_eq!(full.scales(), exact.scales());
    }

    #[test]
    fn per_dimension_scales_preserve_small_dimensions() {
        // Dim 0 spans +-100, dim 1 spans +-0.1; a global scale would
        // crush dim 1 to ~0 codes.
        let d = Dataset::from_flat(vec![100.0, 0.1, -100.0, -0.1, 50.0, 0.05], 2);
        let q = d.to_i8();
        assert_eq!(q.row_codes(0)[1], 127, "small dimension must use the full code range");
    }
}
