//! Readers and writers for the TexMex ANN benchmark file formats.
//!
//! The paper's datasets (SIFT-1M, GIST-1M, …) are distributed as
//! `fvecs`/`ivecs`/`bvecs` files: every vector is a little-endian
//! `u32` dimension header followed by `dim` elements (f32, i32 or u8
//! respectively). These routines let real dataset files be dropped
//! into the experiment harness in place of the synthetic presets.

use crate::storage::Dataset;
use std::io::{self, Read, Write};

/// Read an `fvecs` stream into a [`Dataset`].
///
/// Fails with `InvalidData` on inconsistent per-vector dimensions or a
/// truncated stream.
pub fn read_fvecs<R: Read>(mut r: R) -> io::Result<Dataset> {
    let mut flat = Vec::new();
    let mut dim: Option<usize> = None;
    while let Some(d) = read_u32_opt(&mut r)? {
        let d = d as usize;
        if d == 0 {
            return Err(invalid("fvecs vector with zero dimension"));
        }
        match dim {
            None => dim = Some(d),
            Some(expect) if expect != d => {
                return Err(invalid(&format!("inconsistent fvecs dims: {expect} vs {d}")))
            }
            _ => {}
        }
        let mut buf = vec![0u8; d * 4];
        r.read_exact(&mut buf)?;
        flat.extend(buf.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])));
    }
    let dim = dim.ok_or_else(|| invalid("empty fvecs stream"))?;
    Ok(Dataset::from_flat(flat, dim))
}

/// Write a [`Dataset`] as an `fvecs` stream.
pub fn write_fvecs<W: Write>(mut w: W, data: &Dataset) -> io::Result<()> {
    use crate::storage::VectorStore;
    for i in 0..data.len() {
        w.write_all(&(data.dim() as u32).to_le_bytes())?;
        for &x in data.row(i) {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read an `ivecs` stream (used for ground-truth neighbor id lists).
pub fn read_ivecs<R: Read>(mut r: R) -> io::Result<Vec<Vec<u32>>> {
    let mut rows = Vec::new();
    while let Some(d) = read_u32_opt(&mut r)? {
        let mut buf = vec![0u8; d as usize * 4];
        r.read_exact(&mut buf)?;
        rows.push(
            buf.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect(),
        );
    }
    Ok(rows)
}

/// Write ground-truth id lists as an `ivecs` stream.
pub fn write_ivecs<W: Write>(mut w: W, rows: &[Vec<u32>]) -> io::Result<()> {
    for row in rows {
        w.write_all(&(row.len() as u32).to_le_bytes())?;
        for &x in row {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read a `bvecs` stream (u8 elements, e.g. raw SIFT descriptors),
/// widening the bytes to f32.
pub fn read_bvecs<R: Read>(mut r: R) -> io::Result<Dataset> {
    let mut flat = Vec::new();
    let mut dim: Option<usize> = None;
    while let Some(d) = read_u32_opt(&mut r)? {
        let d = d as usize;
        if d == 0 {
            return Err(invalid("bvecs vector with zero dimension"));
        }
        match dim {
            None => dim = Some(d),
            Some(expect) if expect != d => {
                return Err(invalid(&format!("inconsistent bvecs dims: {expect} vs {d}")))
            }
            _ => {}
        }
        let mut buf = vec![0u8; d];
        r.read_exact(&mut buf)?;
        flat.extend(buf.iter().map(|&b| b as f32));
    }
    let dim = dim.ok_or_else(|| invalid("empty bvecs stream"))?;
    Ok(Dataset::from_flat(flat, dim))
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Read one little-endian u32, or `None` at a clean end of stream.
fn read_u32_opt<R: Read>(r: &mut R) -> io::Result<Option<u32>> {
    let mut buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(invalid("truncated vector header"));
        }
        filled += n;
    }
    Ok(Some(u32::from_le_bytes(buf)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::VectorStore;

    #[test]
    fn fvecs_round_trip() {
        let d = Dataset::from_flat(vec![1.0, 2.0, 3.0, -4.5, 0.25, 1e9], 3);
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &d).unwrap();
        let back = read_fvecs(&buf[..]).unwrap();
        assert_eq!(back.dim(), 3);
        assert_eq!(back.as_flat(), d.as_flat());
    }

    #[test]
    fn ivecs_round_trip_with_ragged_rows() {
        let rows = vec![vec![1, 2, 3], vec![7], vec![]];
        let mut buf = Vec::new();
        write_ivecs(&mut buf, &rows).unwrap();
        assert_eq!(read_ivecs(&buf[..]).unwrap(), rows);
    }

    #[test]
    fn bvecs_widens_bytes() {
        // dim=2, one vector [5, 250]
        let bytes = [2u8, 0, 0, 0, 5, 250];
        let d = read_bvecs(&bytes[..]).unwrap();
        assert_eq!(d.row(0), &[5.0, 250.0]);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let bytes = [3u8, 0, 0, 0, 1, 2]; // header says dim=3 but only 2 bytes follow
        assert!(read_fvecs(&bytes[..]).is_err());
        // Truncated header too.
        let bytes = [3u8, 0];
        assert!(read_fvecs(&bytes[..]).is_err());
    }

    #[test]
    fn inconsistent_dims_rejected() {
        let d1 = Dataset::from_flat(vec![1.0, 2.0], 2);
        let d2 = Dataset::from_flat(vec![1.0, 2.0, 3.0], 3);
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &d1).unwrap();
        write_fvecs(&mut buf, &d2).unwrap();
        assert!(read_fvecs(&buf[..]).is_err());
    }

    #[test]
    fn empty_stream_is_an_error_for_fvecs() {
        assert!(read_fvecs(&[][..]).is_err());
        // ...but an empty ivecs stream is just zero rows.
        assert!(read_ivecs(&[][..]).unwrap().is_empty());
    }
}

/// Read a `fbin` stream (big-ann-benchmarks format: `u32 n`, `u32 dim`,
/// then `n * dim` little-endian f32). DEEP-100M and the NeurIPS'21
/// billion-scale challenge sets (which the paper cites) ship this way.
pub fn read_fbin<R: Read>(mut r: R) -> io::Result<Dataset> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let n = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let dim = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if dim == 0 {
        return Err(invalid("fbin with zero dimension"));
    }
    let total = n
        .checked_mul(dim)
        .and_then(|t| t.checked_mul(4))
        .ok_or_else(|| invalid("fbin size overflow"))?;
    let mut buf = vec![0u8; total];
    r.read_exact(&mut buf)?;
    let flat = buf.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    Ok(Dataset::from_flat(flat, dim))
}

/// Write a [`Dataset`] as `fbin`.
pub fn write_fbin<W: Write>(mut w: W, data: &Dataset) -> io::Result<()> {
    use crate::storage::VectorStore;
    w.write_all(&(data.len() as u32).to_le_bytes())?;
    w.write_all(&(data.dim() as u32).to_le_bytes())?;
    for &x in data.as_flat() {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod fbin_tests {
    use super::*;
    use crate::storage::VectorStore;

    #[test]
    fn fbin_round_trip() {
        let d = Dataset::from_flat(vec![1.5, -2.0, 0.0, 9.75, 3.25, -8.5], 3);
        let mut buf = Vec::new();
        write_fbin(&mut buf, &d).unwrap();
        let back = read_fbin(&buf[..]).unwrap();
        assert_eq!(back.dim(), 3);
        assert_eq!(back.as_flat(), d.as_flat());
    }

    #[test]
    fn fbin_empty_dataset_round_trips() {
        let d = Dataset::empty(7);
        let mut buf = Vec::new();
        write_fbin(&mut buf, &d).unwrap();
        let back = read_fbin(&buf[..]).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.dim(), 7);
    }

    #[test]
    fn fbin_truncation_and_zero_dim_rejected() {
        let d = Dataset::from_flat(vec![1.0, 2.0], 2);
        let mut buf = Vec::new();
        write_fbin(&mut buf, &d).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_fbin(&buf[..]).is_err());
        let bad = [1u8, 0, 0, 0, 0, 0, 0, 0]; // n=1, dim=0
        assert!(read_fbin(&bad[..]).is_err());
    }
}
