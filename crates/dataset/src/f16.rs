//! IEEE-754 binary16 ("half precision") implementation.
//!
//! The paper's FP16 experiments (Figs. 13 and 14) store dataset vectors
//! in half precision to halve memory traffic; arithmetic is still done
//! in f32 after widening, mirroring CUDA's `__half2float` path. The
//! allowed offline crate list does not include `half`, so the conversion
//! is implemented here. Round-to-nearest-even is used on narrowing,
//! which is what CUDA's `__float2half_rn` does.

/// A 16-bit IEEE-754 binary16 float stored as its raw bit pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[repr(transparent)]
pub struct F16(pub u16);

const EXP_MASK32: u32 = 0x7f80_0000;
const SIG_MASK32: u32 = 0x007f_ffff;

impl F16 {
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Largest finite value (65504.0).
    pub const MAX: F16 = F16(0x7bff);
    /// Zero.
    pub const ZERO: F16 = F16(0);

    /// Convert from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> F16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = (bits & EXP_MASK32) >> 23;
        let sig = bits & SIG_MASK32;

        if exp == 0xff {
            // Inf or NaN. Preserve NaN-ness by keeping a nonzero payload.
            let payload = if sig != 0 { 0x0200 | ((sig >> 13) as u16 & 0x03ff) } else { 0 };
            return F16(sign | 0x7c00 | payload);
        }

        // Unbiased exponent in f32 is exp - 127; f16 bias is 15.
        let unbiased = exp as i32 - 127;
        if unbiased >= 16 {
            // Overflows to infinity.
            return F16(sign | 0x7c00);
        }
        if unbiased >= -14 {
            // Normal f16 range. 13 significand bits are dropped.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let half_sig = (sig >> 13) as u16;
            let mut out = sign | half_exp | half_sig;
            // Round to nearest even on the dropped 13 bits.
            let round_bits = sig & 0x1fff;
            if round_bits > 0x1000 || (round_bits == 0x1000 && (half_sig & 1) == 1) {
                out = out.wrapping_add(1); // may carry into exponent; that is correct
            }
            return F16(out);
        }
        if unbiased >= -25 {
            // Subnormal f16. Implicit leading 1 becomes explicit.
            let full_sig = sig | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let half_sig = (full_sig >> shift) as u16;
            let mut out = sign | half_sig;
            let dropped = full_sig & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            if dropped > halfway || (dropped == halfway && (half_sig & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        // Underflows to signed zero.
        F16(sign)
    }

    /// Widen to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let bits = self.0 as u32;
        let sign = (bits & 0x8000) << 16;
        let exp = (bits >> 10) & 0x1f;
        let sig = bits & 0x03ff;
        let out = if exp == 0 {
            if sig == 0 {
                sign // signed zero
            } else {
                // Subnormal: value is sig * 2^-24. Normalize it.
                let mut e = 0i32;
                let mut s = sig;
                while s & 0x0400 == 0 {
                    s <<= 1;
                    e -= 1;
                }
                let exp32 = ((127 - 15 + e + 1) as u32) << 23;
                sign | exp32 | ((s & 0x03ff) << 13)
            }
        } else if exp == 0x1f {
            sign | EXP_MASK32 | (sig << 13) // Inf / NaN
        } else {
            sign | ((exp + 127 - 15) << 23) | (sig << 13)
        };
        f32::from_bits(out)
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x03ff) != 0
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

/// Narrow a full slice to binary16.
pub fn narrow_slice(src: &[f32]) -> Vec<F16> {
    src.iter().map(|&x| F16::from_f32(x)).collect()
}

/// Widen a binary16 slice back to f32, writing into `dst`.
pub fn widen_into(src: &[F16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "widen_into length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(F16::from_f32(x).to_f32(), x, "integer {i} must be exact");
        }
    }

    #[test]
    fn well_known_values() {
        assert_eq!(F16::from_f32(1.0).0, 0x3c00);
        assert_eq!(F16::from_f32(-2.0).0, 0xc000);
        assert_eq!(F16::from_f32(0.5).0, 0x3800);
        assert_eq!(F16::from_f32(65504.0).0, 0x7bff);
        assert_eq!(F16::from_f32(f32::INFINITY).0, 0x7c00);
        assert_eq!(F16::from_f32(-f32::INFINITY).0, 0xfc00);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(F16::from_f32(65520.0).0, 0x7c00); // rounds up past MAX
        assert_eq!(F16::from_f32(1e30).0, 0x7c00);
        assert_eq!(F16::from_f32(-1e30).0, 0xfc00);
    }

    #[test]
    fn underflow_to_zero_and_subnormals() {
        assert_eq!(F16::from_f32(0.0).0, 0x0000);
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
        // Smallest positive subnormal is 2^-24.
        let tiny = 2f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).0, 0x0001);
        assert_eq!(F16(0x0001).to_f32(), tiny);
        // Below half the smallest subnormal flushes to zero.
        assert_eq!(F16::from_f32(2f32.powi(-26)).0, 0x0000);
    }

    #[test]
    fn nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next f16;
        // ties-to-even keeps 1.0 (even significand).
        let halfway = 1.0 + 2f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).0, 0x3c00);
        // 1.0 + 3*2^-11 is halfway with an odd low bit; rounds up.
        let halfway_odd = 1.0 + 3.0 * 2f32.powi(-11);
        assert_eq!(F16::from_f32(halfway_odd).0, 0x3c02);
    }

    #[test]
    fn relative_error_bound_in_normal_range() {
        // Max relative rounding error for binary16 normals is 2^-11.
        let mut x = 6.2e-5f32; // just above the smallest f16 normal, 2^-14
        while x < 6.0e4 {
            let rt = F16::from_f32(x).to_f32();
            let rel = ((rt - x) / x).abs();
            assert!(rel <= 2f32.powi(-11), "x={x} rt={rt} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn narrow_widen_slice_helpers() {
        let src = vec![0.0f32, 1.5, -3.25, 100.0];
        let n = narrow_slice(&src);
        let mut out = vec![0.0f32; 4];
        widen_into(&n, &mut out);
        assert_eq!(out, src);
    }
}
