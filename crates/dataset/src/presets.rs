//! Synthetic presets mirroring Table I of the paper.
//!
//! Each preset fixes the dimension, data family, CAGRA graph degree
//! `d`, and a *relative* size; the absolute vector count is scaled by
//! the experiment harness (paper sizes are 290k–100M, which do not fit
//! a 1-core reproduction host — the scale used for each experiment is
//! recorded in EXPERIMENTS.md).

use crate::synth::{Family, SynthSpec};
use serde::{Deserialize, Serialize};

/// The datasets of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PresetName {
    /// SIFT-1M: 128-dim local image descriptors, 1M vectors, d=32.
    Sift,
    /// GIST-1M: 960-dim global image descriptors, 1M vectors, d=48.
    Gist,
    /// GloVe-200: 200-dim word embeddings, 1.18M vectors, d=80 ("hard").
    Glove,
    /// NYTimes: 256-dim document embeddings, 290k vectors, d=64 ("hard").
    NyTimes,
    /// DEEP: 96-dim CNN descriptors, 1M/10M/100M vectors, d=32.
    Deep,
}

impl PresetName {
    /// All presets, in the paper's Table I order.
    pub const ALL: [PresetName; 5] = [
        PresetName::Sift,
        PresetName::Gist,
        PresetName::Glove,
        PresetName::NyTimes,
        PresetName::Deep,
    ];

    /// Short lowercase label used in reports and CLI arguments.
    pub fn label(self) -> &'static str {
        match self {
            PresetName::Sift => "sift",
            PresetName::Gist => "gist",
            PresetName::Glove => "glove",
            PresetName::NyTimes => "nytimes",
            PresetName::Deep => "deep",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<PresetName> {
        Self::ALL.into_iter().find(|p| p.label() == s)
    }
}

/// A Table I row: the dataset's shape plus the paper's chosen CAGRA
/// graph degree for it.
#[derive(Clone, Debug)]
pub struct DatasetPreset {
    /// Which dataset this mimics.
    pub name: PresetName,
    /// Vector dimensionality (exactly as in Table I).
    pub dim: usize,
    /// Paper's dataset size (for reporting; experiments scale this).
    pub paper_n: usize,
    /// CAGRA graph degree `d` from Table I.
    pub cagra_degree: usize,
    /// Distribution family used by the synthetic substitute.
    pub family: Family,
}

impl DatasetPreset {
    /// Look up the Table I row for a preset.
    pub fn get(name: PresetName) -> DatasetPreset {
        match name {
            PresetName::Sift => DatasetPreset {
                name,
                dim: 128,
                paper_n: 1_000_000,
                cagra_degree: 32,
                family: Family::Gaussian,
            },
            PresetName::Gist => DatasetPreset {
                name,
                dim: 960,
                paper_n: 1_000_000,
                cagra_degree: 48,
                family: Family::Clustered { clusters: 64, spread: 0.6 },
            },
            PresetName::Glove => DatasetPreset {
                name,
                dim: 200,
                paper_n: 1_183_514,
                cagra_degree: 80,
                // GloVe is the paper's canonical "hard" dataset: strong
                // cluster structure with heavy overlap.
                family: Family::Clustered { clusters: 128, spread: 1.0 },
            },
            PresetName::NyTimes => DatasetPreset {
                name,
                dim: 256,
                paper_n: 290_000,
                cagra_degree: 64,
                family: Family::Clustered { clusters: 96, spread: 0.9 },
            },
            PresetName::Deep => DatasetPreset {
                name,
                dim: 96,
                paper_n: 1_000_000,
                cagra_degree: 32,
                family: Family::Gaussian,
            },
        }
    }

    /// Build a [`SynthSpec`] for this preset at a reduced scale.
    pub fn spec(&self, n: usize, queries: usize, seed: u64) -> SynthSpec {
        SynthSpec { dim: self.dim, n, queries, family: self.family, seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let sift = DatasetPreset::get(PresetName::Sift);
        assert_eq!((sift.dim, sift.cagra_degree, sift.paper_n), (128, 32, 1_000_000));
        let gist = DatasetPreset::get(PresetName::Gist);
        assert_eq!((gist.dim, gist.cagra_degree), (960, 48));
        let glove = DatasetPreset::get(PresetName::Glove);
        assert_eq!((glove.dim, glove.cagra_degree, glove.paper_n), (200, 80, 1_183_514));
        let nyt = DatasetPreset::get(PresetName::NyTimes);
        assert_eq!((nyt.dim, nyt.cagra_degree, nyt.paper_n), (256, 64, 290_000));
        let deep = DatasetPreset::get(PresetName::Deep);
        assert_eq!((deep.dim, deep.cagra_degree), (96, 32));
    }

    #[test]
    fn labels_round_trip() {
        for p in PresetName::ALL {
            assert_eq!(PresetName::parse(p.label()), Some(p));
        }
        assert_eq!(PresetName::parse("nope"), None);
    }

    #[test]
    fn spec_generates_right_shape() {
        let p = DatasetPreset::get(PresetName::Deep);
        let (base, q) = p.spec(100, 5, 0).generate();
        use crate::storage::VectorStore;
        assert_eq!(base.len(), 100);
        assert_eq!(base.dim(), 96);
        assert_eq!(q.len(), 5);
    }
}
