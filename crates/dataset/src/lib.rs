//! Vector dataset substrate for the CAGRA reproduction.
//!
//! Provides the row-major dense matrices that every index in this
//! workspace builds over, an in-repo IEEE-754 binary16 (`f16`)
//! implementation used for the paper's FP16 experiments, readers and
//! writers for the standard `fvecs`/`ivecs`/`bvecs` ANN benchmark file
//! formats, and synthetic workload generators matching the shape and
//! "hardness" of the datasets in Table I of the paper.
//!
//! ```
//! use dataset::synth::{Family, SynthSpec};
//! use dataset::VectorStore;
//!
//! let spec = SynthSpec { dim: 8, n: 100, queries: 2, family: Family::Gaussian, seed: 7 };
//! let (base, queries) = spec.generate();
//! assert_eq!((base.len(), base.dim(), queries.len()), (100, 8, 2));
//!
//! // FP16 and INT8 stores keep the same access interface.
//! let half = base.to_f16();
//! let quant = base.to_i8();
//! assert_eq!(half.bytes_per_vector(), 16);
//! assert_eq!(quant.bytes_per_vector(), 8);
//! ```

pub mod f16;
pub mod io;
pub mod pq;
pub mod presets;
pub mod quantize;
pub mod sample;
pub mod storage;
pub mod synth;

pub use f16::F16;
pub use pq::{PqCodebook, PqConfig, PqStore};
pub use presets::{DatasetPreset, PresetName};
pub use quantize::DatasetI8;
pub use storage::{Dataset, DatasetF16, PermutableStore, PqView, VectorStore};
