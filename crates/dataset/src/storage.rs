//! Row-major dense vector storage.
//!
//! All indexes in the workspace operate on a [`VectorStore`]: a
//! contiguous `N x dim` matrix with O(1) row access. Two concrete
//! stores exist — [`Dataset`] (f32) and [`DatasetF16`] (binary16,
//! widened on access) — mirroring the paper's FP32/FP16 dataset
//! storage options.

use crate::f16::F16;

/// Read access to an `N x dim` collection of vectors.
///
/// `get_into` is the FP16-friendly access path: callers provide a
/// scratch buffer and receive f32 values regardless of the backing
/// precision, the same way the CUDA kernels widen `__half` loads.
pub trait VectorStore: Sync {
    /// Number of vectors.
    fn len(&self) -> usize;
    /// Dimensionality of each vector.
    fn dim(&self) -> usize;
    /// True when the store holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Widen row `i` into `out` (length must equal `dim`).
    fn get_into(&self, i: usize, out: &mut [f32]);
    /// Bytes of memory one vector occupies (drives the bandwidth model
    /// in `gpu-sim`: FP16 halves the traffic).
    fn bytes_per_vector(&self) -> usize;

    /// Borrow row `i` as an f32 slice if the backing storage is f32.
    ///
    /// Fast path used by the distance kernels to avoid a copy; FP16
    /// stores return `None` and callers fall back to `get_into`.
    fn row_f32(&self, _i: usize) -> Option<&[f32]> {
        None
    }

    /// Borrow the whole row-major matrix as f32 if that is the backing
    /// storage. The distance engine resolves this once per oracle and
    /// then slices rows out of the flat buffer with no per-row calls.
    fn flat_f32(&self) -> Option<&[f32]> {
        None
    }

    /// Borrow the whole matrix as raw binary16 if that is the backing
    /// storage. Lets the SIMD distance kernels widen f16 lanes inside
    /// the inner loop instead of paying a `get_into` copy per row.
    fn flat_f16(&self) -> Option<&[F16]> {
        None
    }

    /// Borrow the whole matrix as int8 codes plus per-dimension scales
    /// if that is the backing storage. Lets the SIMD distance kernels
    /// dequantize in-loop instead of copying through `get_into`.
    fn flat_i8(&self) -> Option<(&[i8], &[f32])> {
        None
    }

    /// Borrow the product-quantized code matrix and its codebook if
    /// that is the backing storage. The distance engine resolves this
    /// once per oracle and scores rows with a per-query lookup table
    /// instead of decoding (asymmetric distance computation).
    fn flat_pq(&self) -> Option<PqView<'_>> {
        None
    }
}

/// Borrowed view of a product-quantized store: the raw `n x m` code
/// matrix plus the codebook that interprets it.
#[derive(Clone, Copy, Debug)]
pub struct PqView<'a> {
    /// Row-major codes, `m` bytes per vector.
    pub codes: &'a [u8],
    /// The shared per-subspace centroid tables.
    pub codebook: &'a crate::pq::PqCodebook,
}

/// A store whose rows can be reordered by a vertex permutation.
///
/// Row `new` of the result is row `old_of_new[new]` of the original —
/// the same convention `graph::relabel` uses, so a graph and its
/// vector store relabel jointly with one permutation. Implementations
/// must preserve values bit-exactly (a relabeled index has to return
/// bit-identical, id-mapped search results).
pub trait PermutableStore: Sized {
    /// Reordered copy of the store.
    ///
    /// # Panics
    /// Panics if `old_of_new.len()` differs from `self.len()` or any
    /// entry is out of range.
    fn permuted(&self, old_of_new: &[u32]) -> Self;
}

/// An owned row-major f32 matrix.
#[derive(Clone, Debug)]
pub struct Dataset {
    data: Vec<f32>,
    dim: usize,
}

impl Dataset {
    /// Create a dataset from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_flat(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Dataset { data, dim }
    }

    /// Create an empty dataset with the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        Self::from_flat(Vec::new(), dim)
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Append one vector.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector length must equal dim");
        self.data.extend_from_slice(v);
    }

    /// The flat row-major buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Convert to half precision storage.
    pub fn to_f16(&self) -> DatasetF16 {
        DatasetF16 { data: crate::f16::narrow_slice(&self.data), dim: self.dim }
    }

    /// Keep only the first `n` vectors (used to derive DEEP-1M-like
    /// prefixes from a DEEP-100M-like base, as the paper does).
    pub fn truncate(&mut self, n: usize) {
        let keep = n.min(self.len());
        self.data.truncate(keep * self.dim);
    }
}

impl VectorStore for Dataset {
    fn len(&self) -> usize {
        self.data.len() / self.dim
    }
    fn dim(&self) -> usize {
        self.dim
    }
    fn get_into(&self, i: usize, out: &mut [f32]) {
        out.copy_from_slice(self.row(i));
    }
    fn bytes_per_vector(&self) -> usize {
        self.dim * 4
    }
    fn row_f32(&self, i: usize) -> Option<&[f32]> {
        Some(self.row(i))
    }
    fn flat_f32(&self) -> Option<&[f32]> {
        Some(&self.data)
    }
}

impl PermutableStore for Dataset {
    fn permuted(&self, old_of_new: &[u32]) -> Self {
        assert_eq!(old_of_new.len(), self.len(), "permutation/store size mismatch");
        let mut data = Vec::with_capacity(self.data.len());
        for &old in old_of_new {
            data.extend_from_slice(self.row(old as usize));
        }
        Dataset { data, dim: self.dim }
    }
}

/// An owned row-major binary16 matrix; rows widen to f32 on access.
#[derive(Clone, Debug)]
pub struct DatasetF16 {
    data: Vec<F16>,
    dim: usize,
}

impl DatasetF16 {
    /// Create from a flat row-major binary16 buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or the length is not a multiple of `dim`.
    pub fn from_flat(data: Vec<F16>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(data.len().is_multiple_of(dim), "flat buffer length not a multiple of dim");
        DatasetF16 { data, dim }
    }

    /// Row `i` in raw binary16.
    pub fn row_raw(&self, i: usize) -> &[F16] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

impl VectorStore for DatasetF16 {
    fn len(&self) -> usize {
        self.data.len() / self.dim
    }
    fn dim(&self) -> usize {
        self.dim
    }
    fn get_into(&self, i: usize, out: &mut [f32]) {
        crate::f16::widen_into(self.row_raw(i), out);
    }
    fn bytes_per_vector(&self) -> usize {
        self.dim * 2
    }
    fn flat_f16(&self) -> Option<&[F16]> {
        Some(&self.data)
    }
}

impl PermutableStore for DatasetF16 {
    fn permuted(&self, old_of_new: &[u32]) -> Self {
        assert_eq!(old_of_new.len(), self.len(), "permutation/store size mismatch");
        let mut data = Vec::with_capacity(self.data.len());
        for &old in old_of_new {
            data.extend_from_slice(self.row_raw(old as usize));
        }
        DatasetF16 { data, dim: self.dim }
    }
}

#[cfg(test)]
mod permute_tests {
    use super::*;

    #[test]
    fn permuted_rows_are_bit_identical_copies() {
        let d = Dataset::from_flat((0..12).map(|x| x as f32).collect(), 3);
        let p = d.permuted(&[3, 1, 0, 2]);
        assert_eq!(p.row(0), d.row(3));
        assert_eq!(p.row(1), d.row(1));
        assert_eq!(p.row(2), d.row(0));
        assert_eq!(p.row(3), d.row(2));
    }

    #[test]
    fn f16_permutes_raw_rows() {
        let d = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).to_f16();
        let p = d.permuted(&[1, 0]);
        assert_eq!(p.row_raw(0), d.row_raw(1));
        assert_eq!(p.row_raw(1), d.row_raw(0));
    }

    #[test]
    fn i8_permutes_codes_and_keeps_scales() {
        let d = Dataset::from_flat(vec![1.0, -2.0, 3.0, -4.0], 2).to_i8();
        let p = d.permuted(&[1, 0]);
        assert_eq!(p.row_codes(0), d.row_codes(1));
        assert_eq!(p.row_codes(1), d.row_codes(0));
        assert_eq!(p.scales(), d.scales());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_length_rejected() {
        Dataset::from_flat(vec![0.0; 4], 2).permuted(&[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flat_and_row_access() {
        let d = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(d.row(1), &[4.0, 5.0, 6.0]);
        assert!(!d.is_empty());
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::empty(8);
        assert_eq!(d.len(), 0);
        assert!(d.is_empty());
        assert_eq!(d.dim(), 8);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn ragged_flat_buffer_rejected() {
        Dataset::from_flat(vec![1.0; 7], 3);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        Dataset::from_flat(vec![], 0);
    }

    #[test]
    fn push_grows_dataset() {
        let mut d = Dataset::empty(2);
        d.push(&[1.0, 2.0]);
        d.push(&[3.0, 4.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let mut d = Dataset::from_flat((0..12).map(|x| x as f32).collect(), 3);
        d.truncate(2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0, 5.0]);
        d.truncate(100); // larger than len is a no-op
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn f16_store_widens_on_access() {
        let d = Dataset::from_flat(vec![1.0, -2.5, 0.0, 4.0], 2);
        let h = d.to_f16();
        assert_eq!(h.len(), 2);
        assert_eq!(h.bytes_per_vector(), 4);
        assert_eq!(d.bytes_per_vector(), 8);
        let mut buf = [0.0f32; 2];
        h.get_into(1, &mut buf);
        assert_eq!(buf, [0.0, 4.0]);
        assert!(h.row_f32(0).is_none());
        assert_eq!(d.row_f32(0), Some(&[1.0, -2.5][..]));
    }
}

impl Dataset {
    /// L2-normalize every vector in place (unit sphere). Standard
    /// preprocessing for angular/cosine datasets such as GloVe; zero
    /// vectors are left untouched.
    pub fn normalize_l2(&mut self) {
        let dim = self.dim;
        for row in self.data.chunks_exact_mut(dim) {
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for x in row {
                    *x /= norm;
                }
            }
        }
    }

    /// Subtract the per-dimension mean in place (centering), returning
    /// the mean vector. Centering before inner-product search is a
    /// common embedding-pipeline step.
    pub fn center(&mut self) -> Vec<f32> {
        let dim = self.dim;
        let n = self.len();
        let mut mean = vec![0.0f32; dim];
        if n == 0 {
            return mean;
        }
        for row in self.data.chunks_exact(dim) {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        for row in self.data.chunks_exact_mut(dim) {
            for (x, &m) in row.iter_mut().zip(&mean) {
                *x -= m;
            }
        }
        mean
    }
}

#[cfg(test)]
mod preprocessing_tests {
    use super::*;

    #[test]
    fn normalize_produces_unit_rows_and_keeps_zero() {
        let mut d = Dataset::from_flat(vec![3.0, 4.0, 0.0, 0.0], 2);
        d.normalize_l2();
        assert_eq!(d.row(0), &[0.6, 0.8]);
        assert_eq!(d.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn center_zeroes_the_mean() {
        let mut d = Dataset::from_flat(vec![1.0, 10.0, 3.0, 20.0], 2);
        let mean = d.center();
        assert_eq!(mean, vec![2.0, 15.0]);
        assert_eq!(d.row(0), &[-1.0, -5.0]);
        assert_eq!(d.row(1), &[1.0, 5.0]);
        let total: f32 = d.as_flat().iter().sum();
        assert!(total.abs() < 1e-6);
    }

    #[test]
    fn center_empty_is_safe() {
        let mut d = Dataset::empty(3);
        assert_eq!(d.center(), vec![0.0, 0.0, 0.0]);
    }
}
