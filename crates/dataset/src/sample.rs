//! Deterministic row sampling shared by the quantizer trainers.
//!
//! Both scalar (int8) and product quantization fit their parameters on
//! a subset of the dataset. That fit must be reproducible: the same
//! `(n, target, seed)` triple yields the same rows on every run, under
//! any `CAGRA_THREADS` setting, because sampling runs on a single
//! `StdRng` seeded here and never from ambient state. Stage seeds are
//! derived with the same golden-ratio stride the search path uses for
//! per-query seeds (`SearchParams::seed_for_query`), so every consumer
//! of a workload seed decorrelates its stream the same way.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The golden-ratio stride (2^64 / phi) used to derive decorrelated
/// per-stage seeds from one workload seed.
pub const GOLDEN_STRIDE: u64 = 0x9e37_79b9_7f4a_7c15;

/// Stage id for drawing the training-row sample. Shared by the PQ
/// k-means trainer and the int8 scale estimator so both quantizers
/// fit on the *same* rows for a given seed.
pub const STAGE_SAMPLE: u64 = 1;
/// Stage id for the OPQ rotation draw.
pub const STAGE_ROTATION: u64 = 2;
/// First stage id of the per-subspace k-means streams (subspace `s`
/// uses `STAGE_KMEANS + s`).
pub const STAGE_KMEANS: u64 = 16;

/// Derive the seed for an enumerated training stage (subspace index,
/// quantizer pass, ...) from a base seed. Matches the per-query seed
/// derivation in `cagra::SearchParams` so seeds never collide across
/// layers that share one workload seed.
pub fn derive_seed(seed: u64, stage: u64) -> u64 {
    seed.wrapping_add(stage.wrapping_mul(GOLDEN_STRIDE))
}

/// Choose `min(target, n)` distinct row indices, returned ascending
/// (ascending order keeps the subsequent gather sequential on disk and
/// in cache). Partial Fisher–Yates over an index arena: O(n) memory,
/// O(target) RNG draws, fully deterministic for a given seed.
pub fn sample_rows(n: usize, target: usize, seed: u64) -> Vec<u32> {
    assert!(n <= u32::MAX as usize, "store too large for u32 row ids");
    if target >= n {
        return (0..n as u32).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<u32> = (0..n as u32).collect();
    for i in 0..target {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(target);
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        assert_eq!(sample_rows(1000, 64, 42), sample_rows(1000, 64, 42));
        assert_ne!(sample_rows(1000, 64, 42), sample_rows(1000, 64, 43));
    }

    #[test]
    fn full_range_when_target_covers_n() {
        let all: Vec<u32> = (0..10).collect();
        assert_eq!(sample_rows(10, 10, 7), all);
        assert_eq!(sample_rows(10, 99, 7), all);
    }

    #[test]
    fn distinct_sorted_and_in_range() {
        let s = sample_rows(500, 100, 9);
        assert_eq!(s.len(), 100);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "ascending + distinct");
        assert!(s.iter().all(|&i| (i as usize) < 500));
    }

    #[test]
    fn stage_seeds_decorrelate() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        assert_ne!(a, b);
        assert_ne!(sample_rows(100, 10, a), sample_rows(100, 10, b));
    }
}
