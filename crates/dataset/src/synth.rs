//! Synthetic workload generators.
//!
//! The paper evaluates on SIFT-1M, GIST-1M, GloVe-200, NYTimes, and
//! DEEP-1M/10M/100M. Those files are not redistributable here, so each
//! is substituted with a generator that matches the properties that
//! drive graph-ANN behaviour: dimensionality, dataset size, metric, and
//! *hardness* (local intrinsic dimensionality / cluster structure —
//! GloVe and NYTimes are the paper's "harder" datasets). The
//! generators are deterministic given a seed so experiments are
//! reproducible.

use crate::storage::Dataset;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The distributional family of a synthetic workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Family {
    /// i.i.d. Gaussian cloud — "easy" data like DEEP/SIFT descriptors
    /// after whitening. Neighbors are well separated.
    Gaussian,
    /// Mixture of Gaussian clusters with shared subspace correlations —
    /// mimics learned embeddings (GloVe, NYTimes) where many points
    /// have near-tied neighbors; the paper calls these "harder".
    Clustered {
        /// Number of mixture components.
        clusters: usize,
        /// Ratio of within-cluster spread to between-cluster spread.
        /// Larger values blur clusters together and make search harder.
        spread: f32,
    },
    /// Points on the unit sphere (angular datasets such as GloVe are
    /// typically searched under cosine/inner-product).
    UnitSphere,
}

/// A fully specified synthetic workload.
#[derive(Clone, Debug)]
pub struct SynthSpec {
    /// Dimensionality.
    pub dim: usize,
    /// Number of base vectors.
    pub n: usize,
    /// Number of held-out query vectors.
    pub queries: usize,
    /// Distribution family.
    pub family: Family,
    /// RNG seed (generation is deterministic given the spec).
    pub seed: u64,
}

impl SynthSpec {
    /// Generate base vectors and queries drawn from the same
    /// distribution (queries use a derived seed so they are held out).
    pub fn generate(&self) -> (Dataset, Dataset) {
        let base = self.generate_part(self.n, self.seed);
        let queries = self.generate_part(self.queries, self.seed ^ 0x9e37_79b9_7f4a_7c15);
        (base, queries)
    }

    fn generate_part(&self, count: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        match self.family {
            Family::Gaussian => gaussian(&mut rng, count, self.dim),
            Family::Clustered { clusters, spread } => {
                clustered(&mut rng, count, self.dim, clusters.max(1), spread)
            }
            Family::UnitSphere => unit_sphere(&mut rng, count, self.dim),
        }
    }
}

/// Standard normal sampled via Box–Muller (avoids depending on
/// `rand_distr`, which is outside the allowed crate list).
pub(crate) struct StdNormal;

impl Distribution<f32> for StdNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Draw u1 in (0,1] to keep ln() finite.
        let u1: f32 = 1.0 - rng.gen::<f32>();
        let u2: f32 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }
}

fn gaussian(rng: &mut StdRng, n: usize, dim: usize) -> Dataset {
    let normal = StdNormal;
    let flat: Vec<f32> = (0..n * dim).map(|_| normal.sample(rng)).collect();
    Dataset::from_flat(flat, dim)
}

fn clustered(rng: &mut StdRng, n: usize, dim: usize, clusters: usize, spread: f32) -> Dataset {
    let normal = StdNormal;
    // Cluster centers on a unit Gaussian; anisotropic within-cluster
    // covariance via per-cluster random axis scaling, which produces
    // the low-dimensional local structure typical of embeddings. Unit
    // center variance keeps the separation-to-spread ratio independent
    // of dimensionality (so a 960-dim "hard" preset is hard, not a set
    // of disjoint islands).
    let centers: Vec<f32> = (0..clusters * dim).map(|_| normal.sample(rng)).collect();
    let scales: Vec<f32> = (0..clusters * dim)
        .map(|_| {
            let u: f32 = rng.gen();
            // Heavy-tailed axis scales: a few dominant directions.
            0.2 + u.powi(3) * 1.8
        })
        .collect();
    let mut flat = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let c = rng.gen_range(0..clusters);
        let center = &centers[c * dim..(c + 1) * dim];
        let scale = &scales[c * dim..(c + 1) * dim];
        for j in 0..dim {
            flat.push(center[j] + spread * scale[j] * normal.sample(rng));
        }
    }
    Dataset::from_flat(flat, dim)
}

fn unit_sphere(rng: &mut StdRng, n: usize, dim: usize) -> Dataset {
    let normal = StdNormal;
    let mut flat = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let start = flat.len();
        let mut norm_sq = 0.0f32;
        for _ in 0..dim {
            let x = normal.sample(rng);
            norm_sq += x * x;
            flat.push(x);
        }
        let inv = 1.0 / norm_sq.sqrt().max(1e-20);
        for x in &mut flat[start..] {
            *x *= inv;
        }
    }
    Dataset::from_flat(flat, dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::VectorStore;

    fn spec(family: Family) -> SynthSpec {
        SynthSpec { dim: 16, n: 200, queries: 10, family, seed: 42 }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = spec(Family::Gaussian);
        let (a, _) = s.generate();
        let (b, _) = s.generate();
        assert_eq!(a.as_flat(), b.as_flat());
    }

    #[test]
    fn different_seeds_differ() {
        let mut s = spec(Family::Gaussian);
        let (a, _) = s.generate();
        s.seed = 43;
        let (b, _) = s.generate();
        assert_ne!(a.as_flat(), b.as_flat());
    }

    #[test]
    fn queries_are_held_out() {
        let (base, queries) = spec(Family::Gaussian).generate();
        assert_eq!(base.len(), 200);
        assert_eq!(queries.len(), 10);
        assert_ne!(base.row(0), queries.row(0));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let s = SynthSpec { dim: 8, n: 5000, queries: 0, family: Family::Gaussian, seed: 7 };
        let (base, _) = s.generate();
        let flat = base.as_flat();
        let mean: f32 = flat.iter().sum::<f32>() / flat.len() as f32;
        let var: f32 =
            flat.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / flat.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn unit_sphere_rows_have_unit_norm() {
        let (base, _) = spec(Family::UnitSphere).generate();
        for i in 0..base.len() {
            let n: f32 = base.row(i).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "row {i} norm {n}");
        }
    }

    #[test]
    fn clustered_points_concentrate_near_centers() {
        // With tiny spread, pairwise distances should be strongly
        // bimodal: tiny within clusters, large across.
        let s = SynthSpec {
            dim: 8,
            n: 300,
            queries: 0,
            family: Family::Clustered { clusters: 3, spread: 0.01 },
            seed: 1,
        };
        let (base, _) = s.generate();
        let mut small = 0usize;
        let mut large = 0usize;
        for i in 0..50 {
            for j in (i + 1)..50 {
                let d: f32 =
                    base.row(i).iter().zip(base.row(j)).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < 1.0 {
                    small += 1;
                } else {
                    large += 1;
                }
            }
        }
        assert!(small > 0 && large > 0, "expected bimodal distances, small={small} large={large}");
    }

    #[test]
    fn zero_clusters_clamped_to_one() {
        let s = SynthSpec {
            dim: 4,
            n: 10,
            queries: 0,
            family: Family::Clustered { clusters: 0, spread: 0.5 },
            seed: 1,
        };
        let (base, _) = s.generate();
        assert_eq!(base.len(), 10);
    }
}
