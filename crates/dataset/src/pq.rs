//! Product quantization — compressed vector storage for out-of-core
//! scale (ROADMAP item 3; the paper's DEEP-100M runs need ~400 bytes
//! per vector in f32, PQ brings that to `m` bytes).
//!
//! The vector space is split into `m` contiguous subspaces (the first
//! `dim % m` subspaces take the extra dimension when `m` does not
//! divide `dim`). Each subspace gets its own codebook of up to 256
//! centroids fitted by k-means on a deterministic sample
//! ([`crate::sample`]), and a vector is stored as `m` one-byte
//! centroid indices. Decoding concatenates the chosen centroids;
//! asymmetric distance (in `distance::adc`) never decodes at all — it
//! looks the codes up in a per-query table.
//!
//! An optional OPQ-style rotation multiplies every vector by a seeded
//! random orthonormal matrix before encoding. Rotation mixes
//! coordinates across subspaces, balancing per-subspace energy on
//! datasets whose variance concentrates in a few dimensions; because
//! the matrix is orthonormal, L2 distances and inner products against
//! rotated queries are preserved exactly, so search quality only ever
//! gains. Decoding applies the transpose to return to the original
//! space.
//!
//! Everything here is deterministic for a given `(data, config)` pair
//! under any thread count: training touches rows in sampled-ascending
//! order on a single RNG stream, ties in assignment break toward the
//! lowest centroid index, and empty clusters are reseeded from the
//! farthest sample point by a strict-greater scan.

use crate::sample::{derive_seed, sample_rows, STAGE_KMEANS, STAGE_ROTATION, STAGE_SAMPLE};
use crate::storage::{PermutableStore, PqView, VectorStore};
use crate::synth::StdNormal;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Training configuration for a [`PqCodebook`].
#[derive(Clone, Copy, Debug)]
pub struct PqConfig {
    /// Number of subspaces == bytes per encoded vector. `1..=dim`.
    pub m: usize,
    /// Lloyd iterations per subspace.
    pub iters: usize,
    /// Training sample size (clamped to the dataset size).
    pub sample: usize,
    /// Apply an OPQ-style random orthonormal rotation before encoding.
    pub rotate: bool,
    /// Base seed; all internal streams derive from it.
    pub seed: u64,
}

impl PqConfig {
    /// Defaults tuned for the eval workloads: 8 Lloyd iterations on a
    /// 16k-row sample train a 96-dim codebook in a few seconds on one
    /// core while recall@10 after rerank matches full precision.
    pub fn new(m: usize) -> PqConfig {
        PqConfig { m, iters: 8, sample: 16_384, rotate: false, seed: 0x9a7e }
    }
}

/// Per-subspace centroid tables plus the optional rotation.
#[derive(Clone, Debug)]
pub struct PqCodebook {
    dim: usize,
    m: usize,
    /// Centroids per subspace (shared across subspaces), `1..=256`.
    ksub: usize,
    /// Subspace boundaries in the (rotated) vector: subspace `s`
    /// covers dims `starts[s]..starts[s+1]`. Length `m + 1`.
    starts: Vec<u32>,
    /// Concatenated per-subspace centroid tables, subspace-major:
    /// subspace `s` holds `ksub * dsub_s` f32 at `cent_off[s]`.
    centroids: Vec<f32>,
    /// Offsets into `centroids`, length `m + 1`.
    cent_off: Vec<u32>,
    /// Row-major `dim x dim` orthonormal matrix `R`; encode uses
    /// `R x`, decode uses `R^T`.
    rotation: Option<Vec<f32>>,
    /// Max squared distance from any training-sample subvector to its
    /// nearest centroid, per subspace — the quantizer's error bound
    /// for vectors drawn from the training set.
    bound: Vec<f32>,
}

/// Subspace boundaries: the first `dim % m` subspaces take `dim/m + 1`
/// dimensions, the rest `dim/m`.
fn subspace_starts(dim: usize, m: usize) -> Vec<u32> {
    let (dsub, rem) = (dim / m, dim % m);
    let mut starts = Vec::with_capacity(m + 1);
    let mut at = 0u32;
    starts.push(at);
    for s in 0..m {
        at += (dsub + usize::from(s < rem)) as u32;
        starts.push(at);
    }
    starts
}

/// `y = R x` for row-major `R`.
fn rotate_forward(rot: &[f32], dim: usize, x: &[f32], y: &mut [f32]) {
    for (i, yi) in y.iter_mut().enumerate() {
        let row = &rot[i * dim..(i + 1) * dim];
        *yi = row.iter().zip(x).map(|(&r, &v)| r * v).sum();
    }
}

/// `x = R^T y` for row-major `R`.
fn rotate_back(rot: &[f32], dim: usize, y: &[f32], x: &mut [f32]) {
    x.fill(0.0);
    for (i, &yi) in y.iter().enumerate() {
        let row = &rot[i * dim..(i + 1) * dim];
        for (xj, &r) in x.iter_mut().zip(row) {
            *xj += r * yi;
        }
    }
}

/// Seeded random orthonormal matrix: Gaussian entries, then modified
/// Gram–Schmidt. A row that degenerates during orthogonalization
/// (probability ~0, but the loop must terminate deterministically)
/// falls back to the matching standard basis vector before
/// re-orthogonalizing.
fn random_rotation(dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let normal = StdNormal;
    let mut r: Vec<f32> = (0..dim * dim).map(|_| normal.sample(&mut rng)).collect();
    for i in 0..dim {
        for attempt in 0..2 {
            if attempt == 1 {
                let row = &mut r[i * dim..(i + 1) * dim];
                row.fill(0.0);
                row[i] = 1.0;
            }
            for j in 0..i {
                let dot: f32 = (0..dim).map(|d| r[i * dim + d] * r[j * dim + d]).sum();
                for d in 0..dim {
                    r[i * dim + d] -= dot * r[j * dim + d];
                }
            }
            let norm_sq: f32 = r[i * dim..(i + 1) * dim].iter().map(|v| v * v).sum();
            if norm_sq > 1e-12 {
                let inv = 1.0 / norm_sq.sqrt();
                for d in 0..dim {
                    r[i * dim + d] *= inv;
                }
                break;
            }
        }
    }
    r
}

/// Nearest centroid for one subvector: strictly-less comparison keeps
/// the lowest index on ties, which makes assignment order-free.
fn nearest(cents: &[f32], dsub: usize, x: &[f32]) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (c, cent) in cents.chunks_exact(dsub).enumerate() {
        let d: f32 = cent.iter().zip(x).map(|(&a, &b)| (a - b) * (a - b)).sum();
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Lloyd's k-means over one subspace of the gathered sample. Serial
/// and seed-deterministic. Returns the centroid table and the max
/// squared assignment distance over the sample (the quantizer bound).
fn kmeans_subspace(
    sample: &[f32],
    sn: usize,
    dim: usize,
    span: std::ops::Range<usize>,
    ksub: usize,
    iters: usize,
    seed: u64,
) -> (Vec<f32>, f32) {
    let (lo, hi) = (span.start, span.end);
    let dsub = hi - lo;
    let sub = |p: usize| &sample[p * dim + lo..p * dim + hi];
    let init = sample_rows(sn, ksub, seed);
    let mut cents = Vec::with_capacity(ksub * dsub);
    for &p in &init {
        cents.extend_from_slice(sub(p as usize));
    }
    let mut assign = vec![0u32; sn];
    let mut err = vec![0f32; sn];
    for _ in 0..iters {
        for p in 0..sn {
            let (c, d) = nearest(&cents, dsub, sub(p));
            assign[p] = c as u32;
            err[p] = d;
        }
        let mut counts = vec![0u32; ksub];
        cents.fill(0.0);
        for (p, &a) in assign.iter().enumerate() {
            let c = a as usize;
            counts[c] += 1;
            for (acc, &v) in cents[c * dsub..(c + 1) * dsub].iter_mut().zip(sub(p)) {
                *acc += v;
            }
        }
        for c in 0..ksub {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f32;
                for v in &mut cents[c * dsub..(c + 1) * dsub] {
                    *v *= inv;
                }
            } else {
                // Reseed from the farthest point (strict `>` scan:
                // deterministic; zeroing its error hands the *next*
                // empty cluster the next-farthest point).
                let far = err
                    .iter()
                    .enumerate()
                    .fold((0usize, -1.0f32), |b, (p, &e)| if e > b.1 { (p, e) } else { b })
                    .0;
                cents[c * dsub..(c + 1) * dsub].copy_from_slice(sub(far));
                err[far] = 0.0;
            }
        }
    }
    let bound = (0..sn).map(|p| nearest(&cents, dsub, sub(p)).1).fold(0.0f32, f32::max);
    (cents, bound)
}

impl PqCodebook {
    /// Train codebooks on a deterministic sample of `store`.
    ///
    /// Panics if the store is empty or `m` is not in `1..=dim`.
    pub fn train<S: VectorStore + ?Sized>(store: &S, cfg: &PqConfig) -> PqCodebook {
        let (n, dim) = (store.len(), store.dim());
        assert!(n > 0, "cannot train a codebook on an empty store");
        assert!(cfg.m >= 1 && cfg.m <= dim, "subspace count {} out of range for dim {dim}", cfg.m);
        let rows = sample_rows(n, cfg.sample.max(1), derive_seed(cfg.seed, STAGE_SAMPLE));
        let sn = rows.len();
        let rotation =
            cfg.rotate.then(|| random_rotation(dim, derive_seed(cfg.seed, STAGE_ROTATION)));
        let mut sample = vec![0f32; sn * dim];
        let mut buf = vec![0f32; dim];
        for (r, &i) in rows.iter().enumerate() {
            let dst = &mut sample[r * dim..(r + 1) * dim];
            match &rotation {
                Some(rot) => {
                    store.get_into(i as usize, &mut buf);
                    rotate_forward(rot, dim, &buf, dst);
                }
                None => store.get_into(i as usize, dst),
            }
        }
        let ksub = sn.min(256);
        let starts = subspace_starts(dim, cfg.m);
        let mut centroids = Vec::new();
        let mut cent_off = vec![0u32];
        let mut bound = Vec::with_capacity(cfg.m);
        for s in 0..cfg.m {
            let (lo, hi) = (starts[s] as usize, starts[s + 1] as usize);
            let (cents, b) = kmeans_subspace(
                &sample,
                sn,
                dim,
                lo..hi,
                ksub,
                cfg.iters.max(1),
                derive_seed(cfg.seed, STAGE_KMEANS + s as u64),
            );
            centroids.extend_from_slice(&cents);
            cent_off.push(centroids.len() as u32);
            bound.push(b);
        }
        PqCodebook { dim, m: cfg.m, ksub, starts, centroids, cent_off, rotation, bound }
    }

    /// Original (un-rotated) vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of subspaces == bytes per encoded vector.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Centroids per subspace.
    pub fn ksub(&self) -> usize {
        self.ksub
    }

    /// Dimension range `[lo, hi)` of subspace `s` in the rotated space.
    pub fn subspace(&self, s: usize) -> (usize, usize) {
        (self.starts[s] as usize, self.starts[s + 1] as usize)
    }

    /// Centroid table of subspace `s`: `ksub` rows of `dsub_s` f32.
    pub fn centroids(&self, s: usize) -> &[f32] {
        &self.centroids[self.cent_off[s] as usize..self.cent_off[s + 1] as usize]
    }

    /// The OPQ rotation, if trained with one (row-major `dim x dim`).
    pub fn rotation(&self) -> Option<&[f32]> {
        self.rotation.as_deref()
    }

    /// Max squared distance from any training-sample subvector to its
    /// nearest centroid in subspace `s`. For vectors drawn from the
    /// training set, per-subspace squared reconstruction error is
    /// `<= quantizer_bound(s)`.
    pub fn quantizer_bound(&self, s: usize) -> f32 {
        self.bound[s]
    }

    /// Rotate `x` into codebook space (copy when no rotation).
    pub fn rotate_into(&self, x: &[f32], out: &mut [f32]) {
        match &self.rotation {
            Some(rot) => rotate_forward(rot, self.dim, x, out),
            None => out.copy_from_slice(x),
        }
    }

    /// Encode one row. `scratch` must be `dim`-sized; it holds the
    /// rotated vector so encoding allocates nothing.
    pub fn encode_row(&self, row: &[f32], codes: &mut [u8], scratch: &mut [f32]) {
        assert_eq!(row.len(), self.dim, "row length");
        assert_eq!(codes.len(), self.m, "code length");
        self.rotate_into(row, scratch);
        for (s, code) in codes.iter_mut().enumerate() {
            let (lo, hi) = self.subspace(s);
            let (c, _) = nearest(self.centroids(s), hi - lo, &scratch[lo..hi]);
            *code = c as u8;
        }
    }

    /// Decode codes into an original-space vector.
    pub fn decode_into(&self, codes: &[u8], out: &mut [f32]) {
        assert_eq!(codes.len(), self.m, "code length");
        assert_eq!(out.len(), self.dim, "output length");
        match &self.rotation {
            Some(rot) => {
                // Reconstruction lives in rotated space; concatenate
                // there, then rotate back. The temporary is the price
                // of rotation — decode is never on the search hot path
                // (ADC scores codes directly).
                let mut y = vec![0f32; self.dim];
                self.concat_centroids(codes, &mut y);
                rotate_back(rot, self.dim, &y, out);
            }
            None => self.concat_centroids(codes, out),
        }
    }

    fn concat_centroids(&self, codes: &[u8], out: &mut [f32]) {
        for (s, &code) in codes.iter().enumerate() {
            let (lo, hi) = self.subspace(s);
            let dsub = hi - lo;
            let c = code as usize;
            out[lo..hi].copy_from_slice(&self.centroids(s)[c * dsub..(c + 1) * dsub]);
        }
    }

    /// Serialize (self-describing blob; used by bundle format v3).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&(self.dim as u64).to_le_bytes())?;
        w.write_all(&(self.m as u32).to_le_bytes())?;
        w.write_all(&(self.ksub as u32).to_le_bytes())?;
        w.write_all(&[u8::from(self.rotation.is_some())])?;
        if let Some(rot) = &self.rotation {
            for &v in rot {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        for &v in &self.centroids {
            w.write_all(&v.to_le_bytes())?;
        }
        for &b in &self.bound {
            w.write_all(&b.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialize a blob written by [`PqCodebook::write_to`].
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<PqCodebook> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut b8 = [0u8; 8];
        let mut b4 = [0u8; 4];
        let mut b1 = [0u8; 1];
        r.read_exact(&mut b8)?;
        let dim = u64::from_le_bytes(b8) as usize;
        r.read_exact(&mut b4)?;
        let m = u32::from_le_bytes(b4) as usize;
        r.read_exact(&mut b4)?;
        let ksub = u32::from_le_bytes(b4) as usize;
        if dim == 0 || m == 0 || m > dim || ksub == 0 || ksub > 256 {
            return Err(bad("pq codebook header out of range"));
        }
        r.read_exact(&mut b1)?;
        let rotation = match b1[0] {
            0 => None,
            1 => {
                let mut rot = vec![0f32; dim * dim];
                read_f32_into(r, &mut rot)?;
                Some(rot)
            }
            _ => return Err(bad("pq codebook rotation flag")),
        };
        let starts = subspace_starts(dim, m);
        let mut cent_off = vec![0u32];
        for s in 0..m {
            let dsub = (starts[s + 1] - starts[s]) as usize;
            cent_off.push(cent_off[s] + (ksub * dsub) as u32);
        }
        let mut centroids = vec![0f32; *cent_off.last().unwrap() as usize];
        read_f32_into(r, &mut centroids)?;
        let mut bound = vec![0f32; m];
        read_f32_into(r, &mut bound)?;
        Ok(PqCodebook { dim, m, ksub, starts, centroids, cent_off, rotation, bound })
    }
}

fn read_f32_into<R: Read>(r: &mut R, out: &mut [f32]) -> io::Result<()> {
    let mut buf = [0u8; 4];
    for v in out {
        r.read_exact(&mut buf)?;
        *v = f32::from_le_bytes(buf);
    }
    Ok(())
}

/// An `N x m` matrix of one-byte codes over a shared codebook.
///
/// Implements [`VectorStore`] (rows decode on demand) so graph build,
/// relabeling, bundles, and serving all work unchanged, and exposes the
/// raw codes via [`VectorStore::flat_pq`] so the distance oracle can
/// score rows without decoding.
#[derive(Clone, Debug)]
pub struct PqStore {
    codebook: Arc<PqCodebook>,
    codes: Vec<u8>,
    n: usize,
}

impl PqStore {
    /// Encode every row of `store` against `codebook`.
    pub fn encode<S: VectorStore + ?Sized>(codebook: Arc<PqCodebook>, store: &S) -> PqStore {
        assert_eq!(store.dim(), codebook.dim(), "store/codebook dim mismatch");
        let (n, m, dim) = (store.len(), codebook.m(), codebook.dim());
        let mut codes = vec![0u8; n * m];
        let mut row = vec![0f32; dim];
        let mut scratch = vec![0f32; dim];
        for i in 0..n {
            store.get_into(i, &mut row);
            codebook.encode_row(&row, &mut codes[i * m..(i + 1) * m], &mut scratch);
        }
        PqStore { codebook, codes, n }
    }

    /// Build a store from parts (bundle loading).
    ///
    /// Panics if `codes.len() != n * codebook.m()`.
    pub fn from_parts(codebook: Arc<PqCodebook>, codes: Vec<u8>, n: usize) -> PqStore {
        assert_eq!(codes.len(), n * codebook.m(), "code matrix shape");
        PqStore { codebook, codes, n }
    }

    /// The shared codebook.
    pub fn codebook(&self) -> &Arc<PqCodebook> {
        &self.codebook
    }

    /// The full code matrix, row-major `n x m`.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Codes of row `i`.
    pub fn row_codes(&self, i: usize) -> &[u8] {
        let m = self.codebook.m();
        &self.codes[i * m..(i + 1) * m]
    }
}

/// Train a codebook on `store` and encode it in one step.
pub fn build<S: VectorStore + ?Sized>(store: &S, cfg: &PqConfig) -> PqStore {
    let codebook = Arc::new(PqCodebook::train(store, cfg));
    PqStore::encode(codebook, store)
}

impl VectorStore for PqStore {
    fn len(&self) -> usize {
        self.n
    }
    fn dim(&self) -> usize {
        self.codebook.dim()
    }
    fn get_into(&self, i: usize, out: &mut [f32]) {
        self.codebook.decode_into(self.row_codes(i), out);
    }
    fn bytes_per_vector(&self) -> usize {
        self.codebook.m() // codebook amortizes to ~0 over N rows
    }
    fn flat_pq(&self) -> Option<PqView<'_>> {
        Some(PqView { codes: &self.codes, codebook: &self.codebook })
    }
}

impl PermutableStore for PqStore {
    fn permuted(&self, old_of_new: &[u32]) -> Self {
        assert_eq!(old_of_new.len(), self.n, "permutation/store size mismatch");
        let mut codes = Vec::with_capacity(self.codes.len());
        for &old in old_of_new {
            codes.extend_from_slice(self.row_codes(old as usize));
        }
        PqStore { codebook: Arc::clone(&self.codebook), codes, n: self.n }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Dataset;
    use crate::synth::{Family, SynthSpec};
    use proptest::prelude::*;

    fn synth(n: usize, dim: usize, seed: u64) -> Dataset {
        let spec = SynthSpec { dim, n, queries: 0, family: Family::Gaussian, seed };
        spec.generate().0
    }

    #[test]
    fn uneven_dims_partition_exactly() {
        let starts = subspace_starts(7, 3);
        assert_eq!(starts, vec![0, 3, 5, 7]);
        let starts = subspace_starts(8, 4);
        assert_eq!(starts, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn round_trip_is_exact_when_every_point_is_a_centroid() {
        // ksub >= n and training on the full set: each point's nearest
        // centroid is (a duplicate of) itself, so decode(encode(x))
        // reproduces x exactly up to f32 mean-of-one arithmetic.
        let d = synth(40, 9, 3);
        let store = build(&d, &PqConfig { sample: 40, ..PqConfig::new(3) });
        let mut out = vec![0f32; 9];
        for i in 0..d.len() {
            store.get_into(i, &mut out);
            for (a, b) in out.iter().zip(d.row(i)) {
                assert!((a - b).abs() < 1e-5, "row {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn training_is_deterministic() {
        let d = synth(300, 12, 7);
        let cfg = PqConfig::new(4);
        let a = build(&d, &cfg);
        let b = build(&d, &cfg);
        assert_eq!(a.codes(), b.codes());
        assert_eq!(a.codebook().centroids(0), b.codebook().centroids(0));
    }

    #[test]
    fn rotation_is_orthonormal_and_distance_preserving() {
        let rot = random_rotation(16, 99);
        // R R^T == I
        for i in 0..16 {
            for j in 0..16 {
                let dot: f32 = (0..16).map(|d| rot[i * 16 + d] * rot[j * 16 + d]).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-4, "R R^T [{i}][{j}] = {dot}");
            }
        }
        let d = synth(50, 16, 5);
        let mut y = vec![0f32; 16];
        let mut back = vec![0f32; 16];
        for i in 0..d.len() {
            rotate_forward(&rot, 16, d.row(i), &mut y);
            let n0: f32 = d.row(i).iter().map(|v| v * v).sum();
            let n1: f32 = y.iter().map(|v| v * v).sum();
            assert!((n0 - n1).abs() <= 1e-3 * n0.max(1.0), "norm drifted: {n0} vs {n1}");
            rotate_back(&rot, 16, &y, &mut back);
            for (a, b) in back.iter().zip(d.row(i)) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn rotated_codebook_round_trips_through_serialization() {
        let d = synth(120, 10, 11);
        let cfg = PqConfig { rotate: true, sample: 64, ..PqConfig::new(5) };
        let store = build(&d, &cfg);
        let mut blob = Vec::new();
        store.codebook().write_to(&mut blob).unwrap();
        let cb = PqCodebook::read_from(&mut blob.as_slice()).unwrap();
        assert_eq!(cb.dim(), 10);
        assert_eq!(cb.m(), 5);
        assert_eq!(cb.ksub(), store.codebook().ksub());
        assert_eq!(cb.rotation(), store.codebook().rotation());
        for s in 0..5 {
            assert_eq!(cb.centroids(s), store.codebook().centroids(s));
            assert_eq!(cb.quantizer_bound(s), store.codebook().quantizer_bound(s));
        }
        // Re-encoding under the deserialized codebook is bit-identical.
        let again = PqStore::encode(Arc::new(cb), &d);
        assert_eq!(again.codes(), store.codes());
    }

    #[test]
    fn permuted_store_decodes_moved_rows() {
        let d = synth(20, 6, 13);
        let store = build(&d, &PqConfig { sample: 20, ..PqConfig::new(2) });
        let old_of_new: Vec<u32> = (0..20).rev().collect();
        let p = store.permuted(&old_of_new);
        let (mut a, mut b) = (vec![0f32; 6], vec![0f32; 6]);
        for new in 0..20 {
            p.get_into(new, &mut a);
            store.get_into(19 - new, &mut b);
            assert_eq!(a, b, "row {new}");
        }
    }

    #[test]
    fn bytes_per_vector_is_m() {
        let d = synth(32, 8, 1);
        let store = build(&d, &PqConfig::new(4));
        assert_eq!(store.bytes_per_vector(), 4);
        assert_eq!(d.bytes_per_vector(), 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn m_larger_than_dim_panics() {
        let d = synth(10, 4, 1);
        PqCodebook::train(&d, &PqConfig::new(5));
    }

    proptest! {
        /// The quantizer bound is real: for vectors from the training
        /// set, per-subspace squared reconstruction error never
        /// exceeds `quantizer_bound(s)`.
        #[test]
        fn reconstruction_error_within_per_subspace_bound(
            n in 2usize..40,
            dim in 1usize..12,
            m_frac in 0usize..4,
            seed in 0u64..1000,
        ) {
            let m = (m_frac % dim.max(1)) + 1;
            let d = synth(n, dim, seed);
            let cfg = PqConfig { m, sample: n, iters: 3, rotate: false, seed };
            let store = build(&d, &cfg);
            let cb = store.codebook();
            let mut rec = vec![0f32; dim];
            for i in 0..n {
                store.get_into(i, &mut rec);
                for s in 0..m {
                    let (lo, hi) = cb.subspace(s);
                    let err: f32 = rec[lo..hi]
                        .iter()
                        .zip(&d.row(i)[lo..hi])
                        .map(|(&a, &b)| (a - b) * (a - b))
                        .sum();
                    let bound = cb.quantizer_bound(s);
                    prop_assert!(
                        err <= bound * 1.0001 + 1e-6,
                        "row {i} subspace {s}: err {err} > bound {bound}"
                    );
                }
            }
        }
    }
}
