//! Pluggable search backends for [`crate::Service`].
//!
//! The service core (admission, shape cache, batching, dispatch) is
//! generic over *what* answers a query. Two backends exist:
//!
//! * [`cagra::CagraIndex`] — the static index. Its epoch is constant
//!   (`0`), so shape validation caches forever; `insert`/`delete` are
//!   refused with [`ServeError::Unsupported`].
//! * [`cagra::DynamicIndex`] — the epoch-swapped mutable wrapper.
//!   Every visible mutation (insert, delete, compaction swap) bumps
//!   [`SearchBackend::epoch`], which invalidates the service's shape
//!   cache so `k`-vs-live validation re-runs against the new snapshot.
//!
//! The hot-path contract differs deliberately: the static backend runs
//! the unchecked `search_mode_with` kernel (its validation cannot go
//! stale), while the dynamic backend routes through
//! [`cagra::DynamicIndex::search_clamped`] — between admission and
//! dispatch a delete can shrink the live set below a validated `k`,
//! and a clamped search degrades to fewer results instead of
//! panicking mid-batch.

use crate::error::ServeError;
use cagra::search::planner::{Mode, Thresholds};
use cagra::{CagraIndex, DynamicIndex, SearchError, SearchParams, SearchScratch};
use dataset::VectorStore;
use knn::topk::Neighbor;

/// What the serving core needs from an index.
pub trait SearchBackend: Send + Sync + 'static {
    /// Vector dimensionality every request must match.
    fn dim(&self) -> usize;

    /// Publication epoch of the searched structure. Static backends
    /// return a constant; mutable backends bump it on every visible
    /// change. The service keys its shape cache on this value.
    fn epoch(&self) -> u64;

    /// Planner thresholds for the mode/CTA dispatch rule.
    fn thresholds(&self) -> Thresholds;

    /// Full request validation (admission path; cached per epoch).
    fn validate_shape(
        &self,
        query_dim: usize,
        k: usize,
        params: &SearchParams,
    ) -> Result<(), SearchError>;

    /// Execute one already-validated search (dispatch hot path).
    fn search(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        mode: Mode,
        scratch: &mut SearchScratch,
    ) -> Vec<Neighbor>;

    /// Add a vector, returning its assigned external id.
    fn insert(&self, _vector: &[f32]) -> Result<u32, ServeError> {
        Err(ServeError::Unsupported("insert"))
    }

    /// Tombstone an id. `Ok(false)` means it was not live.
    fn delete(&self, _id: u32) -> Result<bool, ServeError> {
        Err(ServeError::Unsupported("delete"))
    }
}

impl<S: VectorStore + Send + 'static> SearchBackend for CagraIndex<S> {
    fn dim(&self) -> usize {
        self.store().dim()
    }

    fn epoch(&self) -> u64 {
        0
    }

    fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    fn validate_shape(
        &self,
        query_dim: usize,
        k: usize,
        params: &SearchParams,
    ) -> Result<(), SearchError> {
        CagraIndex::validate_shape(self, query_dim, k, params)
    }

    fn search(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        mode: Mode,
        scratch: &mut SearchScratch,
    ) -> Vec<Neighbor> {
        self.search_mode_with(query, k, params, mode, scratch);
        // ALLOW(alloc): the response buffer is handed to the client
        // channel; ownership must leave the scratch.
        scratch.results().to_vec()
    }
}

impl SearchBackend for DynamicIndex {
    fn dim(&self) -> usize {
        DynamicIndex::dim(self)
    }

    fn epoch(&self) -> u64 {
        DynamicIndex::epoch(self)
    }

    fn thresholds(&self) -> Thresholds {
        Thresholds::default()
    }

    fn validate_shape(
        &self,
        query_dim: usize,
        k: usize,
        _params: &SearchParams,
    ) -> Result<(), SearchError> {
        // The dynamic index owns its search parameters
        // (`DynamicParams::search`); the service's params only steer
        // batching, so shape validation ignores them.
        DynamicIndex::validate_shape(self, query_dim, k)
    }

    fn search(
        &self,
        query: &[f32],
        k: usize,
        _params: &SearchParams,
        _mode: Mode,
        _scratch: &mut SearchScratch,
    ) -> Vec<Neighbor> {
        // Clamped: a delete racing between admission and dispatch can
        // shrink the live set below the validated `k`.
        self.search_clamped(query, k)
    }

    fn insert(&self, vector: &[f32]) -> Result<u32, ServeError> {
        DynamicIndex::insert(self, vector).map_err(ServeError::Invalid)
    }

    fn delete(&self, id: u32) -> Result<bool, ServeError> {
        Ok(DynamicIndex::delete(self, id))
    }
}
