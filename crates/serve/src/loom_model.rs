//! `cfg(loom)` concurrency model of the batcher's submit/dispatch
//! handshake (ISSUE 6 satellite).
//!
//! The protocol under test: many producers call [`Batcher::submit`]
//! (bounded admission, Condvar notify) while one dispatcher loops
//! [`Batcher::pop_batch`] until close-and-drained. The properties that
//! must hold under *every* interleaving:
//!
//! 1. **Exactly-once delivery** — every admitted request is popped by
//!    the dispatcher exactly once (no loss, no duplication), even when
//!    close races with in-flight submits.
//! 2. **Bounded depth** — the queue never holds more than `capacity`
//!    entries, so admission control is airtight, not best-effort.
//! 3. **Clean termination** — after `close()`, the dispatcher's
//!    `pop_batch` returns `false` only once the queue is empty, and
//!    every submit observes either admission or `ShuttingDown` /
//!    `Overloaded` — never a hang.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p serve --lib loom`.
//! Under the offline `shims/loom` stand-in this is a bounded stress
//! run over the *real* `Batcher` (the shim's `loom::sync` is
//! `std::sync`, so the model exercises the production Mutex+Condvar
//! path directly); under the genuine loom crate the same source
//! compiles against the instrumented scheduler.

use crate::batcher::{Batcher, Job};
use crate::error::ServeError;
use loom::sync::Arc;
use loom::thread;
use std::time::{Duration, Instant};

fn job(tag: u32) -> Job {
    Job { query: vec![tag as f32], k: 1, enqueued: Instant::now() }
}

/// Exactly-once delivery + bounded depth with producers racing the
/// dispatcher.
#[test]
fn submit_dispatch_handshake_delivers_exactly_once() {
    loom::model(|| {
        const PRODUCERS: usize = 3;
        const PER_PRODUCER: u32 = 8;
        const CAPACITY: usize = 4;
        let b = Arc::new(Batcher::new(CAPACITY));

        let dispatcher = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                let mut seen: Vec<u32> = Vec::new();
                let (mut jobs, mut txs) = (Vec::new(), Vec::new());
                while b.pop_batch(CAPACITY, Duration::ZERO, &mut jobs, &mut txs) {
                    assert!(jobs.len() <= CAPACITY, "batch exceeded queue capacity");
                    seen.extend(jobs.iter().map(|j| j.query[0] as u32));
                    jobs.clear();
                    txs.clear();
                }
                seen
            })
        };

        let producers: Vec<_> = (0..PRODUCERS as u32)
            .map(|p| {
                let b = Arc::clone(&b);
                thread::spawn(move || {
                    let mut admitted: Vec<u32> = Vec::new();
                    for i in 0..PER_PRODUCER {
                        let tag = p * PER_PRODUCER + i;
                        // Retry sheds: under overload a submit may be
                        // rejected; the admission decision itself must
                        // be typed and depth-bounded.
                        loop {
                            match b.submit(job(tag)) {
                                Ok(_rx) => {
                                    admitted.push(tag);
                                    break;
                                }
                                Err(ServeError::Overloaded { depth, capacity }) => {
                                    assert!(depth >= capacity, "shed below threshold");
                                    thread::yield_now();
                                }
                                Err(e) => panic!("unexpected admission error: {e}"),
                            }
                        }
                    }
                    admitted
                })
            })
            .collect();

        let mut admitted: Vec<u32> = Vec::new();
        for p in producers {
            admitted.extend(p.join().unwrap());
        }
        b.close();
        let mut seen = dispatcher.join().unwrap();

        admitted.sort_unstable();
        seen.sort_unstable();
        assert_eq!(seen, admitted, "every admitted request must be dispatched exactly once");
        assert_eq!(b.depth(), 0, "close-and-drain must leave the queue empty");
    });
}

/// Close racing a submit: the submit either lands (and is drained) or
/// is refused as ShuttingDown — never lost, never hung.
#[test]
fn close_submit_race_never_loses_an_admitted_request() {
    loom::model(|| {
        let b = Arc::new(Batcher::new(8));
        let submitter = {
            let b = Arc::clone(&b);
            thread::spawn(move || b.submit(job(7)).map(|_rx| ()))
        };
        let closer = {
            let b = Arc::clone(&b);
            thread::spawn(move || b.close())
        };
        let outcome = submitter.join().unwrap();
        closer.join().unwrap();

        let (mut jobs, mut txs) = (Vec::new(), Vec::new());
        let mut drained = 0usize;
        while b.pop_batch(8, Duration::ZERO, &mut jobs, &mut txs) {
            drained += jobs.len();
            jobs.clear();
            txs.clear();
        }
        match outcome {
            Ok(()) => assert_eq!(drained, 1, "admitted request vanished"),
            Err(ServeError::ShuttingDown) => assert_eq!(drained, 0, "refused request was queued"),
            Err(e) => panic!("unexpected error: {e}"),
        }
    });
}
