//! Online serving layer for CAGRA search (ISSUE 6).
//!
//! A long-lived query service that accepts **single-query** requests
//! from many concurrent clients and coalesces them into micro-batches
//! so the batch-friendly search configurations (paper Sec. V: the
//! single-CTA / multi-CTA crossover depends on batch size) actually
//! get exercised by online traffic, not just by offline `cli search`
//! runs over a query file.
//!
//! Layering, bottom to top:
//!
//! * [`batcher`] — bounded admission queue + deadline-aware
//!   micro-batch draining. Pure queueing; no search logic.
//! * [`backend`] — the [`SearchBackend`] trait the service is generic
//!   over: a static [`cagra::CagraIndex`] (search only, constant
//!   epoch) or a mutable [`cagra::DynamicIndex`] (insert/delete, an
//!   epoch that bumps on every visible change and keys the shape
//!   cache).
//! * [`service`] — [`Service`] owns a backend and a dispatcher
//!   thread: pops a batch, plans mode/CTA count from the *realized*
//!   batch size ([`cagra::search::planner::plan`]), fans the batch
//!   out over worker threads, answers every request with results plus
//!   [`ResponseMeta`] (how the request was served).
//! * [`tcp`] — a std::net front end speaking the length-prefixed
//!   binary frames of [`proto`], for out-of-process clients
//!   (`cli serve`). In-process callers (tests, benches, load
//!   generators) use [`Service`] directly and skip the socket.
//!
//! Admission control is load shedding, not buffering: a submit that
//! finds [`ServeConfig::queue_capacity`] requests already queued is
//! refused with [`ServeError::Overloaded`], which keeps time-in-queue
//! — and therefore tail latency — bounded no matter the offered load.
//!
//! Determinism contract: a request's neighbors depend only on the
//! query, `k`, the service's [`cagra::SearchParams`], and the
//! mode/CTA plan recorded in its [`ResponseMeta`] — never on the
//! *content* of the batch it rode in. The integration tests recompute
//! every served result bit-identically via
//! [`cagra::CagraIndex::try_search_mode`].

pub mod backend;
pub mod batcher;
pub mod config;
pub mod error;
pub mod proto;
pub mod service;
pub mod tcp;

#[cfg(all(loom, test))]
mod loom_model;

pub use backend::SearchBackend;
pub use batcher::{Job, Response, ResponseMeta};
pub use config::ServeConfig;
pub use error::ServeError;
pub use service::{ResponseHandle, Service};
pub use tcp::{Client, ClientError, TcpServer};
