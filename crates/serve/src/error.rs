//! Typed serving errors.
//!
//! Admission control and shutdown produce their own variants; request
//! validation failures carry the underlying [`SearchError`] so TCP
//! clients and in-process callers see exactly why a shape was refused.

use cagra::SearchError;
use std::fmt;

/// Why a serving request was not answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed the request: the bounded queue already
    /// holds `depth` requests against a capacity of `capacity`.
    /// Callers should back off and retry; the service stays healthy.
    Overloaded {
        /// Queue depth observed at the rejection.
        depth: usize,
        /// Configured shedding threshold.
        capacity: usize,
    },
    /// The request shape (query dimension, `k`, parameters) failed
    /// validation. Rejected at admission — an invalid request never
    /// enters the batcher.
    Invalid(SearchError),
    /// The backend does not implement the requested operation (e.g.
    /// `insert` against a static index). Carries the operation name.
    Unsupported(&'static str),
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
    /// The dispatcher went away before answering (shutdown race).
    Disconnected,
    /// The service configuration itself is unusable.
    BadConfig(&'static str),
    /// The OS refused to start the dispatcher thread.
    SpawnFailed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: queue depth {depth} at capacity {capacity}")
            }
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
            ServeError::Unsupported(op) => {
                write!(f, "operation '{op}' is not supported by this backend")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Disconnected => write!(f, "dispatcher disconnected before responding"),
            ServeError::BadConfig(what) => write!(f, "bad serve config: {what}"),
            ServeError::SpawnFailed => write!(f, "failed to spawn the dispatcher thread"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SearchError> for ServeError {
    fn from(e: SearchError) -> Self {
        ServeError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        let e = ServeError::Overloaded { depth: 9, capacity: 8 };
        assert!(e.to_string().contains("overloaded"));
        assert!(e.to_string().contains('9'));
        let e = ServeError::Invalid(SearchError::ZeroK);
        assert!(e.to_string().contains("invalid request"));
        assert!(e.to_string().contains("k must be positive"));
        assert_eq!(ServeError::from(SearchError::ZeroK), ServeError::Invalid(SearchError::ZeroK));
    }
}
