//! Length-prefixed binary wire protocol (version 1).
//!
//! Every frame is `[u32 LE payload length][payload]`, payload capped
//! at [`MAX_PAYLOAD`] so a malicious length prefix cannot drive an
//! allocation. All integers are little-endian.
//!
//! ```text
//! query request payload (op = 1):
//!   magic  u8 = 0xCA     version u8 = 1    op u8 = 1    reserved u8
//!   k      u32           dim     u32       dim x f32 query
//!
//! insert request payload (op = 2):
//!   magic  u8 = 0xCA     version u8 = 1    op u8 = 2    reserved u8
//!   dim    u32           dim x f32 vector
//!
//! delete request payload (op = 3):
//!   magic  u8 = 0xCA     version u8 = 1    op u8 = 3    reserved u8
//!   id     u32
//!
//! query response payload:
//!   magic  u8 = 0xCA     version u8 = 1    status u8    mode u8
//!   batch_size u32       num_cta u32
//!   queue_ns   u64       e2e_ns  u64
//!   n_results  u32       n x (id u32, dist f32)
//!   msg_len    u32       msg bytes (utf-8; empty on Ok)
//!
//! mutation ack payload (answers insert/delete):
//!   magic  u8 = 0xCA     version u8 = 1    status u8    op u8
//!   value  u64           (insert: assigned id; delete: 1 = removed)
//!   msg_len u32          msg bytes (utf-8; empty on Ok)
//! ```
//!
//! The query-response layout is identical for every status;
//! rejections (overload, invalid shape, malformed frame, shutdown)
//! carry zero results, `mode = 0xFF`, and a human-readable message.
//! Mutations are answered with the compact ack frame instead — the
//! client knows which decoder to run because it knows which op it
//! sent; only frames the server cannot parse at all fall back to the
//! query-shaped malformed report (and close the connection).

use crate::batcher::{Response, ResponseMeta};
use crate::error::ServeError;
use cagra::search::planner::Mode;
use knn::topk::Neighbor;
use std::fmt;
use std::io::{Read, Write};

/// Frame magic byte.
pub const MAGIC: u8 = 0xCA;
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Request opcode: single-query search.
pub const OP_QUERY: u8 = 1;
/// Request opcode: insert one vector (mutable backends).
pub const OP_INSERT: u8 = 2;
/// Request opcode: delete one id (mutable backends).
pub const OP_DELETE: u8 = 3;
/// Largest accepted payload (16 MiB — far above any valid request at
/// the dimension caps, far below an allocation hazard).
pub const MAX_PAYLOAD: usize = 1 << 24;
/// `mode` byte when no batch ran (rejections).
const MODE_NONE: u8 = 0xFF;

/// Response status byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Served; results follow.
    Ok,
    /// Shed by admission control — back off and retry.
    Overloaded,
    /// Request shape failed validation.
    Invalid,
    /// The frame itself could not be parsed.
    Malformed,
    /// Service is shutting down.
    ShuttingDown,
    /// The backend does not implement the requested operation.
    Unsupported,
}

impl Status {
    fn to_byte(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Overloaded => 1,
            Status::Invalid => 2,
            Status::Malformed => 3,
            Status::ShuttingDown => 4,
            Status::Unsupported => 5,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtoError> {
        Ok(match b {
            0 => Status::Ok,
            1 => Status::Overloaded,
            2 => Status::Invalid,
            3 => Status::Malformed,
            4 => Status::ShuttingDown,
            5 => Status::Unsupported,
            other => return Err(ProtoError::Corrupt(format!("unknown status byte {other}"))),
        })
    }
}

/// What a server sent back for one request, decoded.
#[derive(Clone, Debug)]
pub struct Served {
    /// Outcome class.
    pub status: Status,
    /// The response (present exactly when `status == Ok`).
    pub response: Option<Response>,
    /// Human-readable rejection reason (empty on Ok).
    pub message: String,
}

/// Why a frame could not be produced or understood.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying socket/stream failure (includes clean EOF).
    Io(std::io::Error),
    /// Structurally invalid bytes; the message names the field.
    Corrupt(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "io: {e}"),
            ProtoError::Corrupt(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Write one `[len][payload]` frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), ProtoError> {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload, enforcing [`MAX_PAYLOAD`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, ProtoError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Corrupt(format!("payload length {len} exceeds {MAX_PAYLOAD}")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Little-endian field cursor over a payload.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtoError> {
        let s =
            self.at.checked_add(n).and_then(|end| self.buf.get(self.at..end)).ok_or_else(|| {
                ProtoError::Corrupt(format!("truncated at {what} (offset {})", self.at))
            })?;
        self.at += n;
        Ok(s)
    }

    /// Fixed-size [`Cursor::take`]: the bound check above proves the
    /// slice is exactly `N` bytes, so the conversion needs no fallible
    /// `try_into`.
    fn take_arr<const N: usize>(&mut self, what: &str) -> Result<[u8; N], ProtoError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N, what)?);
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProtoError> {
        let [b] = self.take_arr(what)?;
        Ok(b)
    }

    fn u32(&mut self, what: &str) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take_arr(what)?))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take_arr(what)?))
    }

    fn f32(&mut self, what: &str) -> Result<f32, ProtoError> {
        Ok(f32::from_le_bytes(self.take_arr(what)?))
    }

    /// Bytes left unread — guards element counts before any
    /// count-sized allocation, so a corrupt count cannot drive one.
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.at != self.buf.len() {
            return Err(ProtoError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.at
            )));
        }
        Ok(())
    }
}

fn check_header(c: &mut Cursor<'_>) -> Result<(), ProtoError> {
    let magic = c.u8("magic")?;
    if magic != MAGIC {
        return Err(ProtoError::Corrupt(format!("bad magic {magic:#04x}")));
    }
    let version = c.u8("version")?;
    if version != VERSION {
        return Err(ProtoError::Corrupt(format!("unsupported version {version}")));
    }
    Ok(())
}

/// A decoded client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Single-query search.
    Query {
        /// The query vector.
        query: Vec<f32>,
        /// Neighbors requested.
        k: usize,
    },
    /// Insert one vector (mutable backends).
    Insert {
        /// The vector to add.
        vector: Vec<f32>,
    },
    /// Delete one external id (mutable backends).
    Delete {
        /// The id to tombstone.
        id: u32,
    },
}

/// Encode a query request payload.
pub fn encode_request(query: &[f32], k: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + 4 * query.len());
    out.extend_from_slice(&[MAGIC, VERSION, OP_QUERY, 0]);
    out.extend_from_slice(&(k as u32).to_le_bytes());
    out.extend_from_slice(&(query.len() as u32).to_le_bytes());
    for v in query {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode an insert request payload.
pub fn encode_insert(vector: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 * vector.len());
    out.extend_from_slice(&[MAGIC, VERSION, OP_INSERT, 0]);
    out.extend_from_slice(&(vector.len() as u32).to_le_bytes());
    for v in vector {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode a delete request payload.
pub fn encode_delete(id: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.extend_from_slice(&[MAGIC, VERSION, OP_DELETE, 0]);
    out.extend_from_slice(&id.to_le_bytes());
    out
}

/// Read a length-guarded `dim x f32` vector off the cursor.
fn take_vector(c: &mut Cursor<'_>, what: &str) -> Result<Vec<f32>, ProtoError> {
    let dim = c.u32("dim")? as usize;
    if dim.checked_mul(4).is_none_or(|bytes| bytes > c.remaining()) {
        return Err(ProtoError::Corrupt(format!("dim {dim} exceeds payload")));
    }
    let mut v = Vec::with_capacity(dim);
    for _ in 0..dim {
        v.push(c.f32(what)?);
    }
    Ok(v)
}

/// Decode any request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor { buf: payload, at: 0 };
    check_header(&mut c)?;
    let op = c.u8("op")?;
    c.u8("reserved")?;
    let req = match op {
        OP_QUERY => {
            let k = c.u32("k")? as usize;
            let query = take_vector(&mut c, "query component")?;
            Request::Query { query, k }
        }
        OP_INSERT => Request::Insert { vector: take_vector(&mut c, "vector component")? },
        OP_DELETE => Request::Delete { id: c.u32("id")? },
        other => return Err(ProtoError::Corrupt(format!("unknown op {other}"))),
    };
    c.done()?;
    Ok(req)
}

fn mode_to_byte(mode: Mode) -> u8 {
    match mode {
        Mode::SingleCta => 0,
        Mode::MultiCta => 1,
    }
}

/// Encode a served response.
pub fn encode_ok(resp: &Response) -> Vec<u8> {
    encode_outcome(Status::Ok, Some(resp), "")
}

/// Encode a rejection, mapping the error to its wire status.
pub fn encode_reject(err: &ServeError) -> Vec<u8> {
    encode_outcome(reject_status(err), None, &err.to_string())
}

fn reject_status(err: &ServeError) -> Status {
    match err {
        ServeError::Overloaded { .. } => Status::Overloaded,
        ServeError::Invalid(_) => Status::Invalid,
        ServeError::Unsupported(_) => Status::Unsupported,
        ServeError::ShuttingDown | ServeError::Disconnected => Status::ShuttingDown,
        ServeError::BadConfig(_) | ServeError::SpawnFailed => Status::ShuttingDown,
    }
}

/// A decoded mutation acknowledgement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ack {
    /// Outcome class.
    pub status: Status,
    /// The op being acknowledged ([`OP_INSERT`] or [`OP_DELETE`]).
    pub op: u8,
    /// Meaningful exactly when `status == Ok`: the assigned id for
    /// inserts, `1`/`0` (removed / not found) for deletes.
    pub value: u64,
    /// Human-readable rejection reason (empty on Ok).
    pub message: String,
}

/// Encode a mutation acknowledgement for `op` from the backend's
/// outcome.
pub fn encode_ack(op: u8, outcome: &Result<u64, ServeError>) -> Vec<u8> {
    let (status, value, message) = match outcome {
        Ok(v) => (Status::Ok, *v, String::new()),
        Err(e) => (reject_status(e), 0, e.to_string()),
    };
    let mut out = Vec::with_capacity(16 + message.len());
    out.extend_from_slice(&[MAGIC, VERSION, status.to_byte(), op]);
    out.extend_from_slice(&value.to_le_bytes());
    out.extend_from_slice(&(message.len() as u32).to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decode a mutation acknowledgement.
pub fn decode_ack(payload: &[u8]) -> Result<Ack, ProtoError> {
    let mut c = Cursor { buf: payload, at: 0 };
    check_header(&mut c)?;
    let status = Status::from_byte(c.u8("status")?)?;
    let op = c.u8("op")?;
    if op != OP_INSERT && op != OP_DELETE {
        return Err(ProtoError::Corrupt(format!("ack for unknown op {op}")));
    }
    let value = c.u64("value")?;
    let msg_len = c.u32("msg_len")? as usize;
    let message = String::from_utf8(c.take(msg_len, "message")?.to_vec())
        .map_err(|_| ProtoError::Corrupt("message is not utf-8".into()))?;
    c.done()?;
    Ok(Ack { status, op, value, message })
}

/// Encode a malformed-frame report.
pub fn encode_malformed(msg: &str) -> Vec<u8> {
    encode_outcome(Status::Malformed, None, msg)
}

fn encode_outcome(status: Status, resp: Option<&Response>, message: &str) -> Vec<u8> {
    let n = resp.map_or(0, |r| r.neighbors.len());
    let mut out = Vec::with_capacity(40 + 8 * n + message.len());
    out.extend_from_slice(&[MAGIC, VERSION, status.to_byte()]);
    match resp {
        Some(r) => {
            out.push(mode_to_byte(r.meta.mode));
            out.extend_from_slice(&r.meta.batch_size.to_le_bytes());
            out.extend_from_slice(&r.meta.num_cta.to_le_bytes());
            out.extend_from_slice(&r.meta.queue_ns.to_le_bytes());
            out.extend_from_slice(&r.meta.e2e_ns.to_le_bytes());
            out.extend_from_slice(&(n as u32).to_le_bytes());
            for h in &r.neighbors {
                out.extend_from_slice(&h.id.to_le_bytes());
                out.extend_from_slice(&h.dist.to_le_bytes());
            }
        }
        None => {
            out.push(MODE_NONE);
            out.extend_from_slice(&[0u8; 24]); // batch_size, num_cta, queue_ns, e2e_ns
            out.extend_from_slice(&0u32.to_le_bytes()); // n_results
        }
    }
    out.extend_from_slice(&(message.len() as u32).to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decode a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Served, ProtoError> {
    let mut c = Cursor { buf: payload, at: 0 };
    check_header(&mut c)?;
    let status = Status::from_byte(c.u8("status")?)?;
    let mode = c.u8("mode")?;
    let batch_size = c.u32("batch_size")?;
    let num_cta = c.u32("num_cta")?;
    let queue_ns = c.u64("queue_ns")?;
    let e2e_ns = c.u64("e2e_ns")?;
    let n = c.u32("n_results")? as usize;
    if n.checked_mul(8).is_none_or(|bytes| bytes > c.remaining()) {
        return Err(ProtoError::Corrupt(format!("n_results {n} exceeds payload")));
    }
    let mut neighbors = Vec::with_capacity(n);
    for _ in 0..n {
        let id = c.u32("result id")?;
        let dist = c.f32("result dist")?;
        neighbors.push(Neighbor::new(id, dist));
    }
    let msg_len = c.u32("msg_len")? as usize;
    let message = String::from_utf8(c.take(msg_len, "message")?.to_vec())
        .map_err(|_| ProtoError::Corrupt("message is not utf-8".into()))?;
    c.done()?;
    let response = if status == Status::Ok {
        let mode = match mode {
            0 => Mode::SingleCta,
            1 => Mode::MultiCta,
            other => return Err(ProtoError::Corrupt(format!("unknown mode byte {other}"))),
        };
        Some(Response {
            neighbors,
            meta: ResponseMeta { batch_size, mode, num_cta, queue_ns, e2e_ns },
        })
    } else {
        None
    };
    Ok(Served { status, response, message })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let q = vec![1.0f32, -2.5, 3.25];
        let payload = encode_request(&q, 7);
        assert_eq!(decode_request(&payload).unwrap(), Request::Query { query: q, k: 7 });
    }

    #[test]
    fn mutation_requests_round_trip() {
        let v = vec![0.5f32, -1.5];
        assert_eq!(decode_request(&encode_insert(&v)).unwrap(), Request::Insert { vector: v });
        assert_eq!(decode_request(&encode_delete(42)).unwrap(), Request::Delete { id: 42 });
        // Unknown op is a typed error, not a panic.
        let mut p = encode_delete(1);
        p[2] = 9;
        assert!(matches!(decode_request(&p), Err(ProtoError::Corrupt(_))));
    }

    #[test]
    fn acks_round_trip_for_both_outcomes() {
        let ok = decode_ack(&encode_ack(OP_INSERT, &Ok(77))).unwrap();
        assert_eq!(
            ok,
            Ack { status: Status::Ok, op: OP_INSERT, value: 77, message: String::new() }
        );
        let rejected =
            decode_ack(&encode_ack(OP_DELETE, &Err(ServeError::Unsupported("delete")))).unwrap();
        assert_eq!(rejected.status, Status::Unsupported);
        assert_eq!(rejected.op, OP_DELETE);
        assert!(rejected.message.contains("delete"));
        // An ack must name a mutation op.
        let mut p = encode_ack(OP_INSERT, &Ok(1));
        p[3] = OP_QUERY;
        assert!(matches!(decode_ack(&p), Err(ProtoError::Corrupt(_))));
    }

    #[test]
    fn ok_response_round_trip() {
        let resp = Response {
            neighbors: vec![Neighbor::new(3, 0.5), Neighbor::new(9, 1.25)],
            meta: ResponseMeta {
                batch_size: 4,
                mode: Mode::MultiCta,
                num_cta: 16,
                queue_ns: 1234,
                e2e_ns: 5678,
            },
        };
        let served = decode_response(&encode_ok(&resp)).unwrap();
        assert_eq!(served.status, Status::Ok);
        assert!(served.message.is_empty());
        let got = served.response.unwrap();
        assert_eq!(got.neighbors, resp.neighbors);
        assert_eq!(got.meta, resp.meta);
    }

    #[test]
    fn rejection_round_trip_keeps_status_and_message() {
        let served =
            decode_response(&encode_reject(&ServeError::Overloaded { depth: 8, capacity: 8 }))
                .unwrap();
        assert_eq!(served.status, Status::Overloaded);
        assert!(served.response.is_none());
        assert!(served.message.contains("overloaded"));
        let served = decode_response(&encode_malformed("bad magic")).unwrap();
        assert_eq!(served.status, Status::Malformed);
        assert_eq!(served.message, "bad magic");
    }

    #[test]
    fn corrupt_payloads_are_typed_errors() {
        assert!(decode_request(&[]).is_err());
        let mut p = encode_request(&[1.0], 1);
        p[0] = 0x00; // magic
        assert!(matches!(decode_request(&p), Err(ProtoError::Corrupt(_))));
        let mut p = encode_request(&[1.0], 1);
        p[1] = 99; // version
        assert!(decode_request(&p).is_err());
        // Truncated query.
        let p = encode_request(&[1.0, 2.0], 1);
        assert!(decode_request(&p[..p.len() - 2]).is_err());
        // Trailing garbage.
        let mut p = encode_request(&[1.0], 1);
        p.push(0);
        assert!(decode_request(&p).is_err());
    }

    #[test]
    fn frame_io_round_trip_and_length_guard() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        // Oversized length prefix is rejected before allocation.
        let mut bad = ((MAX_PAYLOAD + 1) as u32).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0; 8]);
        assert!(matches!(read_frame(&mut &bad[..]), Err(ProtoError::Corrupt(_))));
    }
}
