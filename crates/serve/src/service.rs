//! The long-lived query service: admission → micro-batch → parallel
//! search → per-request responses.

use crate::backend::SearchBackend;
use crate::batcher::{Batcher, Job, Response, ResponseMeta};
use crate::config::ServeConfig;
use crate::error::ServeError;
use cagra::search::planner;
use cagra::SearchScratch;
use knn::parallel::{default_threads, parallel_map_with};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The pending answer to one admitted request.
pub struct ResponseHandle {
    rx: mpsc::Receiver<Response>,
}

impl ResponseHandle {
    /// Block until the dispatcher answers.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Disconnected)
    }
}

/// Cache of request shapes that already passed
/// [`SearchBackend::validate_shape`], keyed on the backend's
/// publication epoch. With per-service [`cagra::SearchParams`], a
/// shape is fully determined by `(epoch, k)`, so repeat traffic skips
/// parameter validation entirely — validation runs once per shape per
/// epoch at admission, never per batch dispatch.
///
/// The epoch key is what keeps the cache honest against mutable
/// backends: a [`cagra::DynamicIndex`] bumps its epoch on every
/// insert, delete, and compaction swap, and `k <= live` can go stale
/// across any of those. A validated shape from epoch `e` is worthless
/// at epoch `e+1`, so the first request after a swap clears the cache
/// and revalidates. Static backends report a constant epoch and cache
/// forever, exactly as before.
struct ShapeCache {
    /// `(epoch the cached shapes were validated against, valid ks)`.
    ks: Mutex<(u64, Vec<usize>)>,
    misses: AtomicU64,
}

impl ShapeCache {
    fn new() -> Self {
        ShapeCache { ks: Mutex::new((0, Vec::new())), misses: AtomicU64::new(0) }
    }

    fn contains(&self, epoch: u64, k: usize) -> bool {
        let mut g = self.ks.lock().unwrap_or_else(|p| p.into_inner());
        if g.0 != epoch {
            g.0 = epoch;
            g.1.clear();
            return false;
        }
        g.1.contains(&k)
    }

    fn insert(&self, epoch: u64, k: usize) {
        let mut g = self.ks.lock().unwrap_or_else(|p| p.into_inner());
        if g.0 != epoch {
            // A mutation landed between validation and this insert;
            // drop the stale generation rather than poison the new one.
            g.0 = epoch;
            g.1.clear();
        }
        if !g.1.contains(&k) {
            g.1.push(k);
        }
    }
}

/// A running serving instance over one search backend (a static
/// [`cagra::CagraIndex`] or a mutable [`cagra::DynamicIndex`]).
/// Submissions are thread-safe; one background dispatcher thread owns
/// batching and search execution. Dropping the service shuts it down
/// (drains the queue, answers what was admitted, joins the
/// dispatcher).
pub struct Service<B: SearchBackend> {
    backend: Arc<B>,
    batcher: Arc<Batcher>,
    config: ServeConfig,
    shapes: ShapeCache,
    dispatcher: Option<JoinHandle<()>>,
}

impl<B: SearchBackend> Service<B> {
    /// Validate `config`, take ownership of `backend`, and start the
    /// dispatcher thread.
    pub fn start(backend: B, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let backend = Arc::new(backend);
        let batcher = Arc::new(Batcher::new(config.queue_capacity));
        let dispatcher = {
            let backend = Arc::clone(&backend);
            let batcher = Arc::clone(&batcher);
            std::thread::Builder::new()
                .name("cagra-serve-dispatch".into())
                .spawn(move || dispatch_loop(&*backend, &batcher, &config))
                .map_err(|_| ServeError::SpawnFailed)?
        };
        Ok(Service {
            backend,
            batcher,
            config,
            shapes: ShapeCache::new(),
            dispatcher: Some(dispatcher),
        })
    }

    /// The backend being served.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The policy this service runs.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.batcher.depth()
    }

    /// How many times admission had to run full shape validation
    /// (cache misses). Repeat traffic of one shape against one epoch
    /// costs exactly one.
    pub fn shape_cache_misses(&self) -> u64 {
        self.shapes.misses.load(Ordering::Relaxed)
    }

    /// Validate-or-reuse the request shape, then admit. Returns the
    /// handle the response arrives on, or a typed rejection
    /// ([`ServeError::Invalid`] for malformed shapes,
    /// [`ServeError::Overloaded`] when shed).
    pub fn submit(&self, query: &[f32], k: usize) -> Result<ResponseHandle, ServeError> {
        let epoch = self.backend.epoch();
        if !(self.shapes.contains(epoch, k) && query.len() == self.backend.dim()) {
            self.shapes.misses.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = self.backend.validate_shape(query.len(), k, &self.config.params) {
                obs::metrics().serve_invalid.inc();
                return Err(ServeError::Invalid(e));
            }
            self.shapes.insert(epoch, k);
        }
        // ALLOW(alloc): admission copies the query exactly once — the
        // queued job must own its vector to outlive the caller.
        let job = Job { query: query.to_vec(), k, enqueued: Instant::now() };
        self.batcher.submit(job).map(|rx| ResponseHandle { rx })
    }

    /// Submit and wait — the closed-loop client call.
    pub fn search_blocking(&self, query: &[f32], k: usize) -> Result<Response, ServeError> {
        self.submit(query, k)?.wait()
    }

    /// Add a vector through the backend (mutable backends only).
    /// Mutations bypass the batcher: the backend serializes writers
    /// itself, and the resulting epoch bump invalidates the shape
    /// cache on the next submit.
    pub fn insert(&self, vector: &[f32]) -> Result<u32, ServeError> {
        self.backend.insert(vector)
    }

    /// Tombstone an id through the backend (mutable backends only).
    /// `Ok(false)` means the id was not live.
    pub fn delete(&self, id: u32) -> Result<bool, ServeError> {
        self.backend.delete(id)
    }

    /// Stop admitting, drain the queue (every admitted request is
    /// still answered), and join the dispatcher. Idempotent; also runs
    /// on drop.
    pub fn shutdown(&mut self) {
        self.batcher.close();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl<B: SearchBackend> Drop for Service<B> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The dispatcher: pop a micro-batch, plan the search configuration
/// from the realized batch size, fan the batch out over worker
/// threads, answer every request. Runs until the batcher is closed
/// and drained.
fn dispatch_loop<B: SearchBackend>(backend: &B, batcher: &Batcher, config: &ServeConfig) {
    let worker_cap =
        if config.worker_threads == 0 { default_threads() } else { config.worker_threads };
    // ALLOW(alloc): one-time setup before the loop; both buffers are
    // drained and reused across every batch, never reallocated.
    let mut jobs: Vec<Job> = Vec::with_capacity(config.max_batch);
    // ALLOW(alloc): same one-time reused buffer as `jobs` above.
    let mut txs: Vec<mpsc::Sender<Response>> = Vec::with_capacity(config.max_batch);
    while batcher.pop_batch(config.max_batch, config.max_wait, &mut jobs, &mut txs) {
        let dispatched = Instant::now();
        let plan = planner::plan(
            jobs.len(),
            config.params.itopk,
            config.params.num_cta,
            backend.thresholds(),
        );
        let mut params = config.params;
        params.num_cta = plan.num_cta;
        let m = obs::metrics();
        m.serve_batches.inc();
        m.serve_batch_size.record(jobs.len() as u64);
        for job in &jobs {
            m.serve_queue_wait_ns.record(dispatched.duration_since(job.enqueued).as_nanos() as u64);
        }
        // No validation here: every job passed shape validation at
        // admission, so the hot path goes straight to the kernels.
        // (A mutable backend's search is clamped, so even a shape
        // staled by a concurrent delete degrades instead of failing.)
        let jobs_ref = &jobs;
        let results = parallel_map_with(
            jobs_ref.len(),
            worker_cap.min(jobs_ref.len()),
            || {
                let mut scratch = SearchScratch::new();
                scratch.set_record_trace(false);
                scratch
            },
            |scratch, i| {
                // ALLOW(panic): `parallel_map_with` hands out `i` in
                // `0..jobs_ref.len()` by contract.
                let job = &jobs_ref[i];
                backend.search(&job.query, job.k, &params, plan.mode, scratch)
            },
        );
        let batch_size = jobs.len() as u32;
        for ((job, tx), neighbors) in jobs.drain(..).zip(txs.drain(..)).zip(results) {
            let queue_ns = dispatched.duration_since(job.enqueued).as_nanos() as u64;
            let e2e_ns = job.enqueued.elapsed().as_nanos() as u64;
            m.serve_e2e_latency_ns.record(e2e_ns);
            // A gone client (dropped handle / closed socket) is not an
            // error for the service.
            let _ = tx.send(Response {
                neighbors,
                meta: ResponseMeta {
                    batch_size,
                    mode: plan.mode,
                    num_cta: plan.num_cta as u32,
                    queue_ns,
                    e2e_ns,
                },
            });
        }
    }
}
