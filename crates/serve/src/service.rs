//! The long-lived query service: admission → micro-batch → parallel
//! search → per-request responses.

use crate::batcher::{Batcher, Job, Response, ResponseMeta};
use crate::config::ServeConfig;
use crate::error::ServeError;
use cagra::search::planner;
use cagra::{CagraIndex, SearchScratch};
use dataset::VectorStore;
use knn::parallel::{default_threads, parallel_map_with};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The pending answer to one admitted request.
pub struct ResponseHandle {
    rx: mpsc::Receiver<Response>,
}

impl ResponseHandle {
    /// Block until the dispatcher answers.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Disconnected)
    }
}

/// Cache of request shapes that already passed
/// [`CagraIndex::validate_shape`]. With per-service [`cagra::SearchParams`]
/// and a fixed index, a shape is fully determined by `k`, so repeat
/// traffic skips parameter validation entirely — validation runs once
/// per shape at admission, never per batch dispatch.
struct ShapeCache {
    ks: Mutex<Vec<usize>>,
    misses: AtomicU64,
}

impl ShapeCache {
    fn new() -> Self {
        ShapeCache { ks: Mutex::new(Vec::new()), misses: AtomicU64::new(0) }
    }

    fn contains(&self, k: usize) -> bool {
        self.ks.lock().unwrap_or_else(|p| p.into_inner()).contains(&k)
    }

    fn insert(&self, k: usize) {
        let mut ks = self.ks.lock().unwrap_or_else(|p| p.into_inner());
        if !ks.contains(&k) {
            ks.push(k);
        }
    }
}

/// A running serving instance over one CAGRA index. Submissions are
/// thread-safe; one background dispatcher thread owns batching and
/// search execution. Dropping the service shuts it down (drains the
/// queue, answers what was admitted, joins the dispatcher).
pub struct Service<S: VectorStore + Send + 'static> {
    index: Arc<CagraIndex<S>>,
    batcher: Arc<Batcher>,
    config: ServeConfig,
    shapes: ShapeCache,
    dispatcher: Option<JoinHandle<()>>,
}

impl<S: VectorStore + Send + 'static> Service<S> {
    /// Validate `config`, take ownership of `index`, and start the
    /// dispatcher thread.
    pub fn start(index: CagraIndex<S>, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let index = Arc::new(index);
        let batcher = Arc::new(Batcher::new(config.queue_capacity));
        let dispatcher = {
            let index = Arc::clone(&index);
            let batcher = Arc::clone(&batcher);
            std::thread::Builder::new()
                .name("cagra-serve-dispatch".into())
                .spawn(move || dispatch_loop(&index, &batcher, &config))
                .map_err(|_| ServeError::SpawnFailed)?
        };
        Ok(Service {
            index,
            batcher,
            config,
            shapes: ShapeCache::new(),
            dispatcher: Some(dispatcher),
        })
    }

    /// The index being served.
    pub fn index(&self) -> &CagraIndex<S> {
        &self.index
    }

    /// The policy this service runs.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.batcher.depth()
    }

    /// How many times admission had to run full shape validation
    /// (cache misses). Repeat traffic of one shape costs exactly one.
    pub fn shape_cache_misses(&self) -> u64 {
        self.shapes.misses.load(Ordering::Relaxed)
    }

    /// Validate-or-reuse the request shape, then admit. Returns the
    /// handle the response arrives on, or a typed rejection
    /// ([`ServeError::Invalid`] for malformed shapes,
    /// [`ServeError::Overloaded`] when shed).
    pub fn submit(&self, query: &[f32], k: usize) -> Result<ResponseHandle, ServeError> {
        if !(self.shapes.contains(k) && query.len() == self.index.store().dim()) {
            self.shapes.misses.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = self.index.validate_shape(query.len(), k, &self.config.params) {
                obs::metrics().serve_invalid.inc();
                return Err(ServeError::Invalid(e));
            }
            self.shapes.insert(k);
        }
        // ALLOW(alloc): admission copies the query exactly once — the
        // queued job must own its vector to outlive the caller.
        let job = Job { query: query.to_vec(), k, enqueued: Instant::now() };
        self.batcher.submit(job).map(|rx| ResponseHandle { rx })
    }

    /// Submit and wait — the closed-loop client call.
    pub fn search_blocking(&self, query: &[f32], k: usize) -> Result<Response, ServeError> {
        self.submit(query, k)?.wait()
    }

    /// Stop admitting, drain the queue (every admitted request is
    /// still answered), and join the dispatcher. Idempotent; also runs
    /// on drop.
    pub fn shutdown(&mut self) {
        self.batcher.close();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl<S: VectorStore + Send + 'static> Drop for Service<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The dispatcher: pop a micro-batch, plan the search configuration
/// from the realized batch size, fan the batch out over worker
/// threads, answer every request. Runs until the batcher is closed
/// and drained.
fn dispatch_loop<S: VectorStore + Send>(
    index: &CagraIndex<S>,
    batcher: &Batcher,
    config: &ServeConfig,
) {
    let worker_cap =
        if config.worker_threads == 0 { default_threads() } else { config.worker_threads };
    // ALLOW(alloc): one-time setup before the loop; both buffers are
    // drained and reused across every batch, never reallocated.
    let mut jobs: Vec<Job> = Vec::with_capacity(config.max_batch);
    // ALLOW(alloc): same one-time reused buffer as `jobs` above.
    let mut txs: Vec<mpsc::Sender<Response>> = Vec::with_capacity(config.max_batch);
    while batcher.pop_batch(config.max_batch, config.max_wait, &mut jobs, &mut txs) {
        let dispatched = Instant::now();
        let plan =
            planner::plan(jobs.len(), config.params.itopk, config.params.num_cta, index.thresholds);
        let mut params = config.params;
        params.num_cta = plan.num_cta;
        let m = obs::metrics();
        m.serve_batches.inc();
        m.serve_batch_size.record(jobs.len() as u64);
        for job in &jobs {
            m.serve_queue_wait_ns.record(dispatched.duration_since(job.enqueued).as_nanos() as u64);
        }
        // No validation here: every job passed shape validation at
        // admission, so the hot path goes straight to the kernels.
        let jobs_ref = &jobs;
        let results = parallel_map_with(
            jobs_ref.len(),
            worker_cap.min(jobs_ref.len()),
            || {
                let mut scratch = SearchScratch::new();
                scratch.set_record_trace(false);
                scratch
            },
            |scratch, i| {
                // ALLOW(panic): `parallel_map_with` hands out `i` in
                // `0..jobs_ref.len()` by contract.
                let job = &jobs_ref[i];
                index.search_mode_with(&job.query, job.k, &params, plan.mode, scratch);
                // ALLOW(alloc): the response buffer is handed to the
                // client channel; ownership must leave the scratch.
                scratch.results().to_vec()
            },
        );
        let batch_size = jobs.len() as u32;
        for ((job, tx), neighbors) in jobs.drain(..).zip(txs.drain(..)).zip(results) {
            let queue_ns = dispatched.duration_since(job.enqueued).as_nanos() as u64;
            let e2e_ns = job.enqueued.elapsed().as_nanos() as u64;
            m.serve_e2e_latency_ns.record(e2e_ns);
            // A gone client (dropped handle / closed socket) is not an
            // error for the service.
            let _ = tx.send(Response {
                neighbors,
                meta: ResponseMeta {
                    batch_size,
                    mode: plan.mode,
                    num_cta: plan.num_cta as u32,
                    queue_ns,
                    e2e_ns,
                },
            });
        }
    }
}
