//! std::net TCP front end: one accept thread, one handler thread per
//! connection, frames from [`crate::proto`].
//!
//! A connection is a sequential request/response stream: the handler
//! reads one request frame, submits it to the shared [`Service`], and
//! writes the outcome frame (rejections included — an overloaded
//! service answers `Status::Overloaded` rather than dropping the
//! connection, so clients can back off). Pipelining across requests
//! happens by opening several connections, which is exactly what the
//! load generators do.

use crate::backend::SearchBackend;
use crate::batcher::Response;
use crate::proto::{
    self, decode_ack, decode_response, encode_ack, encode_malformed, encode_ok, encode_reject,
    read_frame, write_frame, ProtoError, Request, Served, Status, OP_DELETE, OP_INSERT,
};
use crate::service::Service;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A listening server bound to a local address.
pub struct TcpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve
    /// `service` until [`TcpServer::shutdown`] or drop.
    pub fn spawn<B: SearchBackend>(service: Arc<Service<B>>, addr: &str) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new().name("cagra-serve-accept".into()).spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let service = Arc::clone(&service);
                    // Handler threads hold their own Arc<Service>; they
                    // exit when the peer disconnects.
                    let _ = std::thread::Builder::new()
                        .name("cagra-serve-conn".into())
                        .spawn(move || handle_connection(stream, &service));
                }
            })?
        };
        Ok(TcpServer { local_addr, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting new connections and join the accept thread.
    /// Existing connections drain on their own as peers disconnect.
    pub fn shutdown(&mut self) {
        if self.accept_thread.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection<B: SearchBackend>(mut stream: TcpStream, service: &Service<B>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            // Clean EOF or a socket error: the conversation is over. A
            // corrupt length prefix gets a malformed report first.
            Err(ProtoError::Io(_)) => return,
            Err(ProtoError::Corrupt(msg)) => {
                let _ = write_frame(&mut stream, &encode_malformed(&msg));
                return;
            }
        };
        let outcome = match proto::decode_request(&payload) {
            Ok(Request::Query { query, k }) => match service.search_blocking(&query, k) {
                Ok(resp) => encode_ok(&resp),
                Err(e) => encode_reject(&e),
            },
            Ok(Request::Insert { vector }) => {
                encode_ack(OP_INSERT, &service.insert(&vector).map(u64::from))
            }
            Ok(Request::Delete { id }) => encode_ack(OP_DELETE, &service.delete(id).map(u64::from)),
            Err(e) => encode_malformed(&e.to_string()),
        };
        if write_frame(&mut stream, &outcome).is_err() {
            return;
        }
    }
}

/// A blocking client for the v1 protocol.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one query and decode the outcome frame (whatever its
    /// status).
    pub fn search_raw(&mut self, query: &[f32], k: usize) -> Result<Served, ProtoError> {
        write_frame(&mut self.stream, &proto::encode_request(query, k))?;
        decode_response(&read_frame(&mut self.stream)?)
    }

    /// Send one query, mapping rejection statuses back onto
    /// [`crate::ServeError`]-shaped errors (message text from the
    /// server).
    pub fn search(&mut self, query: &[f32], k: usize) -> Result<Response, ClientError> {
        let served = self.search_raw(query, k).map_err(ClientError::Proto)?;
        match served.status {
            Status::Ok => served
                .response
                .ok_or_else(|| ClientError::Proto(ProtoError::Corrupt("Ok without body".into()))),
            status => Err(ClientError::Rejected { status, message: served.message }),
        }
    }

    /// Insert one vector, returning the assigned id (mutable backends
    /// only — a static backend answers `Status::Unsupported`).
    pub fn insert(&mut self, vector: &[f32]) -> Result<u32, ClientError> {
        write_frame(&mut self.stream, &proto::encode_insert(vector)).map_err(ClientError::Proto)?;
        let ack = decode_ack(&read_frame(&mut self.stream).map_err(ClientError::Proto)?)
            .map_err(ClientError::Proto)?;
        match ack.status {
            Status::Ok => u32::try_from(ack.value).map_err(|_| {
                ClientError::Proto(ProtoError::Corrupt(format!(
                    "insert id {} not a u32",
                    ack.value
                )))
            }),
            status => Err(ClientError::Rejected { status, message: ack.message }),
        }
    }

    /// Delete one id. `Ok(false)` means the id was not live.
    pub fn delete(&mut self, id: u32) -> Result<bool, ClientError> {
        write_frame(&mut self.stream, &proto::encode_delete(id)).map_err(ClientError::Proto)?;
        let ack = decode_ack(&read_frame(&mut self.stream).map_err(ClientError::Proto)?)
            .map_err(ClientError::Proto)?;
        match ack.status {
            Status::Ok => Ok(ack.value != 0),
            status => Err(ClientError::Rejected { status, message: ack.message }),
        }
    }
}

/// Client-side failure: transport/framing, or a served rejection.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or framing problem.
    Proto(ProtoError),
    /// The server answered with a non-Ok status.
    Rejected {
        /// Which rejection.
        status: Status,
        /// Server-provided reason.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Rejected { status, message } => {
                write!(f, "rejected ({status:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// True when the server shed the request under load (retryable).
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ClientError::Rejected { status: Status::Overloaded, .. })
    }
}
