//! The admission queue + micro-batching core.
//!
//! [`Batcher`] is the handshake between many submitting clients and
//! one dispatching engine:
//!
//! * **submit side** — bounded: a request that finds `queue_capacity`
//!   entries already queued is shed with a typed
//!   [`ServeError::Overloaded`] instead of being buffered, so queue
//!   wait (and therefore tail latency) stays bounded under overload.
//! * **dispatch side** — [`Batcher::pop_batch`] blocks until work
//!   exists, then applies the micro-batching policy: drain whatever
//!   accumulated (up to `max_batch`), optionally holding a
//!   deadline-aware coalescing window (`max_wait`, anchored at the
//!   oldest request's arrival) open for co-arrivals.
//!
//! The batcher is deliberately free of search logic — `crates/serve`'s
//! [`crate::Service`] owns the index and the dispatcher thread — so
//! the admission/batch policy is testable (and loom-modelable) in
//! isolation.

use crate::error::ServeError;
use cagra::search::planner::Mode;
use knn::topk::Neighbor;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One admitted request, as the dispatcher sees it.
#[derive(Clone, Debug)]
pub struct Job {
    /// The query vector (validated to the index dimension at
    /// admission).
    pub query: Vec<f32>,
    /// Results requested (validated against params/dataset at
    /// admission).
    pub k: usize,
    /// Admission timestamp — the anchor for the coalescing deadline,
    /// time-in-queue, and end-to-end latency.
    pub enqueued: Instant,
}

/// How a request was actually served (for clients, tests, and load
/// generators; the same numbers feed the obs histograms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResponseMeta {
    /// Realized size of the batch this request rode in.
    pub batch_size: u32,
    /// Kernel mapping the batch ran with (chosen from the realized
    /// batch size, Fig. 7).
    pub mode: Mode,
    /// Per-query CTA count the plan selected.
    pub num_cta: u32,
    /// Time spent queued before dispatch, in nanoseconds.
    pub queue_ns: u64,
    /// Admission-to-response latency, in nanoseconds.
    pub e2e_ns: u64,
}

/// A served request: results plus how they were produced.
#[derive(Clone, Debug)]
pub struct Response {
    /// The `k` nearest neighbors, ascending by distance.
    pub neighbors: Vec<Neighbor>,
    /// Batch/queue metadata.
    pub meta: ResponseMeta,
}

/// Queue entry: the job plus its response channel.
pub(crate) struct Pending {
    pub(crate) job: Job,
    pub(crate) tx: mpsc::Sender<Response>,
}

struct Inner {
    queue: VecDeque<Pending>,
    closed: bool,
}

/// Bounded MPSC queue with batch-draining pops (see module docs).
pub(crate) struct Batcher {
    inner: Mutex<Inner>,
    nonempty: Condvar,
    capacity: usize,
}

impl Batcher {
    pub(crate) fn new(capacity: usize) -> Self {
        Batcher {
            inner: Mutex::new(Inner { queue: VecDeque::with_capacity(capacity), closed: false }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// Lock the queue, surviving a poisoned mutex (a panicking search
    /// worker must not wedge admission; the queue state itself is
    /// only ever mutated under short straight-line sections).
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Admit `job` or shed it. On success returns the receiver the
    /// dispatcher will answer on.
    pub(crate) fn submit(&self, job: Job) -> Result<mpsc::Receiver<Response>, ServeError> {
        // Created before taking the lock so the critical section stays
        // allocation-free; a shed request just throws the pair away,
        // which is cheaper than allocating while submitters contend.
        let (tx, rx) = mpsc::channel();
        let mut inner = self.lock();
        if inner.closed {
            return Err(ServeError::ShuttingDown);
        }
        let depth = inner.queue.len();
        if depth >= self.capacity {
            drop(inner);
            obs::metrics().serve_rejected.inc();
            return Err(ServeError::Overloaded { depth, capacity: self.capacity });
        }
        inner.queue.push_back(Pending { job, tx });
        drop(inner);
        let m = obs::metrics();
        m.serve_requests.inc();
        m.serve_queue_depth.record(depth as u64 + 1);
        self.nonempty.notify_one();
        Ok(rx)
    }

    /// Current queue depth (admission-control observability).
    pub(crate) fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Stop admitting; wake the dispatcher so it can drain and exit.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.nonempty.notify_all();
    }

    /// Block until work exists, apply the batching policy, and move up
    /// to `max_batch` requests into `jobs`/`txs` (index-aligned).
    /// Returns `false` — without touching the output buffers — only
    /// when the queue is closed *and* fully drained, i.e. the
    /// dispatcher should exit.
    pub(crate) fn pop_batch(
        &self,
        max_batch: usize,
        max_wait: Duration,
        jobs: &mut Vec<Job>,
        txs: &mut Vec<mpsc::Sender<Response>>,
    ) -> bool {
        let mut inner = self.lock();
        // Phase 1: wait for the first request (or a drained close).
        loop {
            if !inner.queue.is_empty() {
                break;
            }
            if inner.closed {
                return false;
            }
            inner = self.nonempty.wait(inner).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        // Phase 2: deadline-aware coalescing. The window is anchored
        // at the *oldest* arrival: a backlog that built up while the
        // engine was busy has already aged past its window and drains
        // immediately ("batch when loaded"), while a fresh arrival
        // into an idle engine waits at most `max_wait` ("dispatch
        // immediately when idle" with the default zero window).
        // Phase 1 guarantees the queue is nonempty here; mapping over
        // `front()` (instead of expecting it) makes an impossible empty
        // queue skip the window rather than panic the dispatcher.
        let window = if max_wait.is_zero() {
            None
        } else {
            inner.queue.front().map(|p| p.job.enqueued + max_wait)
        };
        if let Some(deadline) = window {
            while inner.queue.len() < max_batch && !inner.closed {
                let now = Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (guard, timeout) = self
                    .nonempty
                    .wait_timeout(inner, remaining)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                inner = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        // Phase 3: drain.
        while jobs.len() < max_batch {
            let Some(p) = inner.queue.pop_front() else { break };
            jobs.push(p.job);
            txs.push(p.tx);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn job(tag: f32) -> Job {
        Job { query: vec![tag], k: 1, enqueued: Instant::now() }
    }

    #[test]
    fn admission_sheds_at_capacity_and_recovers_after_drain() {
        let b = Batcher::new(2);
        let _rx0 = b.submit(job(0.0)).unwrap();
        let _rx1 = b.submit(job(1.0)).unwrap();
        assert_eq!(b.depth(), 2);
        // Third arrival meets the shedding threshold.
        match b.submit(job(2.0)) {
            Err(ServeError::Overloaded { depth, capacity }) => {
                assert_eq!((depth, capacity), (2, 2));
            }
            other => panic!("expected Overloaded, got {:?}", other.map(|_| ())),
        }
        assert_eq!(b.depth(), 2, "a shed request must not occupy the queue");
        // Drain, then admission recovers.
        let (mut jobs, mut txs) = (Vec::new(), Vec::new());
        assert!(b.pop_batch(8, Duration::ZERO, &mut jobs, &mut txs));
        assert_eq!(jobs.len(), 2);
        assert_eq!(b.depth(), 0);
        assert!(b.submit(job(3.0)).is_ok());
        assert_eq!(b.depth(), 1);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let b = Batcher::new(0);
        assert!(matches!(b.submit(job(0.0)), Err(ServeError::Overloaded { .. })));
    }

    #[test]
    fn pop_batch_respects_max_batch_and_fifo_order() {
        let b = Batcher::new(16);
        let _rxs: Vec<_> = (0..5).map(|i| b.submit(job(i as f32)).unwrap()).collect();
        let (mut jobs, mut txs) = (Vec::new(), Vec::new());
        assert!(b.pop_batch(3, Duration::ZERO, &mut jobs, &mut txs));
        let tags: Vec<f32> = jobs.iter().map(|j| j.query[0]).collect();
        assert_eq!(tags, vec![0.0, 1.0, 2.0]);
        assert_eq!(b.depth(), 2);
    }

    #[test]
    fn close_drains_leftovers_then_signals_exit() {
        let b = Batcher::new(16);
        let _rx = b.submit(job(0.0)).unwrap();
        b.close();
        assert!(matches!(b.submit(job(1.0)), Err(ServeError::ShuttingDown)));
        let (mut jobs, mut txs) = (Vec::new(), Vec::new());
        assert!(b.pop_batch(8, Duration::ZERO, &mut jobs, &mut txs), "leftover must drain");
        assert_eq!(jobs.len(), 1);
        jobs.clear();
        txs.clear();
        assert!(!b.pop_batch(8, Duration::ZERO, &mut jobs, &mut txs), "drained close exits");
    }

    #[test]
    fn coalescing_window_holds_for_co_arrivals() {
        let b = Arc::new(Batcher::new(16));
        let _rx0 = b.submit(job(0.0)).unwrap();
        let late = Arc::clone(&b);
        let feeder = thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            late.submit(job(1.0)).map(|_| ())
        });
        let (mut jobs, mut txs) = (Vec::new(), Vec::new());
        // A generous window: the late submitter lands inside it.
        assert!(b.pop_batch(8, Duration::from_millis(500), &mut jobs, &mut txs));
        feeder.join().unwrap().unwrap();
        assert!(
            jobs.len() == 2 || b.depth() == 1,
            "late arrival either joined the batch or is still queued"
        );
        // With max_batch already satisfied the window closes early.
        let _rx2 = b.submit(job(2.0)).unwrap();
        let t0 = Instant::now();
        let (mut jobs, mut txs) = (Vec::new(), Vec::new());
        assert!(b.pop_batch(1, Duration::from_secs(5), &mut jobs, &mut txs));
        assert!(t0.elapsed() < Duration::from_secs(1), "full batch must not wait the window");
    }
}
