//! Serving policy knobs.

use crate::error::ServeError;
use cagra::SearchParams;
use std::time::Duration;

/// Batching + admission policy for a [`crate::Service`].
///
/// The batching rule is *dispatch immediately when idle, batch when
/// loaded*: the dispatcher drains whatever accumulated while it was
/// busy (load builds batches by itself), and a request that arrives
/// into an idle service is dispatched without artificial delay unless
/// [`ServeConfig::max_wait`] opens a coalescing window. The window is
/// deadline-aware — it is anchored at the *oldest* queued request's
/// arrival time, so time a request already spent waiting behind a
/// busy engine counts against its window.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Largest batch one dispatch may carry (>= 1).
    pub max_batch: usize,
    /// Coalescing window measured from the oldest queued request's
    /// arrival. `Duration::ZERO` (the default) dispatches the moment
    /// the dispatcher sees work — minimum idle latency; a positive
    /// window trades added latency for larger batches at moderate
    /// load. Dispatch always happens early once `max_batch` is
    /// reached.
    pub max_wait: Duration,
    /// Admission-control shedding threshold: a submit that finds this
    /// many requests already queued is rejected with
    /// [`ServeError::Overloaded`] instead of growing the queue, so
    /// tail latency stays bounded under overload.
    pub queue_capacity: usize,
    /// Search parameters shared by every request this service answers
    /// (`k` stays per-request). The seed is used as-is for every
    /// request, so a request's result does not depend on its position
    /// within whatever batch it happened to join.
    pub params: SearchParams,
    /// Worker threads for intra-batch parallelism (0 = the workspace
    /// default, `CAGRA_THREADS` / available parallelism). A batch of
    /// `b` requests uses `min(b, worker_threads)` workers.
    pub worker_threads: usize,
}

impl ServeConfig {
    /// Defaults around [`SearchParams`]: batches up to 64, immediate
    /// dispatch when idle, a 1024-deep admission queue.
    pub fn new(params: SearchParams) -> Self {
        ServeConfig {
            max_batch: 64,
            max_wait: Duration::ZERO,
            queue_capacity: 1024,
            params,
            worker_threads: 0,
        }
    }

    /// Reject configurations the dispatcher cannot run.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::BadConfig("max_batch must be >= 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_zero_batch_is_rejected() {
        let c = ServeConfig::new(SearchParams::for_k(10));
        assert!(c.validate().is_ok());
        let c = ServeConfig { max_batch: 0, ..c };
        assert_eq!(c.validate(), Err(ServeError::BadConfig("max_batch must be >= 1")));
    }
}
