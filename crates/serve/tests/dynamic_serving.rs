//! Serving a mutable backend (ISSUE 10):
//!
//! * **Shape-cache staleness** — the regression this PR fixes: a `k`
//!   validated against one epoch must be revalidated after any
//!   mutation, because a delete can shrink the live set below it. The
//!   cache is keyed on the backend epoch, so the first submit after a
//!   swap takes a miss and the stale shape is refused with the typed
//!   `SearchError` instead of silently served.
//! * **Mutations over TCP** — `OP_INSERT`/`OP_DELETE` round-trip
//!   through the wire protocol: inserts surface in subsequent
//!   searches, deletes disappear immediately, acks carry the id /
//!   found flag.
//! * **Static backends refuse mutations** — a `CagraIndex` service
//!   answers `Status::Unsupported` rather than panicking or lying.

use cagra::{CagraIndex, DynamicIndex, DynamicParams, GraphConfig, SearchError, SearchParams};
use dataset::synth::{Family, SynthSpec};
use dataset::Dataset;
use distance::Metric;
use serve::proto::Status;
use serve::tcp::ClientError;
use serve::{Client, ServeConfig, ServeError, Service, TcpServer};
use std::sync::Arc;

const DIM: usize = 8;

fn dynamic_index(n: usize) -> DynamicIndex {
    let mut params = DynamicParams::new(8);
    params.auto_compact = false;
    let ix = DynamicIndex::new(DIM, Metric::SquaredL2, params);
    let spec = SynthSpec { dim: DIM, n, queries: 0, family: Family::Gaussian, seed: 7 };
    let (pool, _) = spec.generate();
    for i in 0..n {
        ix.insert(pool.row(i)).expect("seed insert");
    }
    ix
}

#[test]
fn stale_shape_cache_is_invalidated_by_the_epoch_bump() {
    let ix = dynamic_index(20);
    let service =
        Service::start(ix, ServeConfig::new(SearchParams::for_k(10))).expect("start service");
    let q = [0.25f32; DIM];

    // k = 10 against 20 live rows: valid, and the shape caches — the
    // second request must not revalidate.
    assert_eq!(service.search_blocking(&q, 10).expect("first search").neighbors.len(), 10);
    let misses = service.shape_cache_misses();
    service.search_blocking(&q, 10).expect("cached-shape search");
    assert_eq!(service.shape_cache_misses(), misses, "same epoch + shape must not revalidate");

    // Delete 16 of the 20 rows: live drops to 4 < k and the epoch
    // advances past the cached generation.
    for id in 0..16u32 {
        assert_eq!(service.delete(id), Ok(true), "delete({id})");
    }
    // The cached k = 10 is now a lie. An epoch-blind cache would admit
    // it straight to the hot path; the epoch key forces revalidation,
    // which refuses it with the exact underlying error.
    assert_eq!(
        service.search_blocking(&q, 10).unwrap_err(),
        ServeError::Invalid(SearchError::KExceedsDataset { k: 10, n: 4 }),
        "stale shape must be re-refused after the swap"
    );
    assert!(service.shape_cache_misses() > misses, "the stale shape must cost a miss");

    // A shape that fits the shrunken live set validates and serves.
    assert_eq!(service.search_blocking(&q, 4).expect("post-swap search").neighbors.len(), 4);
}

#[test]
fn mutations_round_trip_over_tcp_and_searches_see_them_immediately() {
    let ix = dynamic_index(40);
    let service = Arc::new(
        Service::start(ix, ServeConfig::new(SearchParams::for_k(5))).expect("start service"),
    );
    let server = TcpServer::spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Insert a far-out probe vector; its own query must return it at
    // rank 0 (distance exactly 0).
    let probe = [100.0f32; DIM];
    let id = client.insert(&probe).expect("insert over tcp");
    assert_eq!(id, 40, "external ids are monotonic from the seed count");
    let resp = client.search(&probe, 5).expect("search finds the insert");
    assert_eq!(resp.neighbors[0].id, id);
    assert_eq!(resp.neighbors[0].dist, 0.0);

    // Delete it: the ack reports it was live, a re-delete reports it
    // was not, and searches stop returning it immediately.
    assert!(client.delete(id).expect("delete over tcp"));
    assert!(!client.delete(id).expect("idempotent re-delete"));
    let resp = client.search(&probe, 5).expect("search after delete");
    assert!(resp.neighbors.iter().all(|nb| nb.id != id), "tombstoned id resurfaced");
}

#[test]
fn static_backends_refuse_mutations_with_a_typed_status() {
    let spec = SynthSpec { dim: DIM, n: 300, queries: 0, family: Family::Gaussian, seed: 9 };
    let (base, _) = spec.generate();
    let (index, _) = CagraIndex::<Dataset>::build(base, Metric::SquaredL2, &GraphConfig::new(8));
    let service = Arc::new(
        Service::start(index, ServeConfig::new(SearchParams::for_k(5))).expect("start service"),
    );
    assert_eq!(service.insert(&[0.0; DIM]), Err(ServeError::Unsupported("insert")));
    assert_eq!(service.delete(3), Err(ServeError::Unsupported("delete")));

    let server = TcpServer::spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    match client.insert(&[0.0; DIM]) {
        Err(ClientError::Rejected { status: Status::Unsupported, message }) => {
            assert!(message.contains("insert"), "message should name the op: {message}");
        }
        other => panic!("expected Unsupported rejection, got {other:?}"),
    }
    // The connection survives a refused mutation: a search on the same
    // stream still works.
    let q = [0.1f32; DIM];
    assert_eq!(client.search(&q, 5).expect("search after refusal").neighbors.len(), 5);
}
