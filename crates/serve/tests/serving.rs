//! End-to-end serving semantics (ISSUE 6):
//!
//! * **Parity** — results served through the micro-batching service
//!   are bit-identical to direct `try_search_mode` calls with the plan
//!   the response reports, no matter how requests were coalesced.
//! * **Exactly-once** — N concurrent client threads each get exactly
//!   one response per request.
//! * **Batching** — co-arrivals inside a coalescing window ride one
//!   batch, and the batch dispatches early once `max_batch` is
//!   reached.
//! * **Admission control** — typed `Overloaded` rejection, accurate
//!   queue-depth reporting, recovery after drain (the queue-level legs
//!   live in `batcher.rs`; here the service-level surface).
//! * **Validation caching** — shape validation runs once per request
//!   shape, not per batch dispatch, and a malformed request is
//!   rejected with the underlying `SearchError` without poisoning the
//!   batcher.
//! * **TCP** — the same contract holds across the wire protocol.

use cagra::{CagraIndex, GraphConfig, SearchError, SearchParams};
use dataset::synth::{Family, SynthSpec};
use dataset::{Dataset, VectorStore};
use distance::Metric;
use knn::topk::Neighbor;
use serve::{Client, Response, ServeConfig, ServeError, Service, TcpServer};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const K: usize = 10;

fn build_index() -> (CagraIndex<Dataset>, Dataset) {
    let spec = SynthSpec { dim: 12, n: 900, queries: 64, family: Family::Gaussian, seed: 42 };
    let (base, queries) = spec.generate();
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(16));
    (index, queries)
}

/// Recompute the reference result for one served response: same
/// query, same params, and the mode/CTA plan the response says it ran
/// with. The service guarantees results depend only on these — never
/// on which other requests shared the batch.
fn reference(
    index: &CagraIndex<Dataset>,
    params: &SearchParams,
    query: &[f32],
    resp: &Response,
) -> Vec<Neighbor> {
    let mut p = *params;
    p.num_cta = resp.meta.num_cta as usize;
    index.try_search_mode(query, K, &p, resp.meta.mode).expect("reference search").0
}

fn assert_bit_identical(served: &[Neighbor], fresh: &[Neighbor], label: &str) {
    assert_eq!(served.len(), fresh.len(), "{label}: result count");
    for (rank, (s, f)) in served.iter().zip(fresh).enumerate() {
        assert_eq!(s.id, f.id, "{label}: rank {rank} id");
        assert_eq!(s.dist.to_bits(), f.dist.to_bits(), "{label}: rank {rank} distance bits");
    }
}

#[test]
fn concurrent_clients_get_exactly_one_bit_identical_response_each() {
    let (index, queries) = build_index();
    let params = SearchParams::for_k(K);
    let config = ServeConfig::new(params);
    let service = Arc::new(Service::start(index, config).expect("start service"));

    const CLIENTS: usize = 8;
    let per_client = queries.len() / CLIENTS;
    let responses: Vec<(usize, Response)> = thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = Arc::clone(&service);
                let queries = &queries;
                s.spawn(move || {
                    let mut got = Vec::with_capacity(per_client);
                    for qi in (c * per_client)..((c + 1) * per_client) {
                        let resp =
                            service.search_blocking(queries.row(qi), K).expect("request served");
                        got.push((qi, resp));
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });

    // Exactly one response per request, covering every query index.
    assert_eq!(responses.len(), CLIENTS * per_client);
    let mut seen: Vec<usize> = responses.iter().map(|(qi, _)| *qi).collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..CLIENTS * per_client).collect::<Vec<_>>());

    // Bit-identical to a direct search with the plan each response
    // reports, regardless of realized batch composition.
    for (qi, resp) in &responses {
        assert!(resp.meta.batch_size >= 1);
        assert!(resp.meta.queue_ns <= resp.meta.e2e_ns, "queue time exceeds end-to-end");
        let fresh = reference(service.backend(), &params, queries.row(*qi), resp);
        assert_bit_identical(&resp.neighbors, &fresh, &format!("query {qi}"));
    }
}

#[test]
fn co_arrivals_inside_the_window_ride_one_batch_and_dispatch_early_when_full() {
    let (index, queries) = build_index();
    let mut config = ServeConfig::new(SearchParams::for_k(K));
    // A wide window, but max_batch = 4: the batch must dispatch the
    // moment the 4th request lands, not after the window.
    config.max_wait = Duration::from_secs(2);
    config.max_batch = 4;
    let service = Service::start(index, config).expect("start service");

    let handles: Vec<_> =
        (0..4).map(|qi| service.submit(queries.row(qi), K).expect("admitted")).collect();
    let t0 = std::time::Instant::now();
    let responses: Vec<Response> = handles.into_iter().map(|h| h.wait().expect("served")).collect();
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "a full batch must not sit out the coalescing window"
    );
    for resp in &responses {
        assert_eq!(resp.meta.batch_size, 4, "co-arrivals must coalesce into one batch");
    }
    // All four report the same plan, chosen from the realized size.
    assert!(responses
        .windows(2)
        .all(|w| w[0].meta.mode == w[1].meta.mode && w[0].meta.num_cta == w[1].meta.num_cta));
}

#[test]
fn overload_is_typed_and_the_service_reports_queue_depth() {
    let (index, queries) = build_index();
    let mut config = ServeConfig::new(SearchParams::for_k(K));
    config.queue_capacity = 0; // every admission attempt meets the threshold
    let service = Service::start(index, config).expect("start service");
    match service.submit(queries.row(0), K) {
        Err(ServeError::Overloaded { depth, capacity }) => {
            assert_eq!((depth, capacity), (0, 0));
        }
        other => panic!("expected Overloaded, got {:?}", other.err()),
    }
    assert_eq!(service.queue_depth(), 0, "a shed request must not occupy the queue");
}

#[test]
fn malformed_requests_are_rejected_without_poisoning_the_batcher() {
    let (index, queries) = build_index();
    let params = SearchParams::for_k(K);
    let service = Service::start(index, ServeConfig::new(params)).expect("start service");

    // Wrong dimension, k = 0, k > itopk: all typed, none admitted.
    match service.submit(&[1.0, 2.0], K) {
        Err(ServeError::Invalid(SearchError::DimMismatch { expected, got })) => {
            assert_eq!((expected, got), (12, 2));
        }
        other => panic!("expected DimMismatch, got {:?}", other.err()),
    }
    assert!(matches!(
        service.submit(queries.row(0), 0),
        Err(ServeError::Invalid(SearchError::ZeroK))
    ));
    assert!(matches!(
        service.submit(queries.row(0), params.itopk + 1),
        Err(ServeError::Invalid(SearchError::KExceedsItopk { .. }))
    ));
    assert_eq!(service.queue_depth(), 0, "rejected requests must never enter the queue");

    // The batcher is not poisoned: valid traffic is still served
    // correctly after the rejections.
    let resp = service.search_blocking(queries.row(0), K).expect("service still healthy");
    let fresh = reference(service.backend(), &params, queries.row(0), &resp);
    assert_bit_identical(&resp.neighbors, &fresh, "post-rejection request");
}

#[test]
fn shape_validation_runs_once_per_shape_not_per_dispatch() {
    let (index, queries) = build_index();
    let service = Service::start(index, ServeConfig::new(SearchParams::for_k(K))).unwrap();
    assert_eq!(service.shape_cache_misses(), 0);
    // Many requests, two shapes: exactly two validation runs.
    for qi in 0..20 {
        service.search_blocking(queries.row(qi), K).expect("served");
    }
    assert_eq!(service.shape_cache_misses(), 1, "one shape must validate exactly once");
    for qi in 0..10 {
        service.search_blocking(queries.row(qi), K - 1).expect("served");
    }
    assert_eq!(service.shape_cache_misses(), 2, "second shape adds exactly one validation");
    // Invalid shapes never enter the cache, so they are re-validated
    // (and re-rejected) each time — correctness beats caching there.
    let _ = service.submit(queries.row(0), 0);
    let _ = service.submit(queries.row(0), 0);
    assert_eq!(service.shape_cache_misses(), 4);
}

#[test]
fn dropped_response_handles_do_not_wedge_the_dispatcher() {
    let (index, queries) = build_index();
    let service = Service::start(index, ServeConfig::new(SearchParams::for_k(K))).unwrap();
    drop(service.submit(queries.row(0), K).expect("admitted"));
    // The dispatcher must shrug off the gone client and keep serving.
    let resp = service.search_blocking(queries.row(1), K).expect("served");
    assert_eq!(resp.neighbors.len(), K);
}

#[test]
fn tcp_round_trip_matches_in_process_results() {
    let (index, queries) = build_index();
    let params = SearchParams::for_k(K);
    let service = Arc::new(Service::start(index, ServeConfig::new(params)).unwrap());
    let server = TcpServer::spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // Several connections in parallel, each a sequential client.
    let responses: Vec<(usize, Response)> = thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let queries = &queries;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    (0..8)
                        .map(|i| {
                            let qi = c * 8 + i;
                            (qi, client.search(queries.row(qi), K).expect("served over TCP"))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("tcp client thread")).collect()
    });
    assert_eq!(responses.len(), 32);
    for (qi, resp) in &responses {
        let fresh = reference(service.backend(), &params, queries.row(*qi), resp);
        assert_bit_identical(&resp.neighbors, &fresh, &format!("tcp query {qi}"));
    }

    // Typed rejections survive the wire: wrong dim and k = 0 come back
    // as Invalid, and the connection stays usable afterwards.
    let mut client = Client::connect(addr).expect("connect");
    let err = client.search(&[0.0; 3], K).expect_err("wrong dim must be rejected");
    match &err {
        serve::ClientError::Rejected { status, message } => {
            assert_eq!(*status, serve::proto::Status::Invalid);
            assert!(message.contains("dimension"), "unhelpful reject message: {message}");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert!(!err.is_overloaded());
    let err = client.search(queries.row(0), 0).expect_err("k = 0 must be rejected");
    assert!(matches!(
        err,
        serve::ClientError::Rejected { status: serve::proto::Status::Invalid, .. }
    ));
    let resp = client.search(queries.row(0), K).expect("connection survives rejections");
    assert_eq!(resp.neighbors.len(), K);
}

#[test]
fn tcp_overload_maps_to_the_overloaded_status() {
    let (index, _queries) = build_index();
    let mut config = ServeConfig::new(SearchParams::for_k(K));
    config.queue_capacity = 0;
    let service = Arc::new(Service::start(index, config).unwrap());
    let server = TcpServer::spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let err = client.search(&[0.0; 12], K).expect_err("zero capacity sheds everything");
    assert!(err.is_overloaded(), "expected Overloaded over the wire, got {err:?}");
}

#[test]
fn pq_backed_service_serves_two_phase_exact_distances() {
    // A compressed (PQ) index served with rerank enabled must return
    // exact full-precision distances — the serving layer's hot path
    // runs phase two transparently via `search_mode_with`.
    let spec = SynthSpec { dim: 12, n: 900, queries: 16, family: Family::Gaussian, seed: 42 };
    let (base, queries) = spec.generate();
    let pq_store = dataset::pq::build(&base, &dataset::pq::PqConfig::new(4));
    let (graph, _) = cagra::build_graph(&base, Metric::SquaredL2, &GraphConfig::new(16));
    let index = CagraIndex::from_parts(pq_store, graph, Metric::SquaredL2);

    // Without a rerank source, a rerank-enabled config is rejected at
    // admission with the typed error.
    let mut params = SearchParams::for_k(K);
    params.itopk = 128;
    params.rerank_depth = 64;
    let service = Service::start(index, ServeConfig::new(params)).expect("start service");
    match service.submit(queries.row(0), K) {
        Err(ServeError::Invalid(SearchError::RerankWithoutSource)) => {}
        Err(other) => panic!("expected RerankWithoutSource, got {other:?}"),
        Ok(_) => panic!("expected RerankWithoutSource, got an admitted request"),
    }
    drop(service);

    // Rebuild with the source attached: served distances are exact.
    let pq_store = dataset::pq::build(&base, &dataset::pq::PqConfig::new(4));
    let (graph, _) = cagra::build_graph(&base, Metric::SquaredL2, &GraphConfig::new(16));
    let mut index = CagraIndex::from_parts(pq_store, graph, Metric::SquaredL2);
    index.set_rerank_store(Box::new(Dataset::from_flat(base.as_flat().to_vec(), base.dim())));
    let service = Service::start(index, ServeConfig::new(params)).expect("start service");
    for qi in 0..queries.len() {
        let resp = service.search_blocking(queries.row(qi), K).expect("served");
        assert_eq!(resp.neighbors.len(), K);
        for n in &resp.neighbors {
            let want = Metric::SquaredL2.distance(queries.row(qi), base.row(n.id as usize));
            assert_eq!(n.dist.to_bits(), want.to_bits(), "query {qi} id {}", n.id);
        }
    }
}
