//! Shared fixtures for the per-figure Criterion benchmarks.
//!
//! Benchmarks run at a deliberately small scale (the harness runs on
//! whatever machine executes `cargo bench`); the `eval` binary is the
//! tool for larger, figure-shaped sweeps. Scale can be raised with
//! `CAGRA_BENCH_N`.

pub mod loadgen;

use cagra::build::GraphConfig;
use cagra::CagraIndex;
use dataset::synth::{Family, SynthSpec};
use dataset::{Dataset, VectorStore};
use distance::Metric;
use knn::flat::KnnLists;
use knn::{NnDescent, NnDescentParams};

/// Benchmark dataset size (`CAGRA_BENCH_N`, default 1500).
pub fn bench_n() -> usize {
    std::env::var("CAGRA_BENCH_N").ok().and_then(|v| v.parse().ok()).unwrap_or(1500)
}

/// DEEP-like fixture: 96-dim Gaussian base plus queries.
pub fn deep_like(queries: usize) -> (Dataset, Dataset) {
    SynthSpec { dim: 96, n: bench_n(), queries, family: Family::Gaussian, seed: 0xbe9c }.generate()
}

/// GloVe-like fixture: 200-dim clustered ("hard") base plus queries.
pub fn glove_like(queries: usize) -> (Dataset, Dataset) {
    SynthSpec {
        dim: 200,
        n: bench_n(),
        queries,
        family: Family::Clustered { clusters: 64, spread: 1.0 },
        seed: 0x910e,
    }
    .generate()
}

/// The standard fixture degree.
pub const DEGREE: usize = 16;

/// Build a CAGRA index over a base dataset.
pub fn cagra_index(base: &Dataset) -> CagraIndex<Dataset> {
    let clone = Dataset::from_flat(base.as_flat().to_vec(), base.dim());
    CagraIndex::build(clone, Metric::SquaredL2, &GraphConfig::new(DEGREE)).0
}

/// Pre-built NN-Descent lists (shared by the optimization benches).
pub fn knn_lists(base: &Dataset, k: usize) -> KnnLists {
    NnDescent::new(NnDescentParams::new(k)).build(base, Metric::SquaredL2)
}

/// Clone helper (benches must not consume the shared fixture).
pub fn clone_ds(base: &Dataset) -> Dataset {
    Dataset::from_flat(base.as_flat().to_vec(), base.dim())
}
