//! Load generators for the serving layer (ISSUE 6).
//!
//! Two canonical shapes from the serving-benchmark literature:
//!
//! * **Closed loop** ([`closed_loop`]) — N clients, each issuing its
//!   next request the moment the previous one completes. Offered load
//!   self-regulates to service capacity; good for "is the service
//!   healthy and how fast can it go with N concurrent callers"
//!   (this is what the CI serving-smoke lane runs).
//! * **Open loop** ([`open_loop`]) — requests arrive on a Poisson
//!   process at a configured rate, independent of completions, which
//!   is how tail latency actually behaves in production: arrivals do
//!   not pause because the server is slow. Sweeping the offered rate
//!   ([`sweep_open_loop`]) traces the latency/throughput curve and
//!   shows micro-batches forming as load grows.
//!
//! Both are deterministic for a fixed seed (the open-loop arrival
//! schedule comes from the workspace `rand` shim) and report exact
//! percentiles computed from every collected sample — no histogram
//! bucketing error in the numbers the experiments table quotes.

use dataset::{Dataset, VectorStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{Response, ServeError, Service};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Outcome of one load-generation run.
#[derive(Clone, Debug, Default)]
pub struct LoadStats {
    /// Successfully served requests.
    pub completed: u64,
    /// Requests shed by admission control (`Overloaded`).
    pub rejected: u64,
    /// Any other failure (validation, disconnect) — should be zero in
    /// a healthy run.
    pub errors: u64,
    /// End-to-end latency samples (admission to response), nanoseconds,
    /// sorted ascending.
    pub e2e_ns: Vec<u64>,
    /// Realized batch size of each served request's dispatch.
    pub batch_sizes: Vec<u32>,
    /// First submission to last response.
    pub wall: Duration,
}

impl LoadStats {
    fn finish(mut self, wall: Duration) -> Self {
        self.e2e_ns.sort_unstable();
        self.wall = wall;
        self
    }

    fn absorb(&mut self, outcome: Result<Response, ServeError>) {
        match outcome {
            Ok(resp) => {
                self.completed += 1;
                self.e2e_ns.push(resp.meta.e2e_ns);
                self.batch_sizes.push(resp.meta.batch_size);
            }
            Err(ServeError::Overloaded { .. }) => self.rejected += 1,
            Err(_) => self.errors += 1,
        }
    }

    fn merge(&mut self, other: LoadStats) {
        self.completed += other.completed;
        self.rejected += other.rejected;
        self.errors += other.errors;
        self.e2e_ns.extend(other.e2e_ns);
        self.batch_sizes.extend(other.batch_sizes);
    }

    /// Exact percentile (nearest-rank) over the collected latencies.
    ///
    /// Edge-case contract (ISSUE 10 bugfix), pinned by unit tests:
    /// * no samples → `0` (never an index panic);
    /// * `p <= 0`, NaN, or any `p` below `100/n` (a rank that rounds
    ///   to less than one sample) → the minimum sample — nearest-rank
    ///   never interpolates below the smallest observation;
    /// * `p >= 100` → the maximum sample (out-of-range `p` clamps
    ///   rather than reading past the end).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let n = self.e2e_ns.len();
        let (Some(&first), Some(&last)) = (self.e2e_ns.first(), self.e2e_ns.last()) else {
            return 0;
        };
        if p.is_nan() || p <= 0.0 {
            // Covers p <= 0 and NaN: the smallest observation.
            return first;
        }
        if p >= 100.0 {
            return last;
        }
        // Nearest-rank: ceil(p/100 * n), at least 1. `p` is finite and
        // in (0, 100) here, so the product is a finite non-negative
        // float and the cast cannot wrap; the clamp keeps the rank a
        // valid index even so.
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.e2e_ns.get(rank.clamp(1, n) - 1).copied().unwrap_or(last)
    }

    /// Median end-to-end latency, nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }

    /// 99th-percentile end-to-end latency, nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }

    /// Served throughput, queries per second.
    pub fn qps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.wall.as_secs_f64()
    }

    /// Mean realized batch size over served requests.
    pub fn mean_batch(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            return 0.0;
        }
        self.batch_sizes.iter().map(|&b| b as f64).sum::<f64>() / self.batch_sizes.len() as f64
    }

    /// Largest realized batch observed.
    pub fn max_batch(&self) -> u32 {
        self.batch_sizes.iter().copied().max().unwrap_or(0)
    }

    /// One table row: offered column is caller-provided context.
    pub fn row(&self, label: &str) -> String {
        format!(
            "| {label} | {:.0} | {:.1} | {} | {:.3} | {:.3} | {} |",
            self.qps(),
            self.mean_batch(),
            self.max_batch(),
            self.p50_ns() as f64 / 1e6,
            self.p99_ns() as f64 / 1e6,
            self.rejected,
        )
    }
}

/// Closed-loop drive: `clients` threads issue `total_requests` between
/// them, each firing its next request as soon as the previous answer
/// lands. Queries are taken round-robin from `queries`.
pub fn closed_loop<B: serve::SearchBackend>(
    service: &Arc<Service<B>>,
    queries: &Dataset,
    k: usize,
    clients: usize,
    total_requests: usize,
) -> LoadStats {
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let stats = thread::scope(|s| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|_| {
                let service = Arc::clone(service);
                let next = &next;
                s.spawn(move || {
                    let mut local = LoadStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total_requests {
                            return local;
                        }
                        let qi = i % queries.len();
                        local.absorb(service.search_blocking(queries.row(qi), k));
                    }
                })
            })
            .collect();
        let mut merged = LoadStats::default();
        for h in handles {
            merged.merge(h.join().expect("closed-loop client"));
        }
        merged
    });
    stats.finish(t0.elapsed())
}

/// Open-loop drive: `total_requests` arrivals on a Poisson process at
/// `rate_qps` (exponential inter-arrival gaps, deterministic for
/// `seed`). Arrivals are fired without waiting for completions —
/// admission may shed under overload, which is the point — and every
/// admitted request is then awaited.
pub fn open_loop<B: serve::SearchBackend>(
    service: &Arc<Service<B>>,
    queries: &Dataset,
    k: usize,
    rate_qps: f64,
    total_requests: usize,
    seed: u64,
) -> LoadStats {
    assert!(rate_qps > 0.0, "open_loop needs a positive offered rate");
    // Pre-draw the whole arrival schedule so generation cost does not
    // perturb the arrival process.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = Duration::ZERO;
    let schedule: Vec<Duration> = (0..total_requests)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            at += Duration::from_secs_f64(-u.ln() / rate_qps);
            at
        })
        .collect();

    let mut stats = LoadStats::default();
    let mut pending = Vec::with_capacity(total_requests);
    let t0 = Instant::now();
    for (i, arrival) in schedule.iter().enumerate() {
        if let Some(gap) = arrival.checked_sub(t0.elapsed()) {
            thread::sleep(gap);
        }
        let qi = i % queries.len();
        match service.submit(queries.row(qi), k) {
            Ok(handle) => pending.push(handle),
            Err(ServeError::Overloaded { .. }) => stats.rejected += 1,
            Err(_) => stats.errors += 1,
        }
    }
    for handle in pending {
        stats.absorb(handle.wait());
    }
    stats.finish(t0.elapsed())
}

/// Sweep offered rates low→high against one service, returning
/// `(rate, stats)` per step — the offered-load vs tail-latency curve.
pub fn sweep_open_loop<B: serve::SearchBackend>(
    service: &Arc<Service<B>>,
    queries: &Dataset,
    k: usize,
    rates: &[f64],
    requests_per_rate: usize,
    seed: u64,
) -> Vec<(f64, LoadStats)> {
    rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            (rate, open_loop(service, queries, k, rate, requests_per_rate, seed ^ (i as u64)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut s = LoadStats { e2e_ns: (1..=100).rev().collect(), ..Default::default() };
        s.e2e_ns.sort_unstable();
        s.completed = 100;
        assert_eq!(s.p50_ns(), 50);
        assert_eq!(s.p99_ns(), 99);
        assert_eq!(s.percentile_ns(100.0), 100);
        assert_eq!(LoadStats::default().p99_ns(), 0);
    }

    #[test]
    fn percentile_edge_cases_are_total() {
        // Empty samples: every percentile is 0, no index panic —
        // including p = 0, where a naive rank would be 0 too.
        let empty = LoadStats::default();
        for p in [0.0, 0.5, 50.0, 100.0, 150.0, -3.0, f64::NAN] {
            assert_eq!(empty.percentile_ns(p), 0, "empty at p = {p}");
        }
        // n = 3: any p at or below 100/n = 33.33.. has nearest rank 1.
        let s = LoadStats { e2e_ns: vec![10, 20, 30], ..Default::default() };
        assert_eq!(s.percentile_ns(0.0), 10, "p = 0 is the minimum");
        assert_eq!(s.percentile_ns(0.001), 10, "p below 100/n is the minimum");
        assert_eq!(s.percentile_ns(33.0), 10, "p just below 100/n");
        assert_eq!(s.percentile_ns(33.4), 20, "first rank past 100/n");
        assert_eq!(s.percentile_ns(100.0), 30);
        // Out-of-range and non-finite p clamp instead of panicking.
        assert_eq!(s.percentile_ns(250.0), 30);
        assert_eq!(s.percentile_ns(-10.0), 10);
        assert_eq!(s.percentile_ns(f64::NAN), 10);
        // Single sample: every percentile is that sample.
        let one = LoadStats { e2e_ns: vec![7], ..Default::default() };
        for p in [0.0, 1.0, 50.0, 99.9, 100.0] {
            assert_eq!(one.percentile_ns(p), 7, "single sample at p = {p}");
        }
    }

    #[test]
    fn poisson_schedule_is_deterministic_for_a_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    -u.ln() / 500.0
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
        // Exponential gaps at rate λ have mean 1/λ.
        let gaps = draw(9);
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(mean > 0.0 && mean < 10.0 / 500.0, "implausible mean gap {mean}");
    }
}
