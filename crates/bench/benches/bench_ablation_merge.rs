//! Ablation: the reverse-edge merge (on/off) and the reordering step
//! (on/off) — the Fig. 3 variants, timed.

use bench::{deep_like, knn_lists, DEGREE};
use cagra::optimize::{optimize, reverse_lists, OptimizeOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use distance::Metric;

fn bench(c: &mut Criterion) {
    let (base, _) = deep_like(0);
    let knn = knn_lists(&base, 2 * DEGREE);
    let mut g = c.benchmark_group("ablation_merge");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("with_reverse_merge", |b| {
        b.iter(|| optimize(&knn, &base, Metric::SquaredL2, &OptimizeOptions::new(DEGREE)))
    });
    g.bench_function("pruned_only", |b| {
        b.iter(|| {
            let opts = OptimizeOptions { reverse: false, ..OptimizeOptions::new(DEGREE) };
            optimize(&knn, &base, Metric::SquaredL2, &opts)
        })
    });
    // The reverse-list construction in isolation (naive serial form;
    // the parallel counting-scatter path is timed in micro/build).
    let pruned: Vec<Vec<u32>> =
        knn.rows().map(|l| l[..DEGREE].iter().map(|n| n.id).collect()).collect();
    g.bench_function("reverse_lists_only", |b| b.iter(|| reverse_lists(&pruned, DEGREE)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
