//! Fig. 8 bench: simulated-A100 batch time per team size (the search
//! itself runs once; team size is a costing input).

use bench::{cagra_index, deep_like, glove_like};
use cagra::search::planner::Mode;
use cagra::SearchParams;
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{simulate_batch, DeviceSpec, Mapping};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let device = DeviceSpec::a100();
    for (name, dim, (base, queries)) in
        [("deep", 96usize, deep_like(30)), ("glove", 200, glove_like(30))]
    {
        let index = cagra_index(&base);
        let params = SearchParams::for_k(10);
        let traces: Vec<_> = index
            .search_batch_traced(&queries, 10, &params, Mode::SingleCta)
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        for team in [2usize, 4, 8, 16, 32] {
            g.bench_function(format!("{name}/team{team}"), |b| {
                b.iter(|| simulate_batch(&device, &traces, dim, 4, team, Mapping::SingleCta))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
