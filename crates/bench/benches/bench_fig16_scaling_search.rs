//! Fig. 16 bench: batch search vs dataset size, recall@10 and @100
//! widths.

use bench::{clone_ds, DEGREE};
use cagra::build::GraphConfig;
use cagra::{CagraIndex, SearchParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataset::synth::{Family, SynthSpec};
use distance::Metric;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [500usize, 2000] {
        let (base, queries) =
            SynthSpec { dim: 96, n, queries: 30, family: Family::Gaussian, seed: 2 }.generate();
        let (index, _) =
            CagraIndex::build(clone_ds(&base), Metric::SquaredL2, &GraphConfig::new(DEGREE));
        for k in [10usize, 100] {
            if n <= 2 * k {
                continue;
            }
            let params = SearchParams::for_k(k);
            g.bench_with_input(BenchmarkId::new(format!("cagra_k{k}"), n), &queries, |b, q| {
                b.iter(|| index.search_batch(q, k, &params))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
