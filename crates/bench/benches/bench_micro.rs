//! Microbenchmarks for the hot primitives underneath every experiment:
//! distance kernels (FP32/FP16/INT8 access paths), bounded top-k, the
//! visited hash table, and the bitonic candidate sort. These are the
//! knobs the Rust-side performance work tunes; the figure-level
//! benches sit on top of them.

use bench::{cagra_index, clone_ds, deep_like, glove_like, knn_lists, DEGREE};
use cagra::optimize::{optimize, optimize_naive, OptimizeOptions};
use cagra::search::buffer::{bitonic_sort, BufEntry};
use cagra::search::hash::VisitedSet;
use cagra::search::planner::Mode;
use cagra::search::single_cta::search_single_cta_with;
use cagra::{SearchParams, SearchScratch};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dataset::synth::{Family, SynthSpec};
use dataset::VectorStore;
use distance::{squared_l2, DistanceOracle, Metric};
use knn::topk::{Neighbor, TopK};
use knn::{reference_build, NnDescent, NnDescentParams};

/// The SIMD engine's three tiers, per metric and element type:
/// `scalar_row` (canonical scalar kernels, one row per call — the
/// pre-engine baseline), `simd_row` (detected backend, still one row
/// per call), and `simd_gang` (detected backend through the batched
/// `to_rows` path with per-query invariants hoisted). All three
/// produce bit-identical distances; only the time differs.
fn bench_distance(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/distance");
    let scalar_k = distance::kernels::scalar();
    let simd_k = distance::kernels::detected();
    let n = 256usize;
    let dim = 128usize;
    let (base, q) = SynthSpec { dim, n, queries: 1, family: Family::Gaussian, seed: 1 }.generate();
    let query = q.row(0).to_vec();
    let ids: Vec<u32> = (0..n as u32).collect();
    let half = base.to_f16();
    let quant = base.to_i8();

    macro_rules! tier_legs {
        ($store:expr, $tag:expr) => {{
            let store = $store;
            for (mname, metric) in
                [("l2", Metric::SquaredL2), ("ip", Metric::InnerProduct), ("cos", Metric::Cosine)]
            {
                let per_scalar = DistanceOracle::with_kernels(store, metric, scalar_k);
                let per_simd = DistanceOracle::with_kernels(store, metric, simd_k);
                g.bench_function(format!("{mname}_{}_d{dim}_scalar_row", $tag), |b| {
                    b.iter(|| {
                        let mut acc = 0.0f32;
                        for i in 0..n {
                            acc += per_scalar.to_row(black_box(&query), i);
                        }
                        acc
                    })
                });
                g.bench_function(format!("{mname}_{}_d{dim}_simd_row", $tag), |b| {
                    b.iter(|| {
                        let mut acc = 0.0f32;
                        for i in 0..n {
                            acc += per_simd.to_row(black_box(&query), i);
                        }
                        acc
                    })
                });
                g.bench_function(format!("{mname}_{}_d{dim}_simd_gang", $tag), |b| {
                    let mut out = vec![0.0f32; n];
                    b.iter(|| {
                        let prepared = per_simd.prepare(black_box(&query));
                        per_simd.to_rows(&prepared, &ids, &mut out);
                        out[n - 1]
                    })
                });
            }
        }};
    }
    tier_legs!(&base, "fp32");
    tier_legs!(&half, "fp16");
    tier_legs!(&quant, "int8");

    // Dimension sweep (f32 L2 only): the SIMD win grows with row
    // length; the free function exercises the dispatched entry point.
    for dim in [96usize, 960] {
        let (base, q) =
            SynthSpec { dim, n: 64, queries: 1, family: Family::Gaussian, seed: 1 }.generate();
        let query = q.row(0).to_vec();
        let ids: Vec<u32> = (0..base.len() as u32).collect();
        g.bench_function(format!("l2_fp32_d{dim}_free_fn"), |b| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for i in 0..base.len() {
                    acc += squared_l2(black_box(&query), base.row(i));
                }
                acc
            })
        });
        g.bench_function(format!("l2_fp32_d{dim}_simd_gang"), |b| {
            let oracle = DistanceOracle::with_kernels(&base, Metric::SquaredL2, simd_k);
            let mut out = vec![0.0f32; base.len()];
            b.iter(|| {
                let prepared = oracle.prepare(black_box(&query));
                oracle.to_rows(&prepared, &ids, &mut out);
                out[out.len() - 1]
            })
        });
    }
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/topk");
    let mut x = 1u64;
    let items: Vec<Neighbor> = (0..4096u32)
        .map(|i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            Neighbor::new(i, (x >> 40) as f32)
        })
        .collect();
    for k in [10usize, 100] {
        g.bench_function(format!("top{k}_of_4096"), |b| {
            b.iter(|| {
                let mut t = TopK::new(k);
                for &it in &items {
                    if it.dist < t.threshold() {
                        t.push(it);
                    }
                }
                t.into_sorted()
            })
        });
    }
    g.finish();
}

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/visited_hash");
    let ids: Vec<u32> = (0..2000u32).map(|i| i.wrapping_mul(2654435761) % 100_000).collect();
    g.bench_function("insert_2000_into_2^12", |b| {
        b.iter(|| {
            let mut v = VisitedSet::new(12);
            let mut hits = 0;
            for &id in &ids {
                if v.insert(black_box(id)) {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.bench_function("reset_with_64_survivors", |b| {
        let mut v = VisitedSet::new(12);
        for &id in &ids {
            v.insert(id);
        }
        b.iter(|| {
            v.reset((0..64u32).map(|i| i * 3));
            v.len()
        })
    });
    g.finish();
}

fn bench_bitonic(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/bitonic_sort");
    for n in [32usize, 128, 512] {
        let mut x = 3u64;
        let entries: Vec<BufEntry> = (0..n as u32)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                BufEntry::new(i, (x >> 40) as f32)
            })
            .collect();
        g.bench_function(format!("n{n}"), |b| {
            b.iter(|| {
                let mut v = entries.clone();
                bitonic_sort(&mut v);
                v
            })
        });
    }
    g.finish();
}

/// Fresh per-query allocation vs recycled per-thread scratch, on the
/// identical single-CTA search (same graph, same queries, identical
/// results). The gap is exactly the allocation + first-touch cost the
/// zero-allocation batch path removes per query.
fn bench_scratch_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/scratch_reuse");
    let (base, queries) = deep_like(16);
    let index = cagra_index(&base);
    let params = SearchParams::for_k(10);
    let nq = queries.len();

    g.bench_function("search16_fresh_state", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for qi in 0..nq {
                let mut scratch = SearchScratch::new();
                let mut p = params;
                p.seed = params.seed_for_query(qi);
                search_single_cta_with(
                    index.graph(),
                    index.store(),
                    index.metric(),
                    black_box(queries.row(qi)),
                    10,
                    &p,
                    &mut scratch,
                );
                acc += scratch.results().len();
            }
            acc
        })
    });
    g.bench_function("search16_reused_scratch", |b| {
        let mut scratch = SearchScratch::new();
        scratch.set_record_trace(false);
        b.iter(|| {
            let mut acc = 0usize;
            for qi in 0..nq {
                let mut p = params;
                p.seed = params.seed_for_query(qi);
                search_single_cta_with(
                    index.graph(),
                    index.store(),
                    index.metric(),
                    black_box(queries.row(qi)),
                    10,
                    &p,
                    &mut scratch,
                );
                acc += scratch.results().len();
            }
            acc
        })
    });
    // The full batch entry point (thread pool + per-thread scratch),
    // for an end-to-end number alongside the isolated loops above.
    g.bench_function("batch16_single_cta", |b| {
        b.iter(|| index.search_batch_mode(black_box(&queries), 10, &params, Mode::SingleCta))
    });
    g.finish();
}

/// Construction-pipeline stages on the flat-arena path, at 1 and 4
/// threads, next to the retained serial `Vec<Vec<_>>` references. All
/// variants produce bit-identical graphs (see the `build_parity`
/// integration test); only the time differs. `optimize_full` minus
/// `reorder_prune` is the reverse-edge scatter + merge cost.
fn bench_build(c: &mut Criterion) {
    let (base, _) = deep_like(0);
    let knn = knn_lists(&base, 2 * DEGREE);
    let mut g = c.benchmark_group("micro/build");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));

    for threads in [1usize, 4] {
        let params = NnDescentParams { threads, ..NnDescentParams::new(2 * DEGREE) };
        g.bench_function(format!("nn_descent_t{threads}"), |b| {
            b.iter(|| NnDescent::new(params.clone()).build(black_box(&base), Metric::SquaredL2))
        });
        let prune_only =
            OptimizeOptions { reverse: false, threads, ..OptimizeOptions::new(DEGREE) };
        g.bench_function(format!("reorder_prune_t{threads}"), |b| {
            b.iter(|| optimize(black_box(&knn), &base, Metric::SquaredL2, &prune_only))
        });
        let full = OptimizeOptions { threads, ..OptimizeOptions::new(DEGREE) };
        g.bench_function(format!("optimize_full_t{threads}"), |b| {
            b.iter(|| optimize(black_box(&knn), &base, Metric::SquaredL2, &full))
        });
    }

    let serial = NnDescentParams { threads: 1, ..NnDescentParams::new(2 * DEGREE) };
    g.bench_function("nn_descent_reference_serial", |b| {
        b.iter(|| reference_build(&serial, black_box(&base), Metric::SquaredL2))
    });
    g.bench_function("optimize_naive_serial", |b| {
        b.iter(|| {
            optimize_naive(black_box(&knn), &base, Metric::SquaredL2, &OptimizeOptions::new(DEGREE))
        })
    });
    g.finish();
}

/// Memory-locality relabeling: permutation computation + joint apply
/// per strategy, and the batch search on the relabeled index next to
/// the identity layout. On the clustered GloVe-like fixture the
/// relabeled layouts issue fewer 128-bit transactions in the GPU
/// model; here the observable is CPU wall-clock (cache behavior).
fn bench_relabel(c: &mut Criterion) {
    use cagra::{CagraIndex, RelabelStrategy};
    use dataset::Dataset;

    let mut g = c.benchmark_group("micro/relabel");
    g.sample_size(10);
    let (base, queries) = glove_like(16);
    let index = cagra_index(&base);
    let params = SearchParams::for_k(10);

    let fresh =
        || CagraIndex::from_parts(clone_ds(index.store()), index.graph().clone(), index.metric());
    for strategy in [RelabelStrategy::Degree, RelabelStrategy::Rcm, RelabelStrategy::Gorder] {
        g.bench_function(format!("apply_{}", strategy.label()), |b| {
            b.iter(|| {
                let mut idx: CagraIndex<Dataset> = fresh();
                idx.relabel(black_box(strategy));
                idx.id_map().is_some()
            })
        });
        let mut relabeled = fresh();
        relabeled.relabel(strategy);
        g.bench_function(format!("search16_{}", strategy.label()), |b| {
            b.iter(|| {
                relabeled.search_batch_mode(black_box(&queries), 10, &params, Mode::SingleCta)
            })
        });
    }
    g.bench_function("search16_identity", |b| {
        b.iter(|| index.search_batch_mode(black_box(&queries), 10, &params, Mode::SingleCta))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_distance,
    bench_topk,
    bench_hash,
    bench_bitonic,
    bench_scratch_reuse,
    bench_build,
    bench_relabel,
);
criterion_main!(benches);
