//! Serving-layer load benchmark + CI smoke (ISSUE 6).
//!
//! Not a Criterion timing target: serving performance is a function
//! of *offered load*, so this binary drives the in-process service
//! with the load generators and prints/records throughput-vs-latency
//! results directly. Three legs:
//!
//! 1. **Smoke** (what the CI serving-smoke lane asserts on): a
//!    closed-loop run of a fixed request count must complete with zero
//!    errors and nonzero QPS.
//! 2. **Batching benefit**: per-query throughput with concurrent
//!    clients (micro-batches form) must beat the batch-size-1 baseline
//!    (a single closed-loop client; every dispatch carries one query).
//! 3. **Open-loop sweep**: offered rate low → high; realized batch
//!    size must grow with load (the "batch when loaded" half of the
//!    policy). The table rows are the source for EXPERIMENTS.md.
//!
//! With `--features obs` the run also writes the `cagra-metrics-v1`
//! snapshot (queue depth, batch-size histogram, time-in-queue, e2e
//! latency, rejections) to `$CAGRA_BENCH_JSON_DIR/serve_metrics.json`
//! — the artifact the CI lane uploads.
//!
//! Scale knobs: `CAGRA_BENCH_N` (base size), `CAGRA_SERVE_SMOKE_REQS`
//! (request count), `CAGRA_THREADS` (worker parallelism).

use bench::loadgen::{closed_loop, sweep_open_loop, LoadStats};
use bench::{cagra_index, deep_like};
use cagra::SearchParams;
use serve::{ServeConfig, Service};
use std::sync::Arc;
use std::time::Duration;

const K: usize = 10;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn print_stats(label: &str, stats: &LoadStats) {
    println!(
        "{label:<28} qps {:>8.0}  p50 {:>8.3} ms  p99 {:>8.3} ms  mean-batch {:>5.1}  \
         max-batch {:>3}  ok {:>5}  shed {:>4}  err {}",
        stats.qps(),
        stats.p50_ns() as f64 / 1e6,
        stats.p99_ns() as f64 / 1e6,
        stats.mean_batch(),
        stats.max_batch(),
        stats.completed,
        stats.rejected,
        stats.errors,
    );
}

fn main() {
    let (base, queries) = deep_like(256);
    let total = env_usize("CAGRA_SERVE_SMOKE_REQS", 2000);
    let params = SearchParams::for_k(K);

    // --- Leg 1: closed-loop smoke (the CI lane's hard assertions) ---
    let service =
        Arc::new(Service::start(cagra_index(&base), ServeConfig::new(params)).expect("start"));
    let smoke = closed_loop(&service, &queries, K, 8, total);
    print_stats("smoke/closed-loop x8", &smoke);
    assert_eq!(smoke.errors, 0, "serving smoke must complete without errors");
    assert_eq!(smoke.rejected, 0, "closed-loop smoke must not trip admission control");
    assert_eq!(smoke.completed as usize, total, "every request must be answered");
    assert!(smoke.qps() > 0.0, "serving smoke must report nonzero throughput");

    // --- Leg 2: batched serving vs batch-size-1 baseline ---
    let baseline = closed_loop(&service, &queries, K, 1, total / 4);
    print_stats("baseline/1 client (batch=1)", &baseline);
    let batched = closed_loop(&service, &queries, K, 16, total);
    print_stats("batched/16 clients", &batched);
    assert!(
        (batched.mean_batch() > baseline.mean_batch()) || batched.qps() > baseline.qps(),
        "concurrent clients should form batches or at least not lose throughput"
    );

    // --- Leg 3: open-loop offered-load sweep ---
    // Calibrate the sweep to this machine: fractions of the measured
    // closed-loop capacity, so the table shape (idle → loaded →
    // saturated) is stable across hosts.
    let capacity = smoke.qps().max(200.0);
    let rates: Vec<f64> = [0.1, 0.3, 0.6, 0.9, 1.2].iter().map(|f| f * capacity).collect();
    println!("\n| offered qps | served qps | mean batch | max batch | p50 ms | p99 ms | shed |");
    println!("|---|---|---|---|---|---|---|");
    let mut service_sweep = ServeConfig::new(params);
    service_sweep.max_wait = Duration::from_micros(200);
    let service =
        Arc::new(Service::start(cagra_index(&base), service_sweep).expect("start sweep service"));
    let sweep = sweep_open_loop(&service, &queries, K, &rates, (total / 4).max(200), 0x10ad);
    for (rate, stats) in &sweep {
        println!("{}", stats.row(&format!("{rate:.0}")));
    }
    let low = &sweep.first().expect("sweep ran").1;
    let high = &sweep.last().expect("sweep ran").1;
    assert!(
        high.mean_batch() >= low.mean_batch(),
        "realized batch size must not shrink as offered load rises \
         (low {:.2}, high {:.2})",
        low.mean_batch(),
        high.mean_batch()
    );

    // --- Metrics artifact (obs builds) ---
    #[cfg(feature = "obs")]
    {
        let dir = std::env::var("CAGRA_BENCH_JSON_DIR")
            .unwrap_or_else(|_| "target/bench-json".to_string());
        std::fs::create_dir_all(&dir).expect("create metrics dir");
        let path = format!("{dir}/serve_metrics.json");
        std::fs::write(&path, obs::metrics().snapshot().to_json()).expect("write metrics");
        println!("\nwrote {path}");
    }
}
