//! Fig. 3 bench: the cost of the optimization variants plus the
//! reachability analyses (2-hop, SCC) that the figure reports.

use bench::{deep_like, knn_lists, DEGREE};
use cagra::optimize::{optimize, OptimizeOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use distance::Metric;
use graph::stats::graph_stats;
use graph::AdjacencyGraph;

fn bench(c: &mut Criterion) {
    let (base, _) = deep_like(0);
    let knn = knn_lists(&base, 3 * DEGREE);
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for (label, reorder, reverse) in [
        ("knn_top_d", false, false),
        ("reorder_only", true, false),
        ("reverse_only", false, true),
        ("full", true, true),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let opts = OptimizeOptions { reorder, reverse, ..OptimizeOptions::new(DEGREE) };
                optimize(&knn, &base, Metric::SquaredL2, &opts)
            })
        });
    }
    let full = optimize(&knn, &base, Metric::SquaredL2, &OptimizeOptions::new(DEGREE));
    let adj = AdjacencyGraph::from_fixed(&full);
    g.bench_function("stats_2hop_and_scc", |b| b.iter(|| graph_stats(&adj, 4)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
