//! Fig. 13 bench: batch search per method (host-side functional cost;
//! the figure's simulated-GPU numbers come from `eval fig13`).

use bench::{cagra_index, clone_ds, deep_like, DEGREE};
use cagra::{CagraIndex, SearchParams};
use criterion::{criterion_group, criterion_main, Criterion};
use distance::Metric;
use ganns::{Ganns, GannsParams};
use ggnn::{Ggnn, GgnnParams};
use hnsw::{Hnsw, HnswParams};
use nssg::{Nssg, NssgParams};

fn bench(c: &mut Criterion) {
    let (base, queries) = deep_like(50);
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    let index = cagra_index(&base);
    let params = SearchParams::for_k(10);
    g.bench_function("cagra_fp32", |b| b.iter(|| index.search_batch(&queries, 10, &params)));

    let index16 =
        CagraIndex::from_parts(index.store().to_f16(), index.graph().clone(), Metric::SquaredL2);
    g.bench_function("cagra_fp16", |b| b.iter(|| index16.search_batch(&queries, 10, &params)));

    let (gg, _) = Ggnn::build(clone_ds(&base), Metric::SquaredL2, GgnnParams::new(DEGREE));
    g.bench_function("ggnn", |b| b.iter(|| gg.search_batch(&queries, 10, 64)));

    let (ga, _) = Ganns::build(clone_ds(&base), Metric::SquaredL2, GannsParams::new(DEGREE / 2));
    g.bench_function("ganns", |b| b.iter(|| ga.search_batch(&queries, 10, 64)));

    let h = Hnsw::build(clone_ds(&base), Metric::SquaredL2, HnswParams::new(DEGREE / 2));
    g.bench_function("hnsw", |b| b.iter(|| h.search_batch(&queries, 10, 64)));

    let (ns, _) = Nssg::build(clone_ds(&base), Metric::SquaredL2, NssgParams::new(DEGREE));
    g.bench_function("nssg", |b| b.iter(|| ns.search_batch(&queries, 10, 64)));

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
