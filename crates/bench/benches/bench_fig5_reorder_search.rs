//! Fig. 5 bench: search over rank- vs distance-optimized graphs.

use bench::{clone_ds, deep_like, DEGREE};
use cagra::build::GraphConfig;
use cagra::params::ReorderStrategy;
use cagra::{CagraIndex, SearchParams};
use criterion::{criterion_group, criterion_main, Criterion};
use distance::Metric;

fn bench(c: &mut Criterion) {
    let (base, queries) = deep_like(50);
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for (label, strategy) in
        [("rank", ReorderStrategy::RankBased), ("distance", ReorderStrategy::DistanceBased)]
    {
        let config = GraphConfig { strategy, ..GraphConfig::new(DEGREE) };
        let (index, _) = CagraIndex::build(clone_ds(&base), Metric::SquaredL2, &config);
        let params = SearchParams::for_k(10);
        g.bench_function(format!("batch_search/{label}"), |b| {
            b.iter(|| index.search_batch(&queries, 10, &params))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
