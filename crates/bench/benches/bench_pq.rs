//! PQ two-phase search benchmark + CI smoke (ISSUE 8).
//!
//! Not a Criterion timing target: the interesting quantities are the
//! recall the rerank phase buys back, the resident-memory compression,
//! and the throughput cost of the second phase — all functions of one
//! end-to-end run, so this binary drives a sharded PQ index directly
//! and asserts the smoke properties the CI `pq` lane relies on:
//!
//! 1. **Compression**: the PQ index must be resident at under a
//!    quarter of the f32 bytes per vector.
//! 2. **Recall floor**: two-phase recall@10 must reach 0.95 and must
//!    not fall below the single-phase (PQ-only) run.
//! 3. **Exactness**: reranked result distances are bit-identical to
//!    the full-precision metric over the original rows.
//!
//! With `--features obs` the run writes the `cagra-metrics-v1`
//! snapshot — rerank counters/histograms plus `bench.pq.*` summary
//! counters (n, recall, QPS, bytes per vector) — to
//! `$CAGRA_BENCH_JSON_DIR/BENCH_pq.json`, the committed perf artifact.
//!
//! Scale knobs: `CAGRA_BENCH_N` (base size), `CAGRA_BENCH_SHARDS`.

use bench::deep_like;
use cagra::build::GraphConfig;
use cagra::search::planner::Mode;
use cagra::{SearchParams, ShardedIndex};
use dataset::pq::PqConfig;
use dataset::VectorStore;
use distance::Metric;
use knn::brute::ground_truth;
use knn::topk::Neighbor;
use std::time::Instant;

const K: usize = 10;
const QUERIES: usize = 100;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn recall(results: &[Vec<Neighbor>], gt: &[Vec<u32>]) -> f64 {
    let mut hits = 0usize;
    for (got, want) in results.iter().zip(gt) {
        hits += got.iter().filter(|n| want.contains(&n.id)).count();
    }
    hits as f64 / (results.len() * K) as f64
}

fn search_all(
    index: &ShardedIndex<dataset::pq::PqStore>,
    queries: &dataset::Dataset,
    params: &SearchParams,
) -> (Vec<Vec<Neighbor>>, f64) {
    let t0 = Instant::now();
    let results = (0..queries.len())
        .map(|qi| index.search(queries.row(qi), K, params, Mode::SingleCta))
        .collect();
    (results, queries.len() as f64 / t0.elapsed().as_secs_f64())
}

fn main() {
    let (base, queries) = deep_like(QUERIES);
    let shards = env_usize("CAGRA_BENCH_SHARDS", 2);
    // Finest split with 4 dims per subspace: 24 bytes/vec on dim 96.
    let m = base.dim() / 4;
    let spill = std::env::temp_dir().join(format!("cagra_bench_pq_{}", std::process::id()));

    let t0 = Instant::now();
    let (index, _) = ShardedIndex::build_pq(
        &base,
        Metric::SquaredL2,
        &GraphConfig::new(bench::DEGREE),
        shards,
        &PqConfig::new(m),
        &spill,
    )
    .expect("PQ spill dir must be writable");
    let build_s = t0.elapsed().as_secs_f64();
    assert!(
        index.bytes_per_vector() * 4 < base.bytes_per_vector(),
        "PQ index resident {} B/vec is not under a quarter of f32 {} B/vec",
        index.bytes_per_vector(),
        base.bytes_per_vector()
    );

    let gt = ground_truth(&base, Metric::SquaredL2, &queries, K);
    let mut params = SearchParams::for_k(K);
    params.itopk = 128;
    let (single, qps_single) = search_all(&index, &queries, &params);
    params.rerank_depth = 64;
    let (two_phase, qps_two) = search_all(&index, &queries, &params);

    let r1 = recall(&single, &gt);
    let r2 = recall(&two_phase, &gt);
    println!(
        "pq smoke: n {} shards {} m {}  build {build_s:.1}s  resident {} B/vec (f32 {})",
        base.len(),
        index.num_shards(),
        m,
        index.bytes_per_vector(),
        base.bytes_per_vector()
    );
    println!("  single-phase  recall@{K} {r1:.4}  qps {qps_single:.0}");
    println!("  two-phase     recall@{K} {r2:.4}  qps {qps_two:.0}  (rerank depth 64)");

    // Reranked distances are the exact metric over the original rows.
    for (qi, got) in two_phase.iter().enumerate() {
        for n in got {
            let want = Metric::SquaredL2.distance(queries.row(qi), base.row(n.id as usize));
            assert_eq!(n.dist, want, "query {qi} id {} not exactly reranked", n.id);
        }
    }
    assert!(r2 >= r1, "rerank must not lose recall: {r2} vs single-phase {r1}");
    assert!(r2 >= 0.95, "two-phase recall@{K} {r2} below the 0.95 smoke floor");

    // --- Metrics artifact (obs builds) ---
    #[cfg(feature = "obs")]
    {
        use obs::snapshot::CounterSnapshot;
        let mut snap = obs::metrics().snapshot();
        let permille = |x: f64| (x * 1000.0).round() as u64;
        for (name, value) in [
            ("bench.pq.n", base.len() as u64),
            ("bench.pq.shards", index.num_shards() as u64),
            ("bench.pq.m", m as u64),
            ("bench.pq.itopk", params.itopk as u64),
            ("bench.pq.rerank_depth", params.rerank_depth as u64),
            ("bench.pq.resident_bytes_per_vector", index.bytes_per_vector() as u64),
            ("bench.pq.f32_bytes_per_vector", base.bytes_per_vector() as u64),
            ("bench.pq.recall_at_10_permille_single", permille(r1)),
            ("bench.pq.recall_at_10_permille_two_phase", permille(r2)),
            ("bench.pq.qps_single", qps_single.round() as u64),
            ("bench.pq.qps_two_phase", qps_two.round() as u64),
        ] {
            snap.counters.push(CounterSnapshot { name: name.to_string(), value });
        }
        let dir = std::env::var("CAGRA_BENCH_JSON_DIR")
            .unwrap_or_else(|_| "target/bench-json".to_string());
        std::fs::create_dir_all(&dir).expect("create metrics dir");
        let path = format!("{dir}/BENCH_pq.json");
        std::fs::write(&path, snap.to_json()).expect("write metrics");
        println!("\nwrote {path}");
    }

    std::fs::remove_dir_all(&spill).ok();
}
