//! Fig. 9 bench: functional search cost, forgettable vs standard hash.

use bench::{cagra_index, deep_like};
use cagra::{HashPolicy, SearchParams};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let (base, queries) = deep_like(50);
    let index = cagra_index(&base);
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for (label, hash) in [
        ("standard", HashPolicy::Standard),
        ("forgettable", HashPolicy::Forgettable { bits: 10, reset_interval: 1 }),
        ("forgettable_interval4", HashPolicy::Forgettable { bits: 10, reset_interval: 4 }),
    ] {
        let mut params = SearchParams::for_k(10);
        params.hash = hash;
        g.bench_function(label, |b| b.iter(|| index.search_batch(&queries, 10, &params)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
