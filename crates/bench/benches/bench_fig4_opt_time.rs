//! Fig. 4 bench: rank-based vs distance-based reordering time.

use bench::{deep_like, glove_like, knn_lists, DEGREE};
use cagra::optimize::{optimize, OptimizeOptions};
use cagra::params::ReorderStrategy;
use criterion::{criterion_group, criterion_main, Criterion};
use distance::Metric;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for (name, (base, _)) in [("deep", deep_like(0)), ("glove", glove_like(0))] {
        let knn = knn_lists(&base, 2 * DEGREE);
        for (label, strategy) in
            [("rank", ReorderStrategy::RankBased), ("distance", ReorderStrategy::DistanceBased)]
        {
            g.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    let opts = OptimizeOptions { strategy, ..OptimizeOptions::new(DEGREE) };
                    optimize(&knn, &base, Metric::SquaredL2, &opts)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
