//! Ablation: the intermediate degree `d_init` (paper uses 2d or 3d).
//! Larger d_init costs more NN-Descent time but gives the optimizer a
//! richer candidate pool.

use bench::{deep_like, DEGREE};
use cagra::build::{build_graph, GraphConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use distance::Metric;

fn bench(c: &mut Criterion) {
    let (base, _) = deep_like(0);
    let mut g = c.benchmark_group("ablation_dinit");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for mult in [2usize, 3] {
        g.bench_function(format!("dinit_{mult}d"), |b| {
            b.iter(|| {
                let config =
                    GraphConfig { intermediate_degree: mult * DEGREE, ..GraphConfig::new(DEGREE) };
                build_graph(&base, Metric::SquaredL2, &config)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
