//! Fig. 12 bench: NSSG's beam search over the CAGRA graph vs the NSSG
//! graph (single query, single thread — the paper's protocol).

use bench::{cagra_index, clone_ds, deep_like, DEGREE};
use criterion::{criterion_group, criterion_main, Criterion};
use distance::Metric;
use nssg::{beam_search, Nssg, NssgParams};

fn bench(c: &mut Criterion) {
    let (base, queries) = deep_like(10);
    let index = cagra_index(&base);
    let cagra_adj: Vec<Vec<u32>> =
        (0..index.graph().len()).map(|v| index.graph().neighbors(v).to_vec()).collect();
    let (nssg_index, _) = Nssg::build(clone_ds(&base), Metric::SquaredL2, NssgParams::new(DEGREE));

    let mut g = c.benchmark_group("fig12");
    for (label, adj) in
        [("cagra_graph", &cagra_adj), ("nssg_graph", &nssg_index.adjacency().to_vec())]
    {
        g.bench_function(label, |b| {
            b.iter(|| beam_search(adj, &base, Metric::SquaredL2, queries.row(0), 10, 64, 8, 1))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
