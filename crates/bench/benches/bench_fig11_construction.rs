//! Fig. 11 bench: construction time per method.

use bench::{clone_ds, deep_like, DEGREE};
use cagra::build::{build_graph, GraphConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use distance::Metric;
use ganns::{Ganns, GannsParams};
use ggnn::{Ggnn, GgnnParams};
use hnsw::{Hnsw, HnswParams};
use nssg::{Nssg, NssgParams};

fn bench(c: &mut Criterion) {
    let (base, _) = deep_like(0);
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("cagra", |b| {
        b.iter(|| build_graph(&base, Metric::SquaredL2, &GraphConfig::new(DEGREE)))
    });
    g.bench_function("nssg", |b| {
        b.iter(|| Nssg::build(clone_ds(&base), Metric::SquaredL2, NssgParams::new(DEGREE)))
    });
    g.bench_function("hnsw", |b| {
        b.iter(|| Hnsw::build(clone_ds(&base), Metric::SquaredL2, HnswParams::new(DEGREE / 2)))
    });
    g.bench_function("ggnn", |b| {
        b.iter(|| Ggnn::build(clone_ds(&base), Metric::SquaredL2, GgnnParams::new(DEGREE)))
    });
    g.bench_function("ganns", |b| {
        b.iter(|| Ganns::build(clone_ds(&base), Metric::SquaredL2, GannsParams::new(DEGREE / 2)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
