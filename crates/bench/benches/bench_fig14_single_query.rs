//! Fig. 14 bench: single-query latency, CAGRA multi-CTA vs HNSW.

use bench::{cagra_index, clone_ds, deep_like, DEGREE};
use cagra::search::planner::Mode;
use cagra::SearchParams;
use criterion::{criterion_group, criterion_main, Criterion};
use distance::Metric;
use hnsw::{Hnsw, HnswParams};

fn bench(c: &mut Criterion) {
    let (base, queries) = deep_like(5);
    let index = cagra_index(&base);
    let h = Hnsw::build(clone_ds(&base), Metric::SquaredL2, HnswParams::new(DEGREE / 2));
    let params = SearchParams::for_k(10);

    let mut g = c.benchmark_group("fig14");
    g.bench_function("cagra_multi_cta", |b| {
        b.iter(|| index.search_mode(queries.row(0), 10, &params, Mode::MultiCta))
    });
    g.bench_function("hnsw", |b| b.iter(|| h.search(queries.row(0), 10, 64)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
