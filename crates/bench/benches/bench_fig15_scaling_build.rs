//! Fig. 15 bench: construction time vs dataset size, CAGRA vs HNSW.

use bench::DEGREE;
use cagra::build::{build_graph, GraphConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataset::synth::{Family, SynthSpec};
use distance::Metric;
use hnsw::{Hnsw, HnswParams};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [500usize, 2000] {
        let (base, _) =
            SynthSpec { dim: 96, n, queries: 0, family: Family::Gaussian, seed: 1 }.generate();
        g.bench_with_input(BenchmarkId::new("cagra", n), &base, |b, base| {
            b.iter(|| build_graph(base, Metric::SquaredL2, &GraphConfig::new(DEGREE)))
        });
        g.bench_with_input(BenchmarkId::new("hnsw", n), &base, |b, base| {
            b.iter(|| {
                let clone = dataset::Dataset::from_flat(base.as_flat().to_vec(), 96);
                Hnsw::build(clone, Metric::SquaredL2, HnswParams::new(DEGREE / 2))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
