//! Fig. 10 bench: single- vs multi-CTA functional search cost, single
//! query and batch.

use bench::{cagra_index, deep_like};
use cagra::search::planner::Mode;
use cagra::{HashPolicy, SearchParams};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let (base, queries) = deep_like(50);
    let index = cagra_index(&base);
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for (label, mode, hash) in [
        ("single_cta", Mode::SingleCta, HashPolicy::Forgettable { bits: 11, reset_interval: 1 }),
        ("multi_cta", Mode::MultiCta, HashPolicy::Standard),
    ] {
        let mut params = SearchParams::for_k(10);
        params.hash = hash;
        g.bench_function(format!("{label}/one_query"), |b| {
            b.iter(|| index.search_mode(queries.row(0), 10, &params, mode))
        });
        g.bench_function(format!("{label}/batch"), |b| {
            b.iter(|| index.search_batch_mode(&queries, 10, &params, mode))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
