//! Point-in-time metric export: JSON (machine) and table (human).
//!
//! The JSON writer is hand-rolled because the workspace's `serde` is
//! an API-surface shim with no runtime (same approach as the criterion
//! shim's report writer). Output is deterministic: fixed field order,
//! metrics in registry declaration order.

/// One counter at a point in time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// One span at a point in time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    pub mean_ns: u64,
    pub max_ns: u64,
}

/// One histogram at a point in time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub mean: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

/// A copy of every registered metric, ready for export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Whether the producing binary compiled the `enabled` feature in.
    /// `false` means every list below is present but all-zero.
    pub enabled: bool,
    pub counters: Vec<CounterSnapshot>,
    pub spans: Vec<SpanSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl MetricsSnapshot {
    /// Serialize as a self-describing JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"cagra-metrics-v1\",\n  \"enabled\": ");
        out.push_str(if self.enabled { "true" } else { "false" });
        out.push_str(",\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            push_json_str(&mut out, &c.name);
            out.push_str(&format!(", \"value\": {}}}", c.value));
        }
        out.push_str("\n  ],\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            push_json_str(&mut out, &s.name);
            out.push_str(&format!(
                ", \"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}}}",
                s.count, s.total_ns, s.mean_ns, s.max_ns
            ));
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            push_json_str(&mut out, &h.name);
            out.push_str(&format!(
                ", \"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \
                 \"p99\": {}, \"max\": {}}}",
                h.count, h.sum, h.mean, h.p50, h.p90, h.p99, h.max
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Render as an aligned human-readable table. Metrics that never
    /// recorded are skipped here (unlike the JSON, which keeps them).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "metrics snapshot (obs {})\n",
            if self.enabled { "enabled" } else { "disabled — all zero" }
        ));
        let live_spans: Vec<_> = self.spans.iter().filter(|s| s.count > 0).collect();
        if !live_spans.is_empty() {
            out.push_str(&format!(
                "\n  {:<26} {:>8} {:>12} {:>12} {:>12}\n",
                "span", "count", "total_ms", "mean_us", "max_us"
            ));
            for s in live_spans {
                out.push_str(&format!(
                    "  {:<26} {:>8} {:>12.3} {:>12.1} {:>12.1}\n",
                    s.name,
                    s.count,
                    s.total_ns as f64 / 1e6,
                    s.mean_ns as f64 / 1e3,
                    s.max_ns as f64 / 1e3,
                ));
            }
        }
        let live_hists: Vec<_> = self.histograms.iter().filter(|h| h.count > 0).collect();
        if !live_hists.is_empty() {
            out.push_str(&format!(
                "\n  {:<34} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "histogram", "count", "mean", "p50", "p90", "p99", "max"
            ));
            for h in live_hists {
                out.push_str(&format!(
                    "  {:<34} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                    h.name, h.count, h.mean, h.p50, h.p90, h.p99, h.max
                ));
            }
        }
        let live_counters: Vec<_> = self.counters.iter().filter(|c| c.value > 0).collect();
        if !live_counters.is_empty() {
            out.push_str(&format!("\n  {:<34} {:>16}\n", "counter", "value"));
            for c in live_counters {
                out.push_str(&format!("  {:<34} {:>16}\n", c.name, c.value));
            }
        }
        if !self.enabled {
            out.push_str("\n  (build without the `obs` feature: nothing was recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            enabled: true,
            counters: vec![
                CounterSnapshot { name: "search.queries".into(), value: 64 },
                CounterSnapshot { name: "sim.cycles_hash".into(), value: 0 },
            ],
            spans: vec![SpanSnapshot {
                name: "build.reorder".into(),
                count: 1,
                total_ns: 1_500_000,
                mean_ns: 1_500_000,
                max_ns: 1_500_000,
            }],
            histograms: vec![HistogramSnapshot {
                name: "search.iterations".into(),
                count: 64,
                sum: 1280,
                mean: 20,
                p50: 19,
                p90: 27,
                p99: 31,
                max: 31,
            }],
        }
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let j = sample().to_json();
        assert!(j.contains("\"schema\": \"cagra-metrics-v1\""));
        assert!(j.contains("\"enabled\": true"));
        assert!(j.contains("{\"name\": \"search.queries\", \"value\": 64}"));
        assert!(j.contains("\"total_ns\": 1500000"));
        assert!(j.contains("\"p99\": 31"));
        // Balanced braces/brackets (cheap structural check, no parser
        // in the workspace).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_escapes_strings() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn render_skips_zero_metrics() {
        let table = sample().render();
        assert!(table.contains("build.reorder"));
        assert!(table.contains("search.iterations"));
        assert!(table.contains("search.queries"));
        assert!(!table.contains("sim.cycles_hash"), "zero counter must be hidden in the table");
    }

    #[test]
    fn disabled_snapshot_renders_notice() {
        let snap =
            MetricsSnapshot { enabled: false, counters: vec![], spans: vec![], histograms: vec![] };
        assert!(snap.render().contains("disabled"));
        assert!(snap.to_json().contains("\"enabled\": false"));
    }
}
