//! The global, statically-allocated metric registry.
//!
//! One typed struct rather than a name-keyed map: every metric is a
//! plain field, so a record is a direct atomic op with no lookup, no
//! locking, and no allocation — the registry is `const`-constructed
//! into a `static`. Names (as exported in snapshots) are dotted
//! `layer.metric`, e.g. `build.nn_join` or `search.latency_ns`.

use crate::hist::Histogram;
use crate::snapshot::{CounterSnapshot, HistogramSnapshot, MetricsSnapshot, SpanSnapshot};
use crate::span::Span;
use crate::Counter;

/// Every metric the workspace records, grouped by layer.
#[derive(Debug, Default)]
pub struct Metrics {
    // --- build: per-stage construction spans (tentpole layer 1) ---
    /// NN-Descent random-graph initialization.
    pub build_nn_init: Span,
    /// NN-Descent neighbor sampling (phase 1 of each iteration).
    pub build_nn_sample: Span,
    /// NN-Descent reverse-edge scatter (phase 2).
    pub build_nn_scatter: Span,
    /// NN-Descent local join (phase 3).
    pub build_nn_join: Span,
    /// Rank-based reordering pass.
    pub build_reorder: Span,
    /// Reverse-edge derivation pass.
    pub build_reverse: Span,
    /// Forward/reverse merge pass.
    pub build_merge: Span,
    /// Whole-graph builds completed.
    pub build_graphs: Counter,
    /// NN-Descent iterations executed.
    pub build_nn_iterations: Counter,
    /// Distance computations during NN-Descent.
    pub build_nn_distances: Counter,
    /// Distance computations during graph optimization.
    pub build_opt_distances: Counter,

    // --- search: per-query aggregation (tentpole layer 2) ---
    /// Queries answered.
    pub search_queries: Counter,
    /// Batches answered.
    pub search_batches: Counter,
    /// Per-query wall latency (ns).
    pub search_latency_ns: Histogram,
    /// Traversal iterations per query.
    pub search_iterations: Histogram,
    /// Distance computations per query.
    pub search_distances: Histogram,
    /// Hash probe steps per traversal iteration.
    pub search_probe_len: Histogram,
    /// Visited-table occupancy per query, in tenths of a percent
    /// (0..=1000) so the log buckets resolve the low end.
    pub search_hash_occupancy_permille: Histogram,
    /// Top-M sort input length per iteration.
    pub search_sort_len: Histogram,
    /// Queries that ran the two-phase exact rerank pass.
    pub search_rerank_queries: Counter,
    /// Candidates the rerank promoted into the final top-k that the
    /// approximate traversal had ranked below k.
    pub search_rerank_promoted: Counter,
    /// Effective rerank depth per reranked query (candidates exactly
    /// re-scored).
    pub search_rerank_depth: Histogram,
    /// Wall time of the rerank pass per query (ns).
    pub search_rerank_latency_ns: Histogram,

    // --- serve: online query service (micro-batching front door) ---
    /// Requests admitted to the serving queue.
    pub serve_requests: Counter,
    /// Requests shed by admission control (typed `Overloaded`).
    pub serve_rejected: Counter,
    /// Requests rejected at admission for a malformed shape.
    pub serve_invalid: Counter,
    /// Micro-batches dispatched.
    pub serve_batches: Counter,
    /// Realized batch size per dispatch.
    pub serve_batch_size: Histogram,
    /// Queue depth observed at each admission.
    pub serve_queue_depth: Histogram,
    /// Time-in-queue per request (ns), admission to dispatch.
    pub serve_queue_wait_ns: Histogram,
    /// End-to-end latency per request (ns), admission to response send.
    pub serve_e2e_latency_ns: Histogram,

    // --- dyn: dynamic index (epoch-swapped mutable wrapper) ---
    /// Vectors inserted into the delta segment.
    pub dyn_inserts: Counter,
    /// Tombstones recorded (successful deletes).
    pub dyn_deletes: Counter,
    /// Snapshot publications (every insert/delete/compaction swap).
    pub dyn_epoch_swaps: Counter,
    /// Background/manual compactions completed.
    pub dyn_compactions: Counter,
    /// Delta-segment size observed at each insert.
    pub dyn_delta_size: Histogram,
    /// Tombstone ratio (deleted / total rows) at each delete, in
    /// permille so the log buckets resolve the low end.
    pub dyn_tombstone_permille: Histogram,
    /// Wall time of each compaction (ns), snapshot to publish.
    pub dyn_compaction_ns: Histogram,

    // --- sim: cost-model cycle attribution (tentpole layer 3) ---
    /// Simulated batches costed.
    pub sim_batches: Counter,
    /// Simulated cycles in the top-M sort phase.
    pub sim_cycles_sort: Counter,
    /// Simulated cycles in parent selection / fixed iteration overhead.
    pub sim_cycles_parent_select: Counter,
    /// Simulated cycles fetching neighbor lists (expansion).
    pub sim_cycles_expand: Counter,
    /// Simulated cycles computing distances.
    pub sim_cycles_distance: Counter,
    /// Simulated cycles probing/updating the visited hash.
    pub sim_cycles_hash: Counter,
    /// Simulated 128-bit transactions gathering init vector rows.
    pub sim_tx_init: Counter,
    /// Simulated 128-bit transactions gathering adjacency rows.
    pub sim_tx_expand: Counter,
    /// Simulated 128-bit transactions gathering scored vector rows.
    pub sim_tx_distance: Counter,
}

impl Metrics {
    const fn new() -> Self {
        Metrics {
            build_nn_init: Span::new(),
            build_nn_sample: Span::new(),
            build_nn_scatter: Span::new(),
            build_nn_join: Span::new(),
            build_reorder: Span::new(),
            build_reverse: Span::new(),
            build_merge: Span::new(),
            build_graphs: Counter::new(),
            build_nn_iterations: Counter::new(),
            build_nn_distances: Counter::new(),
            build_opt_distances: Counter::new(),
            search_queries: Counter::new(),
            search_batches: Counter::new(),
            serve_requests: Counter::new(),
            serve_rejected: Counter::new(),
            serve_invalid: Counter::new(),
            serve_batches: Counter::new(),
            serve_batch_size: Histogram::new(),
            serve_queue_depth: Histogram::new(),
            serve_queue_wait_ns: Histogram::new(),
            serve_e2e_latency_ns: Histogram::new(),
            dyn_inserts: Counter::new(),
            dyn_deletes: Counter::new(),
            dyn_epoch_swaps: Counter::new(),
            dyn_compactions: Counter::new(),
            dyn_delta_size: Histogram::new(),
            dyn_tombstone_permille: Histogram::new(),
            dyn_compaction_ns: Histogram::new(),
            search_latency_ns: Histogram::new(),
            search_iterations: Histogram::new(),
            search_distances: Histogram::new(),
            search_probe_len: Histogram::new(),
            search_hash_occupancy_permille: Histogram::new(),
            search_sort_len: Histogram::new(),
            search_rerank_queries: Counter::new(),
            search_rerank_promoted: Counter::new(),
            search_rerank_depth: Histogram::new(),
            search_rerank_latency_ns: Histogram::new(),
            sim_batches: Counter::new(),
            sim_cycles_sort: Counter::new(),
            sim_cycles_parent_select: Counter::new(),
            sim_cycles_expand: Counter::new(),
            sim_cycles_distance: Counter::new(),
            sim_cycles_hash: Counter::new(),
            sim_tx_init: Counter::new(),
            sim_tx_expand: Counter::new(),
            sim_tx_distance: Counter::new(),
        }
    }

    /// Every counter with its snapshot name, in export order.
    fn counters(&self) -> [(&'static str, &Counter); 24] {
        [
            ("build.graphs", &self.build_graphs),
            ("build.nn_iterations", &self.build_nn_iterations),
            ("build.nn_distances", &self.build_nn_distances),
            ("build.opt_distances", &self.build_opt_distances),
            ("search.queries", &self.search_queries),
            ("search.batches", &self.search_batches),
            ("search.rerank_queries", &self.search_rerank_queries),
            ("search.rerank_promoted", &self.search_rerank_promoted),
            ("serve.requests", &self.serve_requests),
            ("serve.rejected", &self.serve_rejected),
            ("serve.invalid", &self.serve_invalid),
            ("serve.batches", &self.serve_batches),
            ("dyn.inserts", &self.dyn_inserts),
            ("dyn.deletes", &self.dyn_deletes),
            ("dyn.epoch_swaps", &self.dyn_epoch_swaps),
            ("dyn.compactions", &self.dyn_compactions),
            ("sim.batches", &self.sim_batches),
            ("sim.cycles_sort", &self.sim_cycles_sort),
            ("sim.cycles_parent_select", &self.sim_cycles_parent_select),
            ("sim.cycles_expand", &self.sim_cycles_expand),
            ("sim.cycles_distance", &self.sim_cycles_distance),
            ("sim.tx_init", &self.sim_tx_init),
            ("sim.tx_expand", &self.sim_tx_expand),
            ("sim.tx_distance", &self.sim_tx_distance),
        ]
        // `sim.cycles_hash` appended below: arrays are fixed-size, and
        // keeping the list in one place beats a second table.
    }

    /// Every span with its snapshot name, in export order.
    fn spans(&self) -> [(&'static str, &Span); 7] {
        [
            ("build.nn_init", &self.build_nn_init),
            ("build.nn_sample", &self.build_nn_sample),
            ("build.nn_scatter", &self.build_nn_scatter),
            ("build.nn_join", &self.build_nn_join),
            ("build.reorder", &self.build_reorder),
            ("build.reverse", &self.build_reverse),
            ("build.merge", &self.build_merge),
        ]
    }

    /// Every histogram with its snapshot name, in export order.
    fn histograms(&self) -> [(&'static str, &Histogram); 15] {
        [
            ("search.latency_ns", &self.search_latency_ns),
            ("search.iterations", &self.search_iterations),
            ("search.distances", &self.search_distances),
            ("search.probe_len", &self.search_probe_len),
            ("search.hash_occupancy_permille", &self.search_hash_occupancy_permille),
            ("search.sort_len", &self.search_sort_len),
            ("search.rerank_depth", &self.search_rerank_depth),
            ("search.rerank_latency_ns", &self.search_rerank_latency_ns),
            ("serve.batch_size", &self.serve_batch_size),
            ("serve.queue_depth", &self.serve_queue_depth),
            ("serve.queue_wait_ns", &self.serve_queue_wait_ns),
            ("serve.e2e_latency_ns", &self.serve_e2e_latency_ns),
            ("dyn.delta_size", &self.dyn_delta_size),
            ("dyn.tombstone_permille", &self.dyn_tombstone_permille),
            ("dyn.compaction_ns", &self.dyn_compaction_ns),
        ]
    }

    /// Point-in-time copy of every metric. Metrics with zero count are
    /// kept (a zero is information: the stage never ran).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters()
            .iter()
            .map(|(name, c)| CounterSnapshot { name: (*name).to_string(), value: c.get() })
            .collect();
        counters.push(CounterSnapshot {
            name: "sim.cycles_hash".to_string(),
            value: self.sim_cycles_hash.get(),
        });
        let spans = self
            .spans()
            .iter()
            .map(|(name, s)| SpanSnapshot {
                name: (*name).to_string(),
                count: s.count(),
                total_ns: s.total_ns(),
                mean_ns: s.mean_ns(),
                max_ns: s.max_ns(),
            })
            .collect();
        let histograms = self
            .histograms()
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: (*name).to_string(),
                count: h.count(),
                sum: h.sum(),
                mean: h.mean(),
                p50: h.quantile(0.5),
                p90: h.quantile(0.9),
                p99: h.quantile(0.99),
                max: h.max(),
            })
            .collect();
        MetricsSnapshot { enabled: crate::compiled_in(), counters, spans, histograms }
    }

    /// Zero every metric (test/bench isolation).
    pub fn reset(&self) {
        let mut counters: Vec<&Counter> = self.counters().iter().map(|(_, c)| *c).collect();
        counters.push(&self.sim_cycles_hash);
        for c in counters {
            c.reset();
        }
        for (_, s) in self.spans() {
            s.reset();
        }
        for (_, h) in self.histograms() {
            h.reset();
        }
    }
}

static METRICS: Metrics = Metrics::new();

/// The process-wide registry all layers record into.
#[inline]
pub fn metrics() -> &'static Metrics {
    &METRICS
}

/// Zero every global metric.
pub fn reset() {
    METRICS.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_covers_every_field_and_reset_zeroes() {
        let _g = crate::test_lock();
        reset();
        let m = metrics();
        m.build_graphs.inc();
        m.search_latency_ns.record(1234);
        m.build_nn_join.record_ns(999);
        m.sim_cycles_hash.add(7);
        m.sim_tx_expand.add(3);
        m.serve_batch_size.record(4);
        let snap = m.snapshot();
        assert_eq!(snap.enabled, crate::compiled_in());
        assert_eq!(snap.counters.len(), 25);
        assert_eq!(snap.spans.len(), 7);
        assert_eq!(snap.histograms.len(), 15);
        let get = |n: &str| snap.counters.iter().find(|c| c.name == n).unwrap().value;
        if crate::compiled_in() {
            assert_eq!(get("build.graphs"), 1);
            assert_eq!(get("sim.cycles_hash"), 7);
            assert_eq!(get("sim.tx_expand"), 3);
            let lat = snap.histograms.iter().find(|h| h.name == "search.latency_ns").unwrap();
            assert_eq!(lat.count, 1);
            assert_eq!(lat.max, 1234);
            let join = snap.spans.iter().find(|s| s.name == "build.nn_join").unwrap();
            assert_eq!(join.total_ns, 999);
            let bs = snap.histograms.iter().find(|h| h.name == "serve.batch_size").unwrap();
            assert_eq!((bs.count, bs.max), (1, 4));
        } else {
            assert_eq!(get("build.graphs"), 0);
        }
        reset();
        let snap = m.snapshot();
        assert!(snap.counters.iter().all(|c| c.value == 0));
        assert!(snap.histograms.iter().all(|h| h.count == 0));
        assert!(snap.spans.iter().all(|s| s.count == 0));
    }
}
