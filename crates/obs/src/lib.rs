//! Lightweight observability: counters, histograms, spans, snapshots.
//!
//! The paper's headline claims are throughput/latency *distributions*
//! (QPS at fixed recall, per-stage build cost, per-iteration traversal
//! statistics), so the repro needs always-on aggregation — not just
//! per-query traces. This crate provides the primitives and a global,
//! statically-allocated [`Metrics`] registry the other crates record
//! into:
//!
//! * [`Counter`] — a relaxed atomic u64.
//! * [`Histogram`] — log-bucketed (4 sub-buckets per power of two,
//!   ~12.5% value resolution) with p50/p90/p99/max readout.
//! * [`Span`] — cumulative wall-clock timing of a named stage, with a
//!   scoped-guard API ([`Span::start`]) and a closure API
//!   ([`Span::time`]).
//! * [`MetricsSnapshot`] — a point-in-time copy of every metric,
//!   renderable as an aligned text table or machine-readable JSON
//!   (hand-rolled writer; the workspace has no serde runtime).
//!
//! # Feature gating
//!
//! Everything compiles to a **true no-op unless the `enabled` feature
//! is on**: the structs carry no fields, the record methods are empty
//! inline functions, and no `Instant::now` is ever called — zero
//! overhead, zero size. Downstream crates re-export the switch as
//! their own `obs` feature (e.g. `cagra/obs`), so a production build
//! pays nothing unless observability is asked for. With the feature
//! on, a runtime kill-switch ([`set_recording`]) allows bit-identical
//! A/B runs inside one binary; recording never feeds back into any
//! algorithm, so results are identical either way.

pub mod hist;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use hist::Histogram;
pub use registry::{metrics, reset, Metrics};
pub use snapshot::{CounterSnapshot, HistogramSnapshot, MetricsSnapshot, SpanSnapshot};
pub use span::{Span, SpanGuard, Stopwatch};

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// True when the crate was compiled with the `enabled` feature.
pub const fn compiled_in() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Runtime kill-switch: when off, every record call returns without
/// touching state. Always `false` in a build without the `enabled`
/// feature.
#[inline]
pub fn recording() -> bool {
    #[cfg(feature = "enabled")]
    {
        RECORDING.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Enable or disable recording at runtime (no-op when the `enabled`
/// feature is off). Used by the parity tests to prove instrumentation
/// never perturbs search results.
pub fn set_recording(on: bool) {
    #[cfg(feature = "enabled")]
    RECORDING.store(on, Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// A monotonically increasing event count.
///
/// Zero-sized and inert without the `enabled` feature.
#[derive(Debug, Default)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (const — usable in statics).
    pub const fn new() -> Self {
        Counter {
            #[cfg(feature = "enabled")]
            value: AtomicU64::new(0),
        }
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        if recording() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 in a disabled build).
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Reset to zero.
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Serializes tests that record or toggle the global recording flag
/// (the flag is process-wide, and `cargo test` runs in parallel).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_kill_switch_stops_recording() {
        let _g = test_lock();
        let c = Counter::new();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), if compiled_in() { 4 } else { 0 });
        c.reset();
        set_recording(false);
        c.add(10);
        assert_eq!(c.get(), 0, "recording off must drop the add");
        set_recording(true);
        c.add(10);
        assert_eq!(c.get(), if compiled_in() { 10 } else { 0 });
    }

    #[test]
    fn disabled_build_is_zero_sized() {
        if !compiled_in() {
            assert_eq!(std::mem::size_of::<Counter>(), 0);
            assert_eq!(std::mem::size_of::<Histogram>(), 0);
            assert_eq!(std::mem::size_of::<Span>(), 0);
        }
    }
}
