//! Scoped wall-clock timing of named stages.
//!
//! A [`Span`] accumulates total/max duration and an invocation count
//! for one stage (e.g. `build.reorder`). Timing starts with
//! [`Span::start`], whose guard records on drop, or the closure form
//! [`Span::time`]. In a disabled build no `Instant::now` is ever
//! called and the guard is zero-sized.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Cumulative timing for one named stage.
///
/// Zero-sized and inert without the `enabled` feature.
#[derive(Debug, Default)]
pub struct Span {
    #[cfg(feature = "enabled")]
    count: AtomicU64,
    #[cfg(feature = "enabled")]
    total_ns: AtomicU64,
    #[cfg(feature = "enabled")]
    max_ns: AtomicU64,
}

impl Span {
    /// An empty span (const — usable in statics).
    pub const fn new() -> Self {
        #[cfg(feature = "enabled")]
        {
            Span {
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            Span {}
        }
    }

    /// Begin timing; the returned guard records on drop.
    #[inline]
    pub fn start(&self) -> SpanGuard<'_> {
        SpanGuard {
            #[cfg(feature = "enabled")]
            span: self,
            #[cfg(feature = "enabled")]
            begin: if crate::recording() { Some(Instant::now()) } else { None },
            #[cfg(not(feature = "enabled"))]
            _marker: std::marker::PhantomData,
        }
    }

    /// Time a closure, returning its value.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.start();
        f()
    }

    /// Record an externally measured duration in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        #[cfg(feature = "enabled")]
        if crate::recording() {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.total_ns.fetch_add(ns, Ordering::Relaxed);
            self.max_ns.fetch_max(ns, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = ns;
    }

    /// Record an externally measured [`std::time::Duration`].
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        #[cfg(feature = "enabled")]
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        #[cfg(not(feature = "enabled"))]
        let _ = d;
    }

    /// Number of recorded invocations (0 in a disabled build).
    pub fn count(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.count.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Total recorded nanoseconds.
    pub fn total_ns(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.total_ns.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Longest single invocation in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.max_ns.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Mean nanoseconds per invocation (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns().checked_div(self.count()).unwrap_or(0)
    }

    /// Forget all recordings.
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        {
            self.count.store(0, Ordering::Relaxed);
            self.total_ns.store(0, Ordering::Relaxed);
            self.max_ns.store(0, Ordering::Relaxed);
        }
    }
}

/// Records the elapsed time into its [`Span`] when dropped.
#[must_use = "the span records when this guard is dropped"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    #[cfg(feature = "enabled")]
    span: &'a Span,
    #[cfg(feature = "enabled")]
    begin: Option<Instant>,
    #[cfg(not(feature = "enabled"))]
    _marker: std::marker::PhantomData<&'a Span>,
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(begin) = self.begin {
            let ns = u64::try_from(begin.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.span.count.fetch_add(1, Ordering::Relaxed);
            self.span.total_ns.fetch_add(ns, Ordering::Relaxed);
            self.span.max_ns.fetch_max(ns, Ordering::Relaxed);
        }
    }
}

/// A standalone timer for feeding histograms (e.g. per-query latency):
/// starts at construction, reads out once. Never calls `Instant::now`
/// in a disabled build or while recording is off.
#[derive(Debug)]
pub struct Stopwatch {
    #[cfg(feature = "enabled")]
    begin: Option<Instant>,
}

impl Stopwatch {
    /// Start timing now (a no-op unless recording).
    #[inline]
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        Stopwatch {
            #[cfg(feature = "enabled")]
            begin: if crate::recording() { Some(Instant::now()) } else { None },
        }
    }

    /// Nanoseconds since [`Stopwatch::start`]; 0 when not recording.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.begin.map_or(0, |b| u64::try_from(b.elapsed().as_nanos()).unwrap_or(u64::MAX))
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_accumulates_guard_and_manual_records() {
        let _g = crate::test_lock();
        let s = Span::new();
        {
            let _t = s.start();
            std::hint::black_box(0u64);
        }
        s.record_ns(500);
        s.record_duration(std::time::Duration::from_nanos(700));
        if crate::compiled_in() {
            assert_eq!(s.count(), 3);
            assert!(s.total_ns() >= 1200);
            assert!(s.max_ns() >= 700);
            assert!(s.mean_ns() > 0);
        } else {
            assert_eq!(s.count(), 0);
            assert_eq!(s.total_ns(), 0);
        }
        s.reset();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn time_closure_returns_value() {
        let s = Span::new();
        let v = s.time(|| 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn stopwatch_is_silent_when_off() {
        let _g = crate::test_lock();
        crate::set_recording(false);
        let w = Stopwatch::start();
        assert_eq!(w.elapsed_ns(), 0);
        crate::set_recording(true);
    }
}
