//! Log-bucketed histogram with percentile readout.
//!
//! Values are binned log-linearly: 4 sub-buckets per power of two
//! (values 0..8 are exact), giving <= 12.5% relative error on any
//! reported quantile while keeping `record` to a handful of relaxed
//! atomic adds — cheap enough for the single-CTA per-iteration hot
//! path. `sum` and `max` are tracked exactly.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-buckets per power of two.
#[cfg(any(feature = "enabled", test))]
const SUB_BITS: u32 = 2;
/// Sub-buckets per power of two.
#[cfg(any(feature = "enabled", test))]
const SUBS: u64 = 1 << SUB_BITS;
/// Total bucket count: identity range + (exponent, sub) pairs. The
/// largest index, for `u64::MAX`, is `(63 - 1) * 4 + 3 = 251`.
#[cfg(any(feature = "enabled", test))]
const BUCKETS: usize = 252;

/// Bucket index for `v` (monotone in `v`).
#[cfg(any(feature = "enabled", test))]
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 2 * SUBS {
        // 0..8 map to themselves — small counts are exact.
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as u64; // >= SUB_BITS + 1
        let sub = (v >> (exp - SUB_BITS as u64)) & (SUBS - 1);
        ((exp - 1) * SUBS + sub) as usize
    }
}

/// Largest value falling into bucket `i` (the reported quantile value).
#[cfg(any(feature = "enabled", test))]
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < 2 * SUBS {
        i
    } else {
        let exp = i / SUBS + 1;
        let sub = i % SUBS;
        let width = 1u64 << (exp - SUB_BITS as u64);
        // Lower bound of the bucket plus its width, minus one.
        (1u64 << exp) + sub * width + (width - 1)
    }
}

/// A concurrent log-bucketed histogram of `u64` samples.
///
/// Zero-sized and inert without the `enabled` feature.
#[derive(Debug)]
pub struct Histogram {
    #[cfg(feature = "enabled")]
    buckets: [AtomicU64; BUCKETS],
    #[cfg(feature = "enabled")]
    count: AtomicU64,
    #[cfg(feature = "enabled")]
    sum: AtomicU64,
    #[cfg(feature = "enabled")]
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (const — usable in statics).
    pub const fn new() -> Self {
        #[cfg(feature = "enabled")]
        {
            #[allow(clippy::declare_interior_mutable_const)]
            const ZERO: AtomicU64 = AtomicU64::new(0);
            Histogram {
                buckets: [ZERO; BUCKETS],
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            Histogram {}
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "enabled")]
        if crate::recording() {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Number of recorded samples (0 in a disabled build).
    pub fn count(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.count.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Exact sum of recorded samples.
    pub fn sum(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.sum.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.max.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding the rank-`ceil(q * count)` sample; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        #[cfg(feature = "enabled")]
        {
            let count = self.count();
            if count == 0 {
                return 0;
            }
            let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (i, b) in self.buckets.iter().enumerate() {
                seen += b.load(Ordering::Relaxed);
                if seen >= rank {
                    // Never report past the exact max.
                    return bucket_upper(i).min(self.max());
                }
            }
            self.max()
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = q;
            0
        }
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Forget all samples.
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            self.count.store(0, Ordering::Relaxed);
            self.sum.store(0, Ordering::Relaxed);
            self.max.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut samples: Vec<u64> = (0..200).collect();
        for shift in 3..64 {
            for off in [0u64, 1, 2, 3] {
                samples.push((1u64 << shift).saturating_add(off << (shift - 2)));
                samples.push((1u64 << shift).saturating_sub(1));
            }
        }
        samples.push(u64::MAX);
        samples.sort_unstable();
        let mut last = 0usize;
        for &v in &samples {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "v={v} i={i}");
            assert!(i >= last, "v={v}: index went backwards");
            last = i;
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn upper_bound_contains_its_bucket() {
        for v in [8u64, 9, 15, 16, 100, 1000, 123_456, u64::MAX / 2] {
            let i = bucket_index(v);
            let upper = bucket_upper(i);
            assert!(upper >= v, "v={v} upper={upper}");
            // Relative error bound of the log-linear scheme.
            assert!((upper - v) as f64 <= 0.125 * v as f64 + 1.0, "v={v} upper={upper}");
        }
    }

    #[test]
    fn quantiles_of_uniform_stream() {
        let _g = crate::test_lock();
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        if !crate::compiled_in() {
            assert_eq!(h.count(), 0);
            return;
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        assert!((450..=600).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((900..=1000).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(1.0) == 1000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }
}
