//! Top-k and exact-search invariants over arbitrary inputs.

use knn::brute::exact_search;
use knn::topk::{cmp_neighbor, Neighbor, TopK};
use proptest::prelude::*;

proptest! {
    #[test]
    fn topk_equals_sort_prefix(dists in proptest::collection::vec(-1e6f32..1e6, 1..200), k in 1usize..32) {
        let items: Vec<Neighbor> =
            dists.iter().enumerate().map(|(i, &d)| Neighbor::new(i as u32, d)).collect();
        let mut top = TopK::new(k);
        for &it in &items {
            top.push(it);
        }
        let got = top.into_sorted();
        let mut want = items.clone();
        want.sort_by(cmp_neighbor);
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn threshold_is_max_of_retained(dists in proptest::collection::vec(0.0f32..1e3, 5..50)) {
        let mut top = TopK::new(5);
        for (i, &d) in dists.iter().enumerate() {
            top.push(Neighbor::new(i as u32, d));
        }
        let thr = top.threshold();
        let worst = top.into_sorted().last().unwrap().dist;
        prop_assert_eq!(thr, worst);
    }

    #[test]
    fn exact_search_matches_naive_argmin(flat in proptest::collection::vec(-100.0f32..100.0, 6..90), q in proptest::collection::vec(-100.0f32..100.0, 3)) {
        let dim = 3;
        let n = flat.len() / dim;
        prop_assume!(n >= 2);
        let d = dataset::Dataset::from_flat(flat[..n * dim].to_vec(), dim);
        let got = exact_search(&d, distance::Metric::SquaredL2, &q, 1);
        let naive = (0..n)
            .min_by(|&a, &b| {
                let da = distance::squared_l2(d.row(a), &q);
                let db = distance::squared_l2(d.row(b), &q);
                da.partial_cmp(&db).unwrap().then(a.cmp(&b))
            })
            .unwrap();
        prop_assert_eq!(got[0].id as usize, naive);
    }

    #[test]
    fn exact_search_results_sorted_and_unique(flat in proptest::collection::vec(-10.0f32..10.0, 30..150), k in 1usize..12) {
        let dim = 5;
        let n = flat.len() / dim;
        let d = dataset::Dataset::from_flat(flat[..n * dim].to_vec(), dim);
        let out = exact_search(&d, distance::Metric::SquaredL2, &vec![0.0; dim], k);
        prop_assert_eq!(out.len(), k.min(n));
        prop_assert!(out.windows(2).all(|w| cmp_neighbor(&w[0], &w[1]).is_le()));
        let mut ids: Vec<u32> = out.iter().map(|x| x.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), k.min(n));
    }
}
