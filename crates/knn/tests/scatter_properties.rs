//! Property tests for [`knn::counting_scatter`]: over arbitrary
//! emission patterns and thread counts, the output must be a
//! **permutation** of the emitted items (every item placed exactly
//! once, in the row its target names) and each row must preserve
//! **ascending-source order** — the serial order in which sources
//! emitted into it — regardless of how the sources were chunked
//! across threads.
//!
//! Payloads are `(source, seq)` pairs so both halves of the claim are
//! directly checkable: per-row multiset equality gives the
//! permutation, per-row lexicographic `(source, seq)` sortedness
//! gives the order. Run with `--features debug_invariants` to layer
//! the in-crate cursor-permutation shadow checks on top (the CI
//! invariants lane does).

use knn::{counting_scatter, CsrRows, ScatterScratch};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Run a scatter of `raw_targets[v] % n_targets` and check the
/// permutation + ordering contract against a serial reference.
fn check_scatter(
    raw_targets: &[Vec<u32>],
    n_targets: usize,
    threads: usize,
) -> Result<(), TestCaseError> {
    let n_sources = raw_targets.len();
    let target = |v: usize, j: usize| raw_targets[v][j] % n_targets as u32;

    let mut scratch = ScatterScratch::new();
    let mut out: CsrRows<(u32, u32)> = CsrRows::new();
    counting_scatter(n_targets, n_sources, threads, &mut scratch, &mut out, |v| {
        (0..raw_targets[v].len()).map(move |j| (target(v, j), (v as u32, j as u32)))
    });

    // Serial reference: append each emission to its target row in
    // source order.
    let mut want: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_targets];
    for (v, row) in raw_targets.iter().enumerate() {
        for j in 0..row.len() {
            want[target(v, j) as usize].push((v as u32, j as u32));
        }
    }

    prop_assert_eq!(out.len(), n_targets);
    for (u, want_row) in want.iter().enumerate() {
        // Row contents equal the reference exactly — which implies the
        // whole output is a permutation of the emitted multiset (each
        // item exactly once, in the right row) AND that the row is in
        // ascending-(source, seq) order, since the reference is built
        // that way and (source, seq) keys are unique.
        prop_assert_eq!(
            out.row(u),
            want_row.as_slice(),
            "row {} differs with {} threads",
            u,
            threads
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn scatter_is_an_order_preserving_permutation(
        raw_targets in proptest::collection::vec(
            proptest::collection::vec(0u32..1000, 0..6), 0..48),
        n_targets in 1usize..24,
        threads in 1usize..9,
    ) {
        // Inner vecs of length 0 give sources that emit nothing;
        // `% n_targets` leaves some rows unhit (empty-row case).
        check_scatter(&raw_targets, n_targets, threads)?;
    }

    #[test]
    fn scatter_all_to_one_row_keeps_global_source_order(
        counts in proptest::collection::vec(0usize..5, 1..40),
        threads in 1usize..9,
    ) {
        // Degenerate fan-in: every emission targets row 0, so the
        // single row must reproduce the full serial emission order
        // even though every chunk contends for the same cursor row.
        let raw_targets: Vec<Vec<u32>> = counts.iter().map(|&c| vec![0; c]).collect();
        check_scatter(&raw_targets, 1, threads)?;
        // And with extra never-hit rows around it.
        check_scatter(&raw_targets, 7, threads)?;
    }

    #[test]
    fn scatter_more_threads_than_sources(
        raw_targets in proptest::collection::vec(
            proptest::collection::vec(0u32..1000, 0..4), 0..3),
        n_targets in 1usize..5,
    ) {
        // threads > n_sources exercises empty chunks.
        check_scatter(&raw_targets, n_targets, 16)?;
    }
}

#[test]
fn scatter_zero_targets_yields_empty_csr() {
    let mut scratch = ScatterScratch::new();
    let mut out: CsrRows<(u32, u32)> = CsrRows::new();
    counting_scatter(0, 0, 4, &mut scratch, &mut out, |_| std::iter::empty());
    assert_eq!(out.len(), 0);
    assert!(out.is_empty());
}
