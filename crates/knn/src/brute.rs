//! Exact (brute force) k-NN — the ground-truth oracle for recall.
//!
//! This is the "simplest exact solution" the paper's introduction
//! describes: compute every query-to-dataset distance and keep the
//! top-k. Parallel over queries.

use crate::parallel::{default_threads, parallel_map};
use crate::topk::{Neighbor, TopK};
use dataset::VectorStore;
use distance::{DistanceOracle, Metric};

/// Rows scored per batched `to_rows` call in the scan loops: big
/// enough to amortize metric dispatch, small enough to stay on stack.
pub(crate) const GANG: usize = 256;

/// Exact top-k for one query.
///
/// Scans the dataset in [`GANG`]-row blocks through the batched
/// distance kernel, so metric/layout dispatch and the cosine query
/// norm are paid once per block, not once per row.
pub fn exact_search<S: VectorStore + ?Sized>(
    store: &S,
    metric: Metric,
    query: &[f32],
    k: usize,
) -> Vec<Neighbor> {
    assert_eq!(query.len(), store.dim(), "query dimension mismatch");
    let oracle = DistanceOracle::new(store, metric);
    let prepared = oracle.prepare(query);
    let mut top = TopK::new(k.max(1));
    let mut ids = [0u32; GANG];
    let mut dists = [0.0f32; GANG];
    let n = store.len();
    let mut start = 0usize;
    while start < n {
        let m = GANG.min(n - start);
        for (t, id) in ids[..m].iter_mut().enumerate() {
            *id = (start + t) as u32;
        }
        oracle.to_rows(&prepared, &ids[..m], &mut dists[..m]);
        for (t, &d) in dists[..m].iter().enumerate() {
            if d < top.threshold() {
                top.push(Neighbor::new((start + t) as u32, d));
            }
        }
        start += m;
    }
    top.into_sorted()
}

/// Exact top-k neighbor ids for every query, parallel over queries.
/// Returns one ascending-distance id list per query (rows may be
/// shorter than `k` when the dataset has fewer than `k` vectors).
pub fn ground_truth<S, Q>(store: &S, metric: Metric, queries: &Q, k: usize) -> Vec<Vec<u32>>
where
    S: VectorStore + ?Sized,
    Q: VectorStore + ?Sized,
{
    let threads = default_threads();
    let dim = queries.dim();
    parallel_map(queries.len(), threads, |qi| {
        let mut q = vec![0.0f32; dim];
        queries.get_into(qi, &mut q);
        exact_search(store, metric, &q, k).into_iter().map(|n| n.id).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::Dataset;

    fn line_dataset() -> Dataset {
        // Points at x = 0, 1, 2, ..., 9 on a 1-D line.
        Dataset::from_flat((0..10).map(|i| i as f32).collect(), 1)
    }

    #[test]
    fn finds_nearest_on_a_line() {
        let d = line_dataset();
        let out = exact_search(&d, Metric::SquaredL2, &[3.2], 3);
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 4, 2]);
        assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn k_larger_than_dataset() {
        let d = line_dataset();
        let out = exact_search(&d, Metric::SquaredL2, &[0.0], 100);
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].id, 0);
    }

    #[test]
    fn ground_truth_batches_match_single() {
        let d = line_dataset();
        let queries = Dataset::from_flat(vec![3.2, 8.9], 1);
        let gt = ground_truth(&d, Metric::SquaredL2, &queries, 2);
        assert_eq!(gt, vec![vec![3, 4], vec![9, 8]]);
    }

    #[test]
    fn works_under_inner_product() {
        let d = Dataset::from_flat(vec![1.0, 0.0, 0.0, 1.0, -1.0, 0.0], 2);
        let out = exact_search(&d, Metric::InnerProduct, &[1.0, 0.0], 1);
        assert_eq!(out[0].id, 0); // largest dot product
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn query_dim_checked() {
        exact_search(&line_dataset(), Metric::SquaredL2, &[1.0, 2.0], 1);
    }
}
