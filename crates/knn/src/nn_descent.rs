//! NN-Descent k-NN graph construction (Dong et al., WWW 2011).
//!
//! CAGRA builds its initial `d_init`-degree k-NN graph with NN-Descent
//! (Sec. III-B1): start from random neighbor lists and iteratively run
//! *local joins* — every pair of neighbors of a node are candidate
//! neighbors of each other — until the update rate drops below a
//! threshold. The implementation is parallel over nodes with per-node
//! locks (the paper uses the GPU variant of Wang et al.; the structure
//! of the computation is identical).
//!
//! Neighbor lists are kept sorted ascending by distance throughout, so
//! the paper's final "sort each node list by distance" step is already
//! satisfied on output, and list positions are exactly the *initial
//! ranks* that CAGRA's rank-based reordering consumes.

use crate::parallel::{default_threads, parallel_chunks};
use crate::topk::{cmp_neighbor, Neighbor};
use dataset::VectorStore;
use distance::{DistanceOracle, Metric};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning parameters for NN-Descent.
#[derive(Clone, Debug)]
pub struct NnDescentParams {
    /// Neighbors per node in the produced graph (CAGRA's `d_init`).
    pub k: usize,
    /// Local-join sample rate ρ ∈ (0, 1]; Dong et al. recommend 0.5–1.
    pub rho: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Terminate when an iteration changes fewer than `delta * n * k`
    /// entries.
    pub delta: f64,
    /// RNG seed for the random initialization and sampling.
    pub seed: u64,
    /// Worker threads (0 = [`default_threads`]).
    pub threads: usize,
}

impl NnDescentParams {
    /// Sensible defaults for a given `k`.
    pub fn new(k: usize) -> Self {
        NnDescentParams { k, rho: 0.5, max_iters: 12, delta: 0.001, seed: 0x5eed, threads: 0 }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    n: Neighbor,
    is_new: bool,
}

/// NN-Descent builder.
pub struct NnDescent {
    params: NnDescentParams,
}

impl NnDescent {
    /// Create a builder with the given parameters.
    pub fn new(params: NnDescentParams) -> Self {
        assert!(params.k > 0, "k must be positive");
        assert!(params.rho > 0.0 && params.rho <= 1.0, "rho must be in (0, 1]");
        NnDescent { params }
    }

    /// Build the approximate k-NN lists for every node, each sorted
    /// ascending by distance. Lists have exactly `min(k, n-1)` entries.
    pub fn build<S: VectorStore + ?Sized>(&self, store: &S, metric: Metric) -> Vec<Vec<Neighbor>> {
        self.build_with_stats(store, metric).0
    }

    /// Like [`NnDescent::build`], additionally reporting the number of
    /// distance computations performed — the quantity the GPU
    /// construction-time model prices (Fig. 11's simulated estimate).
    pub fn build_with_stats<S: VectorStore + ?Sized>(
        &self,
        store: &S,
        metric: Metric,
    ) -> (Vec<Vec<Neighbor>>, NnDescentStats) {
        let n = store.len();
        if n == 0 {
            return (Vec::new(), NnDescentStats::default());
        }
        let k = self.params.k.min(n - 1);
        if k == 0 {
            return (vec![Vec::new(); n], NnDescentStats::default());
        }
        // Tiny datasets: exact all-pairs is both faster and exact.
        if n <= 2048 && n * n <= 64 * n * self.params.k.max(1) {
            let lists = exact_all_pairs(store, metric, k, self.params.threads);
            let stats = NnDescentStats { distance_computations: (n * (n - 1)) as u64 };
            return (lists, stats);
        }
        self.descent(store, metric, k)
    }

    fn descent<S: VectorStore + ?Sized>(
        &self,
        store: &S,
        metric: Metric,
        k: usize,
    ) -> (Vec<Vec<Neighbor>>, NnDescentStats) {
        let n = store.len();
        let threads =
            if self.params.threads == 0 { default_threads() } else { self.params.threads };
        let lists: Vec<Mutex<Vec<Entry>>> =
            (0..n).map(|_| Mutex::new(Vec::with_capacity(k))).collect();
        let dist_count = AtomicU64::new(0);

        // Random initialization: k distinct non-self ids per node,
        // gathered first and scored with one batched gang call.
        parallel_chunks(n, threads, |start, end| {
            let oracle = DistanceOracle::new(store, metric);
            let mut scratch = vec![0.0f32; store.dim()];
            let mut cand: Vec<u32> = Vec::with_capacity(k);
            let mut dists = vec![0.0f32; k];
            let mut rng = StdRng::seed_from_u64(self.params.seed ^ (start as u64) << 1);
            for (off, slot) in lists[start..end].iter().enumerate() {
                let v = start + off;
                store.get_into(v, &mut scratch);
                let prepared = oracle.prepare(&scratch);
                cand.clear();
                while cand.len() < k {
                    let u = rng.gen_range(0..n);
                    if u == v || cand.iter().any(|&c| c as usize == u) {
                        continue;
                    }
                    cand.push(u as u32);
                }
                oracle.to_rows(&prepared, &cand, &mut dists[..k]);
                let mut list = slot.lock();
                list.clear();
                for (&u, &d) in cand.iter().zip(dists.iter()) {
                    list.push(Entry { n: Neighbor::new(u, d), is_new: true });
                }
                list.sort_unstable_by(|a, b| cmp_neighbor(&a.n, &b.n));
            }
            dist_count.fetch_add(oracle.computed(), Ordering::Relaxed);
        });

        let max_samples = ((self.params.rho * k as f64).ceil() as usize).max(1);
        let stop_at = (self.params.delta * n as f64 * k as f64).max(1.0) as u64;

        for iter in 0..self.params.max_iters {
            // Phase 1: sample forward candidates, marking sampled new
            // entries old (they will have been joined after this round).
            let mut fwd_new: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut fwd_old: Vec<Vec<u32>> = vec![Vec::new(); n];
            for v in 0..n {
                let mut list = lists[v].lock();
                let mut rng = StdRng::seed_from_u64(
                    self.params.seed ^ 0xa5a5_5a5a ^ ((iter as u64) << 32) ^ v as u64,
                );
                // Old set is frozen before this round's sampling so a
                // sampled entry is joined once (as "new"), not twice.
                fwd_old[v].extend(list.iter().filter(|e| !e.is_new).map(|e| e.n.id));
                let mut new_positions: Vec<usize> =
                    list.iter().enumerate().filter_map(|(i, e)| e.is_new.then_some(i)).collect();
                new_positions.shuffle(&mut rng);
                new_positions.truncate(max_samples);
                for &i in &new_positions {
                    fwd_new[v].push(list[i].n.id);
                    list[i].is_new = false;
                }
            }

            // Phase 2: reverse candidates, subsampled to max_samples.
            let mut rev_new: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut rev_old: Vec<Vec<u32>> = vec![Vec::new(); n];
            for v in 0..n {
                for &u in &fwd_new[v] {
                    rev_new[u as usize].push(v as u32);
                }
                for &u in &fwd_old[v] {
                    rev_old[u as usize].push(v as u32);
                }
            }
            let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0x0badf00d ^ iter as u64);
            for v in 0..n {
                subsample(&mut rev_new[v], max_samples, &mut rng);
                subsample(&mut rev_old[v], max_samples, &mut rng);
            }

            // Phase 3: local joins, parallel over nodes.
            let updates = AtomicU64::new(0);
            parallel_chunks(n, threads, |start, end| {
                let oracle = DistanceOracle::new(store, metric);
                let mut news: Vec<u32> = Vec::new();
                let mut olds: Vec<u32> = Vec::new();
                let mut local_updates = 0u64;
                for v in start..end {
                    news.clear();
                    olds.clear();
                    news.extend_from_slice(&fwd_new[v]);
                    news.extend_from_slice(&rev_new[v]);
                    news.sort_unstable();
                    news.dedup();
                    olds.extend_from_slice(&fwd_old[v]);
                    olds.extend_from_slice(&rev_old[v]);
                    olds.sort_unstable();
                    olds.dedup();
                    for (ai, &a) in news.iter().enumerate() {
                        for &b in &news[ai + 1..] {
                            local_updates += join(&oracle, &lists, a, b, k);
                        }
                        for &b in olds.iter() {
                            if a != b {
                                local_updates += join(&oracle, &lists, a, b, k);
                            }
                        }
                    }
                }
                updates.fetch_add(local_updates, Ordering::Relaxed);
                dist_count.fetch_add(oracle.computed(), Ordering::Relaxed);
            });

            if updates.load(Ordering::Relaxed) < stop_at {
                break;
            }
        }

        let lists =
            lists.into_iter().map(|m| m.into_inner().into_iter().map(|e| e.n).collect()).collect();
        (lists, NnDescentStats { distance_computations: dist_count.load(Ordering::Relaxed) })
    }
}

/// Work counters from one NN-Descent build.
#[derive(Clone, Copy, Debug, Default)]
pub struct NnDescentStats {
    /// Total query/dataset distance computations performed.
    pub distance_computations: u64,
}

/// Try to make `a` and `b` neighbors of each other; returns the number
/// of list entries changed (0, 1 or 2).
fn join<S: VectorStore + ?Sized>(
    oracle: &DistanceOracle<'_, S>,
    lists: &[Mutex<Vec<Entry>>],
    a: u32,
    b: u32,
    k: usize,
) -> u64 {
    let d = oracle.between_rows(a as usize, b as usize);
    let mut changed = 0u64;
    if try_insert(&mut lists[a as usize].lock(), Neighbor::new(b, d), k) {
        changed += 1;
    }
    if try_insert(&mut lists[b as usize].lock(), Neighbor::new(a, d), k) {
        changed += 1;
    }
    changed
}

/// Insert into a sorted bounded list if closer than the current worst
/// and not already present.
fn try_insert(list: &mut Vec<Entry>, n: Neighbor, k: usize) -> bool {
    if list.len() == k {
        if let Some(worst) = list.last() {
            if cmp_neighbor(&n, &worst.n) != std::cmp::Ordering::Less {
                return false;
            }
        }
    }
    if list.iter().any(|e| e.n.id == n.id) {
        return false;
    }
    let pos = list.partition_point(|e| cmp_neighbor(&e.n, &n) == std::cmp::Ordering::Less);
    list.insert(pos, Entry { n, is_new: true });
    if list.len() > k {
        list.pop();
    }
    true
}

fn subsample(v: &mut Vec<u32>, max: usize, rng: &mut StdRng) {
    if v.len() > max {
        v.shuffle(rng);
        v.truncate(max);
    }
}

/// Exact k-NN lists by all-pairs distance (used for tiny datasets and
/// as the test oracle).
pub fn exact_all_pairs<S: VectorStore + ?Sized>(
    store: &S,
    metric: Metric,
    k: usize,
    threads: usize,
) -> Vec<Vec<Neighbor>> {
    let n = store.len();
    let threads = if threads == 0 { default_threads() } else { threads };
    let k = k.min(n.saturating_sub(1));
    let mut out: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    {
        let slots = std::sync::Mutex::new(&mut out);
        parallel_chunks(n, threads, |start, end| {
            let oracle = DistanceOracle::new(store, metric);
            let mut scratch = vec![0.0f32; store.dim()];
            let gang = crate::brute::GANG;
            let mut ids: Vec<u32> = Vec::with_capacity(gang);
            let mut dists = vec![0.0f32; gang];
            let mut local: Vec<(usize, Vec<Neighbor>)> = Vec::with_capacity(end - start);
            for v in start..end {
                store.get_into(v, &mut scratch);
                let prepared = oracle.prepare(&scratch);
                let mut top = crate::topk::TopK::new(k.max(1));
                let mut u0 = 0usize;
                while u0 < n {
                    let stop = (u0 + gang).min(n);
                    ids.clear();
                    ids.extend((u0..stop).filter(|&u| u != v).map(|u| u as u32));
                    oracle.to_rows(&prepared, &ids, &mut dists[..ids.len()]);
                    for (&u, &d) in ids.iter().zip(dists.iter()) {
                        if d < top.threshold() {
                            top.push(Neighbor::new(u, d));
                        }
                    }
                    u0 = stop;
                }
                local.push((v, top.into_sorted()));
            }
            let mut guard = slots.lock().unwrap();
            for (v, list) in local {
                guard[v] = list;
            }
        });
    }
    out
}

/// Fraction of true k-NN edges recovered by `approx` (graph recall).
pub fn knn_graph_recall(approx: &[Vec<Neighbor>], exact: &[Vec<Neighbor>]) -> f64 {
    assert_eq!(approx.len(), exact.len());
    if approx.is_empty() {
        return 1.0;
    }
    let mut hit = 0usize;
    let mut total = 0usize;
    for (a, e) in approx.iter().zip(exact) {
        total += e.len();
        for t in e {
            if a.iter().any(|x| x.id == t.id) {
                hit += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::synth::{Family, SynthSpec};

    #[test]
    fn exact_on_tiny_dataset() {
        let spec = SynthSpec { dim: 4, n: 50, queries: 0, family: Family::Gaussian, seed: 3 };
        let (base, _) = spec.generate();
        let nd = NnDescent::new(NnDescentParams::new(5));
        let got = nd.build(&base, Metric::SquaredL2);
        let want = exact_all_pairs(&base, Metric::SquaredL2, 5, 1);
        assert_eq!(got.len(), 50);
        // Tiny datasets route through the exact path.
        assert_eq!(knn_graph_recall(&got, &want), 1.0);
    }

    #[test]
    fn lists_are_sorted_and_self_free() {
        let spec = SynthSpec { dim: 8, n: 4000, queries: 0, family: Family::Gaussian, seed: 9 };
        let (base, _) = spec.generate();
        let nd = NnDescent::new(NnDescentParams { threads: 2, ..NnDescentParams::new(8) });
        let lists = nd.build(&base, Metric::SquaredL2);
        for (v, list) in lists.iter().enumerate() {
            assert_eq!(list.len(), 8, "node {v}");
            assert!(list.iter().all(|n| n.id as usize != v), "self loop at {v}");
            assert!(list.windows(2).all(|w| w[0].dist <= w[1].dist), "unsorted at {v}");
            let mut ids: Vec<u32> = list.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 8, "duplicate neighbor at {v}");
        }
    }

    #[test]
    fn converges_to_high_graph_recall_on_easy_data() {
        let spec = SynthSpec { dim: 8, n: 4000, queries: 0, family: Family::Gaussian, seed: 1 };
        let (base, _) = spec.generate();
        let nd = NnDescent::new(NnDescentParams { rho: 1.0, ..NnDescentParams::new(10) });
        let lists = nd.build(&base, Metric::SquaredL2);
        let exact = exact_all_pairs(&base, Metric::SquaredL2, 10, 0);
        let recall = knn_graph_recall(&lists, &exact);
        assert!(recall > 0.90, "graph recall {recall}");
    }

    #[test]
    fn k_clamped_to_n_minus_one() {
        let spec = SynthSpec { dim: 4, n: 6, queries: 0, family: Family::Gaussian, seed: 2 };
        let (base, _) = spec.generate();
        let lists = NnDescent::new(NnDescentParams::new(32)).build(&base, Metric::SquaredL2);
        assert!(lists.iter().all(|l| l.len() == 5));
    }

    #[test]
    fn empty_and_singleton_datasets() {
        let empty = dataset::Dataset::empty(4);
        assert!(NnDescent::new(NnDescentParams::new(4))
            .build(&empty, Metric::SquaredL2)
            .is_empty());
        let single = dataset::Dataset::from_flat(vec![1.0, 2.0], 2);
        let lists = NnDescent::new(NnDescentParams::new(4)).build(&single, Metric::SquaredL2);
        assert_eq!(lists, vec![Vec::new()]);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = SynthSpec { dim: 6, n: 3000, queries: 0, family: Family::Gaussian, seed: 5 };
        let (base, _) = spec.generate();
        let p = NnDescentParams { threads: 1, ..NnDescentParams::new(6) };
        let a = NnDescent::new(p.clone()).build(&base, Metric::SquaredL2);
        let b = NnDescent::new(p).build(&base, Metric::SquaredL2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.iter().map(|n| n.id).collect::<Vec<_>>(),
                y.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "rho must be in")]
    fn invalid_rho_rejected() {
        NnDescent::new(NnDescentParams { rho: 0.0, ..NnDescentParams::new(4) });
    }
}

/// Convert NN-Descent lists into a fixed-degree graph, truncating each
/// list to `degree` (the "plain k-NN graph" baseline of Fig. 3).
///
/// # Panics
/// Panics if any list is shorter than `degree`.
pub fn lists_to_fixed_graph(lists: &[Vec<Neighbor>], degree: usize) -> graph::FixedDegreeGraph {
    let rows: Vec<Vec<u32>> = lists
        .iter()
        .map(|l| {
            assert!(l.len() >= degree, "list shorter than degree {degree}");
            l[..degree].iter().map(|n| n.id).collect()
        })
        .collect();
    graph::FixedDegreeGraph::from_rows(&rows, degree)
}

#[cfg(test)]
mod graph_conv_tests {
    use super::*;

    #[test]
    fn lists_convert_to_fixed_graph() {
        let lists = vec![
            vec![Neighbor::new(1, 0.1), Neighbor::new(2, 0.2)],
            vec![Neighbor::new(0, 0.1), Neighbor::new(2, 0.3)],
            vec![Neighbor::new(0, 0.2), Neighbor::new(1, 0.3)],
        ];
        let g = lists_to_fixed_graph(&lists, 2);
        assert_eq!(g.degree(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        let g1 = lists_to_fixed_graph(&lists, 1);
        assert_eq!(g1.neighbors(2), &[0]);
    }

    #[test]
    #[should_panic(expected = "shorter than degree")]
    fn short_lists_rejected_in_conversion() {
        lists_to_fixed_graph(&[vec![Neighbor::new(1, 0.1)], vec![]], 1);
    }
}
