//! NN-Descent k-NN graph construction (Dong et al., WWW 2011).
//!
//! CAGRA builds its initial `d_init`-degree k-NN graph with NN-Descent
//! (Sec. III-B1): start from random neighbor lists and iteratively run
//! *local joins* — every pair of neighbors of a node are candidate
//! neighbors of each other — until the update rate drops below a
//! threshold. Every phase here is parallel over nodes and
//! allocation-flat:
//!
//! * neighbor lists live in one row-locked `n × k` slab
//!   ([`LockedLists`]) instead of `n` heap vectors behind `n` mutexes
//!   wrapping `Vec`s;
//! * forward samples go into two [`FlatArena`]s and reverse candidates
//!   into two [`CsrRows`] buffers, all reused (cleared in place)
//!   across iterations;
//! * the reverse-candidate scatter is the deterministic
//!   [`counting_scatter`], so the build is bit-identical for any
//!   thread count — sampling RNGs are seeded per `(iteration, node)`
//!   and termination counts *positional* list changes against a
//!   snapshot rather than racing transient insertions.
//!
//! Neighbor lists are kept sorted ascending by distance throughout, so
//! the paper's final "sort each node list by distance" step is already
//! satisfied on output, and list positions are exactly the *initial
//! ranks* that CAGRA's rank-based reordering consumes.

use crate::flat::{counting_scatter, CsrRows, FlatArena, KnnLists, ScatterScratch};
use crate::parallel::{chunk_ranges, default_threads, parallel_chunks, parallel_fill_rows_with};
use crate::topk::{cmp_neighbor, Neighbor};
use dataset::VectorStore;
use distance::{DistanceOracle, Metric};
use parking_lot::{Mutex, MutexGuard};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Per-node seed salts. Each RNG in the build is seeded from
/// `(seed, salt, iteration, node)` alone, never from a shared stream,
/// which is what makes every phase parallelizable without changing its
/// output.
pub(crate) const SALT_SAMPLE: u64 = 0xa5a5_5a5a;
pub(crate) const SALT_REV_NEW: u64 = 0x0bad_f00d;
pub(crate) const SALT_REV_OLD: u64 = 0x0bad_f11d;

/// Seed for node `v`'s random initial neighbor list.
#[inline]
pub(crate) fn init_seed(seed: u64, v: usize) -> u64 {
    seed ^ ((v as u64) << 1)
}

/// Seed for a per-`(iteration, node)` sampling RNG.
#[inline]
pub(crate) fn iter_seed(seed: u64, salt: u64, iter: usize, v: usize) -> u64 {
    seed ^ salt ^ ((iter as u64) << 32) ^ v as u64
}

/// Tuning parameters for NN-Descent.
#[derive(Clone, Debug)]
pub struct NnDescentParams {
    /// Neighbors per node in the produced graph (CAGRA's `d_init`).
    pub k: usize,
    /// Local-join sample rate ρ ∈ (0, 1]; Dong et al. recommend 0.5–1.
    pub rho: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Terminate when an iteration changes fewer than `delta * n * k`
    /// list positions.
    pub delta: f64,
    /// RNG seed for the random initialization and sampling.
    pub seed: u64,
    /// Worker threads (0 = [`default_threads`]).
    pub threads: usize,
}

impl NnDescentParams {
    /// Sensible defaults for a given `k`.
    pub fn new(k: usize) -> Self {
        NnDescentParams { k, rho: 0.5, max_iters: 12, delta: 0.001, seed: 0x5eed, threads: 0 }
    }
}

#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Entry {
    pub(crate) n: Neighbor,
    pub(crate) is_new: bool,
}

/// `n` bounded neighbor lists in one flat `n × cap` slab, each row
/// guarded by its own lock. The lock's payload *is* the row length, so
/// acquiring it grants exclusive access to the row — no `Vec` per
/// node, no allocation after construction.
pub(crate) struct LockedLists {
    slab: Box<[UnsafeCell<Entry>]>,
    rows: Vec<Mutex<u32>>,
    cap: usize,
}

// SAFETY: a row's slab cells are only touched through `RowGuard`,
// which holds that row's mutex for its whole lifetime; distinct rows
// occupy disjoint `cap`-sized slab ranges (see the in-slab assertion
// in `lock`), so concurrent guards never alias. The `UnsafeCell`
// wrapper is what licenses writes through the `&self`-derived pointer.
unsafe impl Sync for LockedLists {}

impl LockedLists {
    pub(crate) fn new(n: usize, cap: usize) -> Self {
        assert!(cap > 0, "row capacity must be positive");
        LockedLists {
            slab: (0..n * cap).map(|_| UnsafeCell::new(Entry::default())).collect(),
            rows: (0..n).map(|_| Mutex::new(0)).collect(),
            cap,
        }
    }

    /// Lock row `v` for exclusive access.
    #[inline]
    pub(crate) fn lock(&self, v: usize) -> RowGuard<'_> {
        let len = self.rows[v].lock();
        #[cfg(feature = "debug_invariants")]
        {
            assert!(
                *len as usize <= self.cap,
                "slab invariant: row {v} length {} exceeds cap {}",
                *len,
                self.cap
            );
            assert!(
                (v + 1) * self.cap <= self.slab.len(),
                "slab invariant: row {v} lies outside the slab"
            );
        }
        // The row pointer is derived from the *whole-slab* pointer, not
        // from one cell's `UnsafeCell::get`: `raw_get` never
        // materializes a reference, so the pointer keeps provenance
        // over all `cap` cells of the row and the guard's
        // `from_raw_parts` slice reconstructions stay inside the
        // aliasing model (Miri-clean, no `&` → raw → `&mut` round
        // trips).
        // SAFETY: `v` indexes `rows`, so `v * cap` is in bounds of the
        // `n * cap` slab; `raw_get` only converts the pointer type.
        let row = unsafe { UnsafeCell::raw_get(self.slab.as_ptr().add(v * self.cap)) };
        RowGuard { len, row, cap: self.cap }
    }
}

/// Exclusive access to one row of a [`LockedLists`].
pub(crate) struct RowGuard<'a> {
    len: MutexGuard<'a, u32>,
    row: *mut Entry,
    cap: usize,
}

impl RowGuard<'_> {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        *self.len as usize
    }

    #[inline]
    pub(crate) fn entries(&self) -> &[Entry] {
        // SAFETY: the mutex guard makes this row exclusively ours,
        // `len <= cap` is an invariant maintained by every writer (and
        // asserted in `lock` under `debug_invariants`), and `row` has
        // whole-slab provenance (see `lock`), so the `len`-cell slice
        // is in bounds and unaliased.
        unsafe { std::slice::from_raw_parts(self.row, *self.len as usize) }
    }

    #[inline]
    pub(crate) fn entries_mut(&mut self) -> &mut [Entry] {
        // SAFETY: as in `entries`, plus `&mut self` forbids aliasing
        // through the guard itself.
        unsafe { std::slice::from_raw_parts_mut(self.row, *self.len as usize) }
    }

    /// Replace the row contents (used by initialization).
    pub(crate) fn fill(&mut self, entries: &[Entry]) {
        assert!(entries.len() <= self.cap, "row overflow");
        // SAFETY: exclusive access via the guard; length set to match.
        unsafe { std::ptr::copy_nonoverlapping(entries.as_ptr(), self.row, entries.len()) };
        *self.len = entries.len() as u32;
    }

    /// Insert into the sorted bounded row if closer than the current
    /// worst and not already present. Returns true if the row changed.
    pub(crate) fn try_insert(&mut self, n: Neighbor) -> bool {
        let len = self.len();
        let full = len == self.cap;
        {
            let row = self.entries();
            if full && cmp_neighbor(&n, &row[len - 1].n) != std::cmp::Ordering::Less {
                return false;
            }
            if row.iter().any(|e| e.n.id == n.id) {
                return false;
            }
        }
        let pos =
            self.entries().partition_point(|e| cmp_neighbor(&e.n, &n) == std::cmp::Ordering::Less);
        if !full {
            *self.len += 1;
        }
        let row = self.entries_mut();
        if pos + 1 < row.len() {
            row.copy_within(pos..row.len() - 1, pos + 1);
        }
        row[pos] = Entry { n, is_new: true };
        true
    }
}

/// NN-Descent builder.
pub struct NnDescent {
    params: NnDescentParams,
}

impl NnDescent {
    /// Create a builder with the given parameters.
    pub fn new(params: NnDescentParams) -> Self {
        assert!(params.k > 0, "k must be positive");
        assert!(params.rho > 0.0 && params.rho <= 1.0, "rho must be in (0, 1]");
        NnDescent { params }
    }

    /// Build the approximate k-NN lists for every node, each sorted
    /// ascending by distance. Every list has exactly `min(k, n-1)`
    /// entries. The result is bit-identical for any thread count.
    pub fn build<S: VectorStore + ?Sized>(&self, store: &S, metric: Metric) -> KnnLists {
        self.build_with_stats(store, metric).0
    }

    /// Like [`NnDescent::build`], additionally reporting work counters
    /// and the init/iteration timing split — the quantities the GPU
    /// construction-time model prices (Fig. 11's simulated estimate)
    /// and `BuildStats` surfaces.
    pub fn build_with_stats<S: VectorStore + ?Sized>(
        &self,
        store: &S,
        metric: Metric,
    ) -> (KnnLists, NnDescentStats) {
        let n = store.len();
        if n == 0 {
            return (KnnLists::from_rows(&[]), NnDescentStats::default());
        }
        let k = self.params.k.min(n - 1);
        if k == 0 {
            return (KnnLists::from_flat(Vec::new(), n, 0), NnDescentStats::default());
        }
        // Tiny datasets: exact all-pairs is both faster and exact.
        if n <= 2048 && n * n <= 64 * n * self.params.k.max(1) {
            let start = Instant::now();
            let lists = exact_all_pairs(store, metric, k, self.params.threads);
            let stats = NnDescentStats {
                distance_computations: (n * (n - 1)) as u64,
                init_time: start.elapsed(),
                ..NnDescentStats::default()
            };
            obs::metrics().build_nn_init.record_duration(stats.init_time);
            obs::metrics().build_nn_distances.add(stats.distance_computations);
            return (KnnLists::from_rows(&lists), stats);
        }
        self.descent(store, metric, k)
    }

    fn descent<S: VectorStore + ?Sized>(
        &self,
        store: &S,
        metric: Metric,
        k: usize,
    ) -> (KnnLists, NnDescentStats) {
        let n = store.len();
        let seed = self.params.seed;
        let threads =
            if self.params.threads == 0 { default_threads() } else { self.params.threads };
        let lists = LockedLists::new(n, k);
        let dist_count = AtomicU64::new(0);

        // Random initialization: k distinct non-self ids per node,
        // gathered first and scored with one batched gang call. The
        // RNG is seeded per node, so the initial lists do not depend
        // on the chunking.
        let t_init = Instant::now();
        parallel_chunks(n, threads, |start, end| {
            let oracle = DistanceOracle::new(store, metric);
            let mut scratch = vec![0.0f32; store.dim()];
            let mut cand: Vec<u32> = Vec::with_capacity(k);
            let mut dists = vec![0.0f32; k];
            let mut entries: Vec<Entry> = Vec::with_capacity(k);
            for v in start..end {
                let mut rng = StdRng::seed_from_u64(init_seed(seed, v));
                store.get_into(v, &mut scratch);
                let prepared = oracle.prepare(&scratch);
                cand.clear();
                while cand.len() < k {
                    let u = rng.gen_range(0..n);
                    if u == v || cand.iter().any(|&c| c as usize == u) {
                        continue;
                    }
                    cand.push(u as u32);
                }
                oracle.to_rows(&prepared, &cand, &mut dists[..k]);
                entries.clear();
                for (&u, &d) in cand.iter().zip(dists.iter()) {
                    entries.push(Entry { n: Neighbor::new(u, d), is_new: true });
                }
                entries.sort_unstable_by(|a, b| cmp_neighbor(&a.n, &b.n));
                lists.lock(v).fill(&entries);
            }
            dist_count.fetch_add(oracle.computed(), Ordering::Relaxed);
        });
        let init_time = t_init.elapsed();
        obs::metrics().build_nn_init.record_duration(init_time);

        let max_samples = ((self.params.rho * k as f64).ceil() as usize).max(1);
        let stop_at = (self.params.delta * n as f64 * k as f64).max(1.0) as u64;
        let ranges = chunk_ranges(n, threads);

        // All iteration scratch is allocated once and reused: forward
        // samples in fixed-stride arenas, reverse candidates in CSR
        // buffers refilled by the counting scatter, plus the previous
        // ids snapshot that drives termination.
        let mut fwd_new: FlatArena<u32> = FlatArena::new(n, max_samples.min(k));
        let mut fwd_old: FlatArena<u32> = FlatArena::new(n, k);
        let mut rev_new: CsrRows<u32> = CsrRows::new();
        let mut rev_old: CsrRows<u32> = CsrRows::new();
        let mut scatter = ScatterScratch::new();
        let mut prev_ids: Vec<u32> = vec![0; n * k];
        parallel_fill_rows_with(
            &mut prev_ids,
            n,
            k,
            threads,
            || (),
            |(), v, row| {
                for (slot, e) in row.iter_mut().zip(lists.lock(v).entries()) {
                    *slot = e.n.id;
                }
            },
        );

        let t_iters = Instant::now();
        let mut iterations = 0u32;
        for iter in 0..self.params.max_iters {
            iterations = iter as u32 + 1;

            obs::metrics().build_nn_iterations.inc();

            // Phase 1: sample forward candidates, marking sampled new
            // entries old (they will have been joined after this
            // round). Parallel over nodes: each worker owns a disjoint
            // row range of both arenas, and the sampling RNG is seeded
            // per (iteration, node).
            let sample_span = obs::metrics().build_nn_sample.start();
            fwd_new.clear();
            fwd_old.clear();
            {
                let new_chunks = fwd_new.chunks_mut(&ranges);
                let old_chunks = fwd_old.chunks_mut(&ranges);
                std::thread::scope(|scope| {
                    for ((mut nc, mut oc), &(start, end)) in
                        new_chunks.into_iter().zip(old_chunks).zip(&ranges)
                    {
                        let lists = &lists;
                        scope.spawn(move || {
                            let mut positions: Vec<usize> = Vec::with_capacity(k);
                            for v in start..end {
                                let mut rng =
                                    StdRng::seed_from_u64(iter_seed(seed, SALT_SAMPLE, iter, v));
                                let mut row = lists.lock(v);
                                // Old set is frozen before this round's
                                // sampling so a sampled entry is joined
                                // once (as "new"), not twice.
                                positions.clear();
                                for (i, e) in row.entries().iter().enumerate() {
                                    if e.is_new {
                                        positions.push(i);
                                    } else {
                                        oc.push(v, e.n.id);
                                    }
                                }
                                positions.shuffle(&mut rng);
                                positions.truncate(max_samples);
                                let entries = row.entries_mut();
                                for &i in &positions {
                                    nc.push(v, entries[i].n.id);
                                    entries[i].is_new = false;
                                }
                            }
                        });
                    }
                });
            }

            drop(sample_span);

            // Phase 2: reverse candidates via the deterministic
            // counting scatter (every row receives its sources in
            // ascending-id order regardless of thread count), then
            // per-node shuffles that pick which prefix survives.
            let scatter_span = obs::metrics().build_nn_scatter.start();
            counting_scatter(n, n, threads, &mut scatter, &mut rev_new, |v| {
                fwd_new.row(v).iter().map(move |&u| (u, v as u32))
            });
            counting_scatter(n, n, threads, &mut scatter, &mut rev_old, |v| {
                fwd_old.row(v).iter().map(move |&u| (u, v as u32))
            });
            rev_new.par_rows_mut(threads, |v, row| {
                if row.len() > max_samples {
                    let mut rng = StdRng::seed_from_u64(iter_seed(seed, SALT_REV_NEW, iter, v));
                    row.shuffle(&mut rng);
                }
            });
            rev_old.par_rows_mut(threads, |v, row| {
                if row.len() > max_samples {
                    let mut rng = StdRng::seed_from_u64(iter_seed(seed, SALT_REV_OLD, iter, v));
                    row.shuffle(&mut rng);
                }
            });

            drop(scatter_span);

            // Phase 3: local joins, parallel over nodes. Joins mutate
            // shared rows under per-row locks; the result is a set
            // (bounded sorted insert with dedup = keep-k-smallest over
            // the round's offer multiset), so it does not depend on
            // the interleaving.
            let join_span = obs::metrics().build_nn_join.start();
            parallel_chunks(n, threads, |start, end| {
                let oracle = DistanceOracle::new(store, metric);
                let mut news: Vec<u32> = Vec::new();
                let mut olds: Vec<u32> = Vec::new();
                for v in start..end {
                    news.clear();
                    olds.clear();
                    news.extend_from_slice(fwd_new.row(v));
                    news.extend_from_slice(sample_prefix(rev_new.row(v), max_samples));
                    news.sort_unstable();
                    news.dedup();
                    olds.extend_from_slice(fwd_old.row(v));
                    olds.extend_from_slice(sample_prefix(rev_old.row(v), max_samples));
                    olds.sort_unstable();
                    olds.dedup();
                    for (ai, &a) in news.iter().enumerate() {
                        for &b in &news[ai + 1..] {
                            join(&oracle, &lists, a, b);
                        }
                        for &b in olds.iter() {
                            if a != b {
                                join(&oracle, &lists, a, b);
                            }
                        }
                    }
                }
                dist_count.fetch_add(oracle.computed(), Ordering::Relaxed);
            });
            drop(join_span);

            // Termination: count list positions whose id changed this
            // iteration (and refresh the snapshot in the same pass).
            // Unlike a racy "insertions this round" counter, this is a
            // pure function of the lists, hence thread-count
            // independent.
            let changed = AtomicU64::new(0);
            {
                let mut rest: &mut [u32] = &mut prev_ids;
                std::thread::scope(|scope| {
                    for &(start, end) in &ranges {
                        let (head, tail) =
                            std::mem::take(&mut rest).split_at_mut((end - start) * k);
                        rest = tail;
                        let (lists, changed) = (&lists, &changed);
                        scope.spawn(move || {
                            let mut local = 0u64;
                            let mut head = head;
                            for v in start..end {
                                let (row, t) = std::mem::take(&mut head).split_at_mut(k);
                                head = t;
                                let guard = lists.lock(v);
                                for (slot, e) in row.iter_mut().zip(guard.entries()) {
                                    if *slot != e.n.id {
                                        local += 1;
                                        *slot = e.n.id;
                                    }
                                }
                            }
                            changed.fetch_add(local, Ordering::Relaxed);
                        });
                    }
                });
            }
            if changed.load(Ordering::Relaxed) < stop_at {
                break;
            }
        }
        let iter_time = t_iters.elapsed();

        // Drain the slab into the flat result (no per-node locks left).
        let mut data: Vec<Neighbor> = vec![Neighbor::default(); n * k];
        parallel_fill_rows_with(
            &mut data,
            n,
            k,
            threads,
            || (),
            |(), v, row| {
                for (slot, e) in row.iter_mut().zip(lists.lock(v).entries()) {
                    *slot = e.n;
                }
            },
        );
        let stats = NnDescentStats {
            distance_computations: dist_count.load(Ordering::Relaxed),
            init_time,
            iter_time,
            iterations,
        };
        obs::metrics().build_nn_distances.add(stats.distance_computations);
        (KnnLists::from_flat(data, n, k), stats)
    }
}

/// The subsampled prefix of a shuffled reverse-candidate row.
#[inline]
fn sample_prefix(row: &[u32], max_samples: usize) -> &[u32] {
    &row[..row.len().min(max_samples)]
}

/// Work counters and timing split from one NN-Descent build.
#[derive(Clone, Copy, Debug, Default)]
pub struct NnDescentStats {
    /// Total query/dataset distance computations performed.
    pub distance_computations: u64,
    /// Time spent in random initialization (or the exact-all-pairs
    /// shortcut for tiny datasets).
    pub init_time: Duration,
    /// Time spent in the descent iterations (sampling + scatter +
    /// local joins).
    pub iter_time: Duration,
    /// Descent iterations executed (0 when the exact path was taken).
    pub iterations: u32,
}

/// Try to make `a` and `b` neighbors of each other.
fn join<S: VectorStore + ?Sized>(
    oracle: &DistanceOracle<'_, S>,
    lists: &LockedLists,
    a: u32,
    b: u32,
) {
    let d = oracle.between_rows(a as usize, b as usize);
    lists.lock(a as usize).try_insert(Neighbor::new(b, d));
    lists.lock(b as usize).try_insert(Neighbor::new(a, d));
}

/// Exact k-NN lists by all-pairs distance (used for tiny datasets and
/// as the test oracle).
pub fn exact_all_pairs<S: VectorStore + ?Sized>(
    store: &S,
    metric: Metric,
    k: usize,
    threads: usize,
) -> Vec<Vec<Neighbor>> {
    let n = store.len();
    let threads = if threads == 0 { default_threads() } else { threads };
    let k = k.min(n.saturating_sub(1));
    let mut out: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    {
        let slots = std::sync::Mutex::new(&mut out);
        parallel_chunks(n, threads, |start, end| {
            let oracle = DistanceOracle::new(store, metric);
            let mut scratch = vec![0.0f32; store.dim()];
            let gang = crate::brute::GANG;
            let mut ids: Vec<u32> = Vec::with_capacity(gang);
            let mut dists = vec![0.0f32; gang];
            let mut local: Vec<(usize, Vec<Neighbor>)> = Vec::with_capacity(end - start);
            for v in start..end {
                store.get_into(v, &mut scratch);
                let prepared = oracle.prepare(&scratch);
                let mut top = crate::topk::TopK::new(k.max(1));
                let mut u0 = 0usize;
                while u0 < n {
                    let stop = (u0 + gang).min(n);
                    ids.clear();
                    ids.extend((u0..stop).filter(|&u| u != v).map(|u| u as u32));
                    oracle.to_rows(&prepared, &ids, &mut dists[..ids.len()]);
                    for (&u, &d) in ids.iter().zip(dists.iter()) {
                        if d < top.threshold() {
                            top.push(Neighbor::new(u, d));
                        }
                    }
                    u0 = stop;
                }
                local.push((v, top.into_sorted()));
            }
            let mut guard = slots.lock().unwrap();
            for (v, list) in local {
                guard[v] = list;
            }
        });
    }
    out
}

/// Fraction of true k-NN edges recovered by `approx` (graph recall).
pub fn knn_graph_recall(approx: &KnnLists, exact: &[Vec<Neighbor>]) -> f64 {
    assert_eq!(approx.len(), exact.len());
    if approx.is_empty() {
        return 1.0;
    }
    let mut hit = 0usize;
    let mut total = 0usize;
    for (v, e) in exact.iter().enumerate() {
        let a = approx.row(v);
        total += e.len();
        for t in e {
            if a.iter().any(|x| x.id == t.id) {
                hit += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::synth::{Family, SynthSpec};

    #[test]
    fn exact_on_tiny_dataset() {
        let spec = SynthSpec { dim: 4, n: 50, queries: 0, family: Family::Gaussian, seed: 3 };
        let (base, _) = spec.generate();
        let nd = NnDescent::new(NnDescentParams::new(5));
        let got = nd.build(&base, Metric::SquaredL2);
        let want = exact_all_pairs(&base, Metric::SquaredL2, 5, 1);
        assert_eq!(got.len(), 50);
        // Tiny datasets route through the exact path.
        assert_eq!(knn_graph_recall(&got, &want), 1.0);
    }

    #[test]
    fn lists_are_sorted_and_self_free() {
        let spec = SynthSpec { dim: 8, n: 4000, queries: 0, family: Family::Gaussian, seed: 9 };
        let (base, _) = spec.generate();
        let nd = NnDescent::new(NnDescentParams { threads: 2, ..NnDescentParams::new(8) });
        let lists = nd.build(&base, Metric::SquaredL2);
        for (v, list) in lists.rows().enumerate() {
            assert_eq!(list.len(), 8, "node {v}");
            assert!(list.iter().all(|n| n.id as usize != v), "self loop at {v}");
            assert!(list.windows(2).all(|w| w[0].dist <= w[1].dist), "unsorted at {v}");
            let mut ids: Vec<u32> = list.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 8, "duplicate neighbor at {v}");
        }
    }

    #[test]
    fn converges_to_high_graph_recall_on_easy_data() {
        let spec = SynthSpec { dim: 8, n: 4000, queries: 0, family: Family::Gaussian, seed: 1 };
        let (base, _) = spec.generate();
        let nd = NnDescent::new(NnDescentParams { rho: 1.0, ..NnDescentParams::new(10) });
        let lists = nd.build(&base, Metric::SquaredL2);
        let exact = exact_all_pairs(&base, Metric::SquaredL2, 10, 0);
        let recall = knn_graph_recall(&lists, &exact);
        assert!(recall > 0.90, "graph recall {recall}");
    }

    #[test]
    fn k_clamped_to_n_minus_one() {
        let spec = SynthSpec { dim: 4, n: 6, queries: 0, family: Family::Gaussian, seed: 2 };
        let (base, _) = spec.generate();
        let lists = NnDescent::new(NnDescentParams::new(32)).build(&base, Metric::SquaredL2);
        assert_eq!(lists.k(), 5);
        assert!(lists.rows().all(|l| l.len() == 5));
    }

    #[test]
    fn empty_and_singleton_datasets() {
        let empty = dataset::Dataset::empty(4);
        assert!(NnDescent::new(NnDescentParams::new(4))
            .build(&empty, Metric::SquaredL2)
            .is_empty());
        let single = dataset::Dataset::from_flat(vec![1.0, 2.0], 2);
        let lists = NnDescent::new(NnDescentParams::new(4)).build(&single, Metric::SquaredL2);
        assert_eq!(lists.to_vecs(), vec![Vec::new()]);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = SynthSpec { dim: 6, n: 3000, queries: 0, family: Family::Gaussian, seed: 5 };
        let (base, _) = spec.generate();
        let p = NnDescentParams { threads: 1, ..NnDescentParams::new(6) };
        let a = NnDescent::new(p.clone()).build(&base, Metric::SquaredL2);
        let b = NnDescent::new(p).build(&base, Metric::SquaredL2);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        // The determinism contract of the flat pipeline: per-node RNG
        // seeding, counting scatter, and snapshot-based termination
        // make the output independent of the chunking.
        let spec = SynthSpec { dim: 6, n: 3000, queries: 0, family: Family::Gaussian, seed: 5 };
        let (base, _) = spec.generate();
        let one = NnDescent::new(NnDescentParams { threads: 1, ..NnDescentParams::new(6) })
            .build(&base, Metric::SquaredL2);
        for threads in [2usize, 4, 7] {
            let multi = NnDescent::new(NnDescentParams { threads, ..NnDescentParams::new(6) })
                .build(&base, Metric::SquaredL2);
            assert_eq!(one, multi, "{threads} threads diverged from 1 thread");
        }
    }

    #[test]
    fn stats_report_iterations_and_timing() {
        let spec = SynthSpec { dim: 6, n: 3000, queries: 0, family: Family::Gaussian, seed: 5 };
        let (base, _) = spec.generate();
        let nd = NnDescent::new(NnDescentParams { threads: 1, ..NnDescentParams::new(6) });
        let (_, stats) = nd.build_with_stats(&base, Metric::SquaredL2);
        assert!(stats.iterations >= 1);
        assert!(stats.distance_computations > 0);
        assert!(stats.init_time + stats.iter_time > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "rho must be in")]
    fn invalid_rho_rejected() {
        NnDescent::new(NnDescentParams { rho: 0.0, ..NnDescentParams::new(4) });
    }

    #[test]
    fn row_guard_insert_matches_sorted_bounded_semantics() {
        let lists = LockedLists::new(1, 3);
        let mut g = lists.lock(0);
        assert!(g.try_insert(Neighbor::new(5, 5.0)));
        assert!(g.try_insert(Neighbor::new(1, 1.0)));
        assert!(g.try_insert(Neighbor::new(3, 3.0)));
        // Full: worse is rejected, duplicate is rejected, better evicts.
        assert!(!g.try_insert(Neighbor::new(9, 9.0)));
        assert!(!g.try_insert(Neighbor::new(1, 1.0)));
        assert!(g.try_insert(Neighbor::new(2, 2.0)));
        let ids: Vec<u32> = g.entries().iter().map(|e| e.n.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(g.entries().windows(2).all(|w| w[0].n.dist <= w[1].n.dist));
    }
}

/// Convert NN-Descent lists into a fixed-degree graph, truncating each
/// list to `degree` (the "plain k-NN graph" baseline of Fig. 3).
///
/// # Panics
/// Panics if the lists are shorter than `degree`.
pub fn lists_to_fixed_graph(lists: &KnnLists, degree: usize) -> graph::FixedDegreeGraph {
    assert!(lists.k() >= degree, "list shorter than degree {degree}");
    let n = lists.len();
    let mut flat: Vec<u32> = Vec::with_capacity(n * degree);
    for v in 0..n {
        flat.extend(lists.row(v)[..degree].iter().map(|n| n.id));
    }
    graph::FixedDegreeGraph::from_flat(flat, n, degree)
}

#[cfg(test)]
mod graph_conv_tests {
    use super::*;

    fn sample_lists() -> KnnLists {
        KnnLists::from_rows(&[
            vec![Neighbor::new(1, 0.1), Neighbor::new(2, 0.2)],
            vec![Neighbor::new(0, 0.1), Neighbor::new(2, 0.3)],
            vec![Neighbor::new(0, 0.2), Neighbor::new(1, 0.3)],
        ])
    }

    #[test]
    fn lists_convert_to_fixed_graph() {
        let lists = sample_lists();
        let g = lists_to_fixed_graph(&lists, 2);
        assert_eq!(g.degree(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        let g1 = lists_to_fixed_graph(&lists, 1);
        assert_eq!(g1.neighbors(2), &[0]);
    }

    #[test]
    #[should_panic(expected = "shorter than degree")]
    fn short_lists_rejected_in_conversion() {
        lists_to_fixed_graph(&sample_lists(), 3);
    }
}
