//! k-NN substrate: exact search for ground truth, bounded top-k
//! selection, NN-Descent initial graph construction (flat-arena,
//! parallel, thread-count deterministic), its naive serial reference,
//! and the small thread-parallel helpers shared by the builders in
//! this workspace.

// Every unsafe operation inside an `unsafe fn` must sit in an explicit
// `unsafe {}` block with its own SAFETY comment; the function-level
// `unsafe` only describes the caller contract. Enforced workspace-wide
// by `cargo run -p analyze -- audit`.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod brute;
pub mod flat;
#[cfg(all(loom, test))]
mod loom_models;
pub mod nn_descent;
pub mod parallel;
pub mod reference;
pub mod topk;

pub use brute::ground_truth;
pub use flat::{counting_scatter, CsrRows, FlatArena, KnnLists, ScatterScratch};
pub use nn_descent::{NnDescent, NnDescentParams, NnDescentStats};
pub use reference::reference_build;
pub use topk::{Neighbor, TopK};
