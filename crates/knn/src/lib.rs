//! k-NN substrate: exact search for ground truth, bounded top-k
//! selection, NN-Descent initial graph construction, and the small
//! thread-parallel helper shared by the builders in this workspace.

pub mod brute;
pub mod nn_descent;
pub mod parallel;
pub mod topk;

pub use brute::ground_truth;
pub use nn_descent::{NnDescent, NnDescentParams, NnDescentStats};
pub use topk::{Neighbor, TopK};
