//! k-NN substrate: exact search for ground truth, bounded top-k
//! selection, NN-Descent initial graph construction (flat-arena,
//! parallel, thread-count deterministic), its naive serial reference,
//! and the small thread-parallel helpers shared by the builders in
//! this workspace.

pub mod brute;
pub mod flat;
pub mod nn_descent;
pub mod parallel;
pub mod reference;
pub mod topk;

pub use brute::ground_truth;
pub use flat::{counting_scatter, CsrRows, FlatArena, KnnLists, ScatterScratch};
pub use nn_descent::{NnDescent, NnDescentParams, NnDescentStats};
pub use reference::reference_build;
pub use topk::{Neighbor, TopK};
