//! Bounded top-k selection.
//!
//! A fixed-capacity max-heap keyed on distance: push is O(log k) and
//! the worst element is evicted when full. Used by the exact searcher,
//! NN-Descent, and all baseline searchers.

/// A candidate: node id plus its distance to the query.
///
/// `Default` (id 0, distance 0.0) exists so flat arena buffers can be
/// pre-sized; a default entry is never a meaningful neighbor.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Neighbor {
    /// Dataset row id.
    pub id: u32,
    /// Smaller-is-closer distance.
    pub dist: f32,
}

impl Neighbor {
    /// Construct a neighbor entry.
    pub fn new(id: u32, dist: f32) -> Self {
        Neighbor { id, dist }
    }
}

/// Total order on (dist, id); ids break ties so results are
/// deterministic across runs and platforms. NaN distances order last.
#[inline]
pub fn cmp_neighbor(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    a.dist
        .partial_cmp(&b.dist)
        .unwrap_or_else(|| a.dist.is_nan().cmp(&b.dist.is_nan()))
        .then(a.id.cmp(&b.id))
}

/// Fixed-capacity max-heap that retains the k smallest-distance items.
#[derive(Clone, Debug)]
pub struct TopK {
    heap: Vec<Neighbor>, // max-heap by cmp_neighbor
    k: usize,
}

impl TopK {
    /// Create a selector keeping the `k` closest items.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopK { heap: Vec::with_capacity(k), k }
    }

    /// Number of retained items (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current worst (largest) retained distance, or +inf while the
    /// selector is not yet full. Useful as a pruning threshold.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap[0].dist
        }
    }

    /// Offer a candidate; keeps it only if among the k closest so far.
    #[inline]
    pub fn push(&mut self, item: Neighbor) {
        if self.heap.len() < self.k {
            self.heap.push(item);
            self.sift_up(self.heap.len() - 1);
        } else if cmp_neighbor(&item, &self.heap[0]) == std::cmp::Ordering::Less {
            self.heap[0] = item;
            self.sift_down(0);
        }
    }

    /// Consume into ascending-distance order.
    pub fn into_sorted(mut self) -> Vec<Neighbor> {
        self.heap.sort_unstable_by(cmp_neighbor);
        self.heap
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if cmp_neighbor(&self.heap[i], &self.heap[parent]) == std::cmp::Ordering::Greater {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < n
                && cmp_neighbor(&self.heap[l], &self.heap[largest]) == std::cmp::Ordering::Greater
            {
                largest = l;
            }
            if r < n
                && cmp_neighbor(&self.heap[r], &self.heap[largest]) == std::cmp::Ordering::Greater
            {
                largest = r;
            }
            if largest == i {
                return;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 4.0), (3, 2.0), (4, 3.0)] {
            t.push(Neighbor::new(id, d));
        }
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 3, 4]);
    }

    #[test]
    fn fewer_than_k_items() {
        let mut t = TopK::new(10);
        t.push(Neighbor::new(7, 0.5));
        assert_eq!(t.len(), 1);
        assert_eq!(t.threshold(), f32::INFINITY);
        let out = t.into_sorted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 7);
    }

    #[test]
    fn threshold_tracks_worst() {
        let mut t = TopK::new(2);
        t.push(Neighbor::new(0, 9.0));
        t.push(Neighbor::new(1, 3.0));
        assert_eq!(t.threshold(), 9.0);
        t.push(Neighbor::new(2, 1.0)); // evicts 9.0
        assert_eq!(t.threshold(), 3.0);
    }

    #[test]
    fn ties_broken_by_id() {
        let mut t = TopK::new(2);
        t.push(Neighbor::new(5, 1.0));
        t.push(Neighbor::new(3, 1.0));
        t.push(Neighbor::new(1, 1.0));
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        TopK::new(0);
    }

    #[test]
    fn matches_full_sort_prefix() {
        // Deterministic pseudo-random distances.
        let mut x = 12345u64;
        let mut items = Vec::new();
        for id in 0..500u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            items.push(Neighbor::new(id, (x >> 33) as f32 / 1e6));
        }
        let mut t = TopK::new(17);
        for &it in &items {
            t.push(it);
        }
        let got = t.into_sorted();
        let mut want = items.clone();
        want.sort_unstable_by(cmp_neighbor);
        want.truncate(17);
        assert_eq!(got, want);
    }

    #[test]
    fn nan_distances_order_last() {
        let mut t = TopK::new(2);
        t.push(Neighbor::new(0, f32::NAN));
        t.push(Neighbor::new(1, 1.0));
        t.push(Neighbor::new(2, 2.0));
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 2]);
    }
}
