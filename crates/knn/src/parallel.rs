//! Minimal data-parallel helper shared by the index builders.
//!
//! `rayon` is outside the allowed dependency list, so this module
//! provides the one primitive the workspace needs: run a closure over
//! index ranges on `num_threads` scoped threads with static chunking.
//! Builders in this repo are embarrassingly parallel over nodes or
//! queries, so static chunking is sufficient and keeps the code
//! auditable.

/// Number of worker threads to use: the `CAGRA_THREADS` environment
/// variable if set, otherwise `std::thread::available_parallelism()`.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("CAGRA_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Invoke `f(start, end)` over disjoint chunks of `0..n` on up to
/// `threads` scoped threads. Falls back to a direct call when `n` is
/// small or one thread is requested (avoids spawn overhead — the
/// "handle common special cases first" idiom).
pub fn parallel_chunks<F>(n: usize, threads: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 2 {
        f(0, n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                break;
            }
            let f = &f;
            scope.spawn(move || f(start, end));
        }
    });
}

/// Map `0..n` to a `Vec<T>` in parallel, preserving index order.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    {
        let slots = SendPtr(out.as_mut_ptr());
        parallel_chunks(n, threads, |start, end| {
            // SAFETY: each chunk writes a disjoint index range of `out`,
            // and `out` outlives the scoped threads.
            let base = slots;
            for i in start..end {
                unsafe { *base.0.add(i) = f(i) };
            }
        });
    }
    out
}

struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: used only for disjoint-range writes inside parallel_chunks.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_chunks(n, 4, |s, e| {
            for i in s..e {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_items_is_a_noop() {
        let called = AtomicUsize::new(0);
        parallel_chunks(0, 8, |s, e| {
            assert_eq!((s, e), (0, 0));
            called.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(called.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn more_threads_than_items() {
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        parallel_chunks(3, 64, |s, e| {
            for i in s..e {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(257, 4, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
