//! Minimal data-parallel helper shared by the index builders.
//!
//! `rayon` is outside the allowed dependency list, so this module
//! provides the one primitive the workspace needs: run a closure over
//! index ranges on `num_threads` scoped threads with static chunking.
//! Builders in this repo are embarrassingly parallel over nodes or
//! queries, so static chunking is sufficient and keeps the code
//! auditable.

/// Number of worker threads to use: the `CAGRA_THREADS` environment
/// variable if set, otherwise `std::thread::available_parallelism()`.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("CAGRA_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The canonical static chunking of `0..n` over up to `threads`
/// workers: contiguous equal-size ranges (the last may be short).
/// Every parallel helper in the workspace chunks this way, so code
/// that pre-splits buffers (arena chunk views, histogram rows) lines
/// up exactly with the ranges the workers receive. Always returns at
/// least one range (`(0, 0)` when `n == 0`).
pub fn chunk_ranges(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(threads).max(1);
    let mut out = Vec::with_capacity(threads);
    let mut start = 0usize;
    while start < n {
        let end = (start + chunk).min(n);
        out.push((start, end));
        start = end;
    }
    if out.is_empty() {
        out.push((0, 0));
    }
    out
}

/// Invoke `f(start, end)` over disjoint chunks of `0..n` on up to
/// `threads` scoped threads. Falls back to a direct call when `n` is
/// small or one thread is requested (avoids spawn overhead — the
/// "handle common special cases first" idiom).
pub fn parallel_chunks<F>(n: usize, threads: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let ranges = chunk_ranges(n, threads);
    if ranges.len() == 1 {
        f(ranges[0].0, ranges[0].1);
        return;
    }
    std::thread::scope(|scope| {
        for &(start, end) in &ranges {
            let f = &f;
            scope.spawn(move || f(start, end));
        }
    });
}

/// Fill a flat row-major `n_rows x row_len` buffer in parallel:
/// `f(&mut state, row_index, row)` runs once per row, rows are handed
/// out in disjoint contiguous chunks (one per worker), and `init`
/// creates the per-worker scratch state. Entirely safe: the buffer is
/// pre-split at chunk boundaries, so no worker can alias another's
/// rows. This is the primitive behind the flat-arena construction
/// pipeline (reorder/prune output, merge output).
pub fn parallel_fill_rows_with<T, S, I, F>(
    buf: &mut [T],
    n_rows: usize,
    row_len: usize,
    threads: usize,
    init: I,
    f: F,
) where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    assert_eq!(buf.len(), n_rows * row_len, "row buffer shape mismatch");
    let ranges = chunk_ranges(n_rows, threads);
    if ranges.len() == 1 {
        let mut state = init();
        for v in 0..n_rows {
            f(&mut state, v, &mut buf[v * row_len..(v + 1) * row_len]);
        }
        return;
    }
    let mut rest = buf;
    std::thread::scope(|scope| {
        for &(start, end) in &ranges {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut((end - start) * row_len);
            rest = tail;
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                let mut state = init();
                let mut head = head;
                for v in start..end {
                    let (row, t) = std::mem::take(&mut head).split_at_mut(row_len);
                    f(&mut state, v, row);
                    head = t;
                }
            });
        }
    });
}

/// Map `0..n` to a `Vec<T>` in parallel, preserving index order.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n, threads, || (), |(), i| f(i))
}

/// [`parallel_map`] with persistent per-thread state: `init` runs once
/// on each worker thread and the resulting state is passed (mutably)
/// to every `f(&mut state, i)` call that thread serves.
///
/// This is the primitive behind allocation-free batch search: the
/// state is a scratch arena created once per worker and recycled
/// across all of its items. Chunking is static (one contiguous chunk
/// per thread), so each state sees its chunk's indices in ascending
/// order.
pub fn parallel_map_with<T, S, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    {
        let slots = SendPtr::new(&mut out);
        parallel_chunks(n, threads, |start, end| {
            let base = slots;
            let mut state = init();
            for i in start..end {
                let x = f(&mut state, i);
                // SAFETY: `parallel_chunks` hands each worker a
                // disjoint `start..end` range of `0..n == out.len()`,
                // so `i` is in bounds and no other thread touches
                // index `i`; `out` outlives the scoped threads.
                unsafe { base.write(i, x) };
            }
        });
    }
    out
}

/// Raw mutable base pointer that workers move across `thread::scope`
/// boundaries for *disjoint-range writes only*: every user partitions
/// `0..len` into per-worker index sets before spawning, and each index
/// is written by exactly one worker while the owning buffer outlives
/// the scope. Under `debug_invariants` the allocation length rides
/// along and every write is bounds-asserted.
pub(crate) struct SendPtr<T> {
    ptr: *mut T,
    #[cfg(feature = "debug_invariants")]
    len: usize,
}

impl<T> SendPtr<T> {
    /// Capture `buf`'s base pointer (and, under `debug_invariants`,
    /// its length) for scoped-thread writes.
    pub(crate) fn new(buf: &mut [T]) -> Self {
        SendPtr {
            ptr: buf.as_mut_ptr(),
            #[cfg(feature = "debug_invariants")]
            len: buf.len(),
        }
    }

    /// Write `x` to slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds of the captured buffer, the buffer must
    /// still be live, and no other thread may concurrently read or
    /// write slot `i` (callers guarantee this by partitioning indices
    /// across workers before spawning).
    #[inline]
    pub(crate) unsafe fn write(self, i: usize, x: T) {
        #[cfg(feature = "debug_invariants")]
        assert!(i < self.len, "SendPtr write out of bounds: {i} >= {}", self.len);
        // SAFETY: forwarded caller contract — `i` in bounds of a live
        // buffer and this thread is the only one touching slot `i`.
        unsafe { *self.ptr.add(i) = x };
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: sending the pointer to another thread only ever results in
// values of `T` being *moved into* the buffer from that thread (see
// `write`'s contract: disjoint slots, no reads), which is exactly what
// `T: Send` licenses. No `&T`/`&mut T` to the same slot ever exists on
// two threads, so `T: Sync` is not required.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: `&SendPtr` only exposes `Copy` + the by-value `write` above,
// so sharing the wrapper across threads grants nothing beyond what
// `Send` already granted: disjoint-slot moves of `T`. `T: Send`
// therefore suffices here too (`T: Sync` would be needed only if two
// threads could hold references into the same slot, which the write
// contract rules out).
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_chunks(n, 4, |s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_items_is_a_noop() {
        let called = AtomicUsize::new(0);
        parallel_chunks(0, 8, |s, e| {
            assert_eq!((s, e), (0, 0));
            called.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(called.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn more_threads_than_items() {
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        parallel_chunks(3, 64, |s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(257, 4, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn parallel_map_with_reuses_state_within_a_thread() {
        // Each worker's state counts the items it served; the total
        // must cover every index exactly once, and (with one chunk per
        // thread) at least one state must serve more than one item.
        let n = 100;
        let out = parallel_map_with(
            n,
            4,
            || 0usize,
            |served, i| {
                *served += 1;
                (i, *served)
            },
        );
        assert_eq!(out.len(), n);
        for (idx, (i, served)) in out.iter().enumerate() {
            assert_eq!(*i, idx);
            assert!(*served >= 1);
        }
        assert!(out.iter().any(|&(_, served)| served > 1), "no state was reused");
        let total: usize = out.iter().filter(|&&(_, s)| s == 1).count();
        assert!(total <= 4, "at most one fresh state per thread, got {total}");
    }

    #[test]
    fn parallel_map_with_single_thread_sees_all_items() {
        let out = parallel_map_with(
            10,
            1,
            || 0usize,
            |count, _| {
                *count += 1;
                *count
            },
        );
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }
}
