//! Naive serial NN-Descent reference.
//!
//! A deliberately simple `Vec<Vec<_>>`-based re-implementation of the
//! exact algorithm the flat parallel pipeline in [`crate::nn_descent`]
//! runs: same per-node RNG seeds, same sampling and subsampling rules,
//! same bounded sorted-insert join semantics, same snapshot-based
//! termination. Because the optimized pipeline is deterministic for
//! any thread count, this reference lets the `build_parity` test
//! assert *bit-identical* output instead of approximate agreement.
//!
//! Kept permanently (not test-gated): it documents the algorithm
//! without the arena machinery and guards against silent semantic
//! drift in future optimization work.

use crate::flat::KnnLists;
use crate::nn_descent::{
    exact_all_pairs, init_seed, iter_seed, NnDescentParams, SALT_REV_NEW, SALT_REV_OLD, SALT_SAMPLE,
};
use crate::topk::{cmp_neighbor, Neighbor};
use dataset::VectorStore;
use distance::{DistanceOracle, Metric};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

#[derive(Clone, Copy)]
struct RefEntry {
    n: Neighbor,
    is_new: bool,
}

/// Serial reference build: returns exactly what
/// [`crate::NnDescent::build`] returns, computed the slow plain way.
pub fn reference_build<S: VectorStore + ?Sized>(
    params: &NnDescentParams,
    store: &S,
    metric: Metric,
) -> KnnLists {
    assert!(params.k > 0, "k must be positive");
    assert!(params.rho > 0.0 && params.rho <= 1.0, "rho must be in (0, 1]");
    let n = store.len();
    if n == 0 {
        return KnnLists::from_rows(&[]);
    }
    let k = params.k.min(n - 1);
    if k == 0 {
        return KnnLists::from_flat(Vec::new(), n, 0);
    }
    if n <= 2048 && n * n <= 64 * n * params.k.max(1) {
        return KnnLists::from_rows(&exact_all_pairs(store, metric, k, 1));
    }

    let seed = params.seed;
    let oracle = DistanceOracle::new(store, metric);
    let mut scratch = vec![0.0f32; store.dim()];
    let mut dists = vec![0.0f32; k];

    // Random initialization, per-node RNG.
    let mut lists: Vec<Vec<RefEntry>> = Vec::with_capacity(n);
    for v in 0..n {
        let mut rng = StdRng::seed_from_u64(init_seed(seed, v));
        store.get_into(v, &mut scratch);
        let prepared = oracle.prepare(&scratch);
        let mut cand: Vec<u32> = Vec::with_capacity(k);
        while cand.len() < k {
            let u = rng.gen_range(0..n);
            if u == v || cand.iter().any(|&c| c as usize == u) {
                continue;
            }
            cand.push(u as u32);
        }
        oracle.to_rows(&prepared, &cand, &mut dists[..k]);
        let mut list: Vec<RefEntry> = cand
            .iter()
            .zip(dists.iter())
            .map(|(&u, &d)| RefEntry { n: Neighbor::new(u, d), is_new: true })
            .collect();
        list.sort_unstable_by(|a, b| cmp_neighbor(&a.n, &b.n));
        lists.push(list);
    }

    let max_samples = ((params.rho * k as f64).ceil() as usize).max(1);
    let stop_at = (params.delta * n as f64 * k as f64).max(1.0) as u64;
    let mut prev_ids: Vec<u32> = lists.iter().flat_map(|l| l.iter().map(|e| e.n.id)).collect();

    for iter in 0..params.max_iters {
        // Phase 1: forward samples; sampled new entries become old.
        let mut fwd_new: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut fwd_old: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n {
            let mut rng = StdRng::seed_from_u64(iter_seed(seed, SALT_SAMPLE, iter, v));
            let list = &mut lists[v];
            let mut positions: Vec<usize> = Vec::new();
            for (i, e) in list.iter().enumerate() {
                if e.is_new {
                    positions.push(i);
                } else {
                    fwd_old[v].push(e.n.id);
                }
            }
            positions.shuffle(&mut rng);
            positions.truncate(max_samples);
            for &i in &positions {
                fwd_new[v].push(list[i].n.id);
                list[i].is_new = false;
            }
        }

        // Phase 2: reverse candidates in ascending source order, then
        // per-node shuffles choosing which prefix survives.
        let mut rev_new: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut rev_old: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n {
            for &u in &fwd_new[v] {
                rev_new[u as usize].push(v as u32);
            }
            for &u in &fwd_old[v] {
                rev_old[u as usize].push(v as u32);
            }
        }
        for v in 0..n {
            if rev_new[v].len() > max_samples {
                let mut rng = StdRng::seed_from_u64(iter_seed(seed, SALT_REV_NEW, iter, v));
                rev_new[v].shuffle(&mut rng);
                rev_new[v].truncate(max_samples);
            }
            if rev_old[v].len() > max_samples {
                let mut rng = StdRng::seed_from_u64(iter_seed(seed, SALT_REV_OLD, iter, v));
                rev_old[v].shuffle(&mut rng);
                rev_old[v].truncate(max_samples);
            }
        }

        // Phase 3: local joins.
        for v in 0..n {
            let mut news: Vec<u32> = fwd_new[v].iter().chain(rev_new[v].iter()).copied().collect();
            news.sort_unstable();
            news.dedup();
            let mut olds: Vec<u32> = fwd_old[v].iter().chain(rev_old[v].iter()).copied().collect();
            olds.sort_unstable();
            olds.dedup();
            for (ai, &a) in news.iter().enumerate() {
                for &b in &news[ai + 1..] {
                    join(&oracle, &mut lists, a, b, k);
                }
                for &b in olds.iter() {
                    if a != b {
                        join(&oracle, &mut lists, a, b, k);
                    }
                }
            }
        }

        // Termination: positional id changes against the snapshot.
        let mut changed = 0u64;
        for (v, list) in lists.iter().enumerate() {
            for (slot, e) in prev_ids[v * k..(v + 1) * k].iter_mut().zip(list) {
                if *slot != e.n.id {
                    changed += 1;
                    *slot = e.n.id;
                }
            }
        }
        if changed < stop_at {
            break;
        }
    }

    let rows: Vec<Vec<Neighbor>> =
        lists.into_iter().map(|l| l.into_iter().map(|e| e.n).collect()).collect();
    KnnLists::from_rows(&rows)
}

fn join<S: VectorStore + ?Sized>(
    oracle: &DistanceOracle<'_, S>,
    lists: &mut [Vec<RefEntry>],
    a: u32,
    b: u32,
    k: usize,
) {
    let d = oracle.between_rows(a as usize, b as usize);
    try_insert(&mut lists[a as usize], Neighbor::new(b, d), k);
    try_insert(&mut lists[b as usize], Neighbor::new(a, d), k);
}

fn try_insert(list: &mut Vec<RefEntry>, n: Neighbor, k: usize) {
    if list.len() == k {
        if let Some(worst) = list.last() {
            if cmp_neighbor(&n, &worst.n) != std::cmp::Ordering::Less {
                return;
            }
        }
    }
    if list.iter().any(|e| e.n.id == n.id) {
        return;
    }
    let pos = list.partition_point(|e| cmp_neighbor(&e.n, &n) == std::cmp::Ordering::Less);
    list.insert(pos, RefEntry { n, is_new: true });
    if list.len() > k {
        list.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn_descent::NnDescent;
    use dataset::synth::{Family, SynthSpec};

    /// The headline determinism contract: the flat parallel pipeline
    /// is bit-identical to this naive serial implementation, at one
    /// thread and at several.
    #[test]
    fn optimized_build_matches_reference_bitwise() {
        // n > 64 * k so the descent path (not exact all-pairs) runs.
        let spec = SynthSpec { dim: 6, n: 1200, queries: 0, family: Family::Gaussian, seed: 11 };
        let (base, _) = spec.generate();
        let params = NnDescentParams { threads: 1, ..NnDescentParams::new(12) };
        let want = reference_build(&params, &base, Metric::SquaredL2);
        for threads in [1usize, 4] {
            let p = NnDescentParams { threads, ..params.clone() };
            let got = NnDescent::new(p).build(&base, Metric::SquaredL2);
            assert_eq!(got, want, "descent diverged from reference at {threads} threads");
        }
    }

    #[test]
    fn reference_takes_exact_path_on_tiny_datasets() {
        let spec = SynthSpec { dim: 4, n: 50, queries: 0, family: Family::Gaussian, seed: 3 };
        let (base, _) = spec.generate();
        let params = NnDescentParams::new(5);
        let want = KnnLists::from_rows(&exact_all_pairs(&base, Metric::SquaredL2, 5, 1));
        assert_eq!(reference_build(&params, &base, Metric::SquaredL2), want);
    }
}
