//! `cfg(loom)` concurrency models for the two genuinely concurrent
//! protocols in the construction pipeline (ISSUE 4 / DESIGN.md
//! "Soundness & analysis"):
//!
//! 1. **Slab-backed `LockedLists` insert/read** — concurrent
//!    `try_insert`s through per-row mutexes must behave as a bounded
//!    sorted *set*: the final row is the k smallest of the offered
//!    multiset, independent of interleaving, and never exceeds `cap`.
//! 2. **Snapshot-diff termination handshake** — NN-Descent decides
//!    termination by counting positional id changes against a
//!    snapshot *after* the join phase's scope barrier, accumulating
//!    per-worker counts into an atomic. The count must be a pure
//!    function of (snapshot, final lists) — never of the join
//!    interleaving — or the iteration count (and hence the output
//!    graph) would depend on thread scheduling.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p knn --lib loom`.
//! Under the offline `shims/loom` stand-in these models are bounded
//! stress runs over the *real* `LockedLists`; under the genuine loom
//! crate the same sources compile against the instrumented scheduler
//! (see shims/loom's crate docs for the fidelity difference).

use crate::nn_descent::{LockedLists, NnDescent, NnDescentParams};
use crate::topk::Neighbor;
use distance::Metric;
use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

/// Ids of row `v`, in stored (ascending-distance) order.
fn row_ids(lists: &LockedLists, v: usize) -> Vec<u32> {
    lists.lock(v).entries().iter().map(|e| e.n.id).collect()
}

/// Model 1: concurrent inserts into shared rows keep set semantics.
#[test]
fn locked_lists_inserts_are_interleaving_independent() {
    loom::model(|| {
        let lists = Arc::new(LockedLists::new(2, 3));
        // Two workers offer overlapping neighbor sets to both rows.
        // Whatever the interleaving, each row must end as the 3
        // smallest distinct offers, sorted ascending by distance.
        let offers_a = [(0usize, 5u32, 5.0f32), (0, 1, 1.0), (1, 7, 7.0)];
        let offers_b = [(0usize, 3u32, 3.0f32), (0, 2, 2.0), (1, 4, 4.0), (0, 1, 1.0)];
        let handles: Vec<_> = [&offers_a[..], &offers_b[..]]
            .into_iter()
            .map(|offers| {
                let lists = Arc::clone(&lists);
                let offers = offers.to_vec();
                thread::spawn(move || {
                    for (v, id, d) in offers {
                        lists.lock(v).try_insert(Neighbor::new(id, d));
                        // Reads under the same lock must always see a
                        // sorted, length-bounded row.
                        let g = lists.lock(v);
                        assert!(g.len() <= 3);
                        assert!(g.entries().windows(2).all(|w| w[0].n.dist <= w[1].n.dist));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(row_ids(&lists, 0), vec![1, 2, 3], "row 0 is not the 3 smallest offers");
        assert_eq!(row_ids(&lists, 1), vec![4, 7], "row 1 is not the offered pair");
    });
}

/// Model 2: the snapshot-diff change count is a pure function of the
/// lists, not of the join interleaving.
#[test]
fn snapshot_handshake_count_is_schedule_independent() {
    loom::model(|| {
        let n = 4usize;
        let k = 2usize;
        let lists = Arc::new(LockedLists::new(n, k));
        // Deterministic initial lists (the iteration's snapshot base).
        for v in 0..n {
            let mut g = lists.lock(v);
            g.try_insert(Neighbor::new(100 + v as u32, 50.0 + v as f32));
            g.try_insert(Neighbor::new(200 + v as u32, 60.0 + v as f32));
        }
        let snapshot: Vec<Vec<u32>> = (0..n).map(|v| row_ids(&lists, v)).collect();

        // Join phase: two workers offer improvements to overlapping
        // rows, racing on rows 1 and 2.
        let offers_a = [(0usize, 10u32, 1.0f32), (1, 11, 2.0), (2, 12, 3.0)];
        let offers_b = [(1usize, 21u32, 4.0f32), (2, 22, 5.0), (3, 23, 6.0)];
        let handles: Vec<_> = [offers_a, offers_b]
            .into_iter()
            .map(|offers| {
                let lists = Arc::clone(&lists);
                thread::spawn(move || {
                    for (v, id, d) in offers {
                        lists.lock(v).try_insert(Neighbor::new(id, d));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Handshake: workers count positional changes of disjoint row
        // halves into one atomic, after the join barrier (mirroring
        // the scope-then-fetch_add structure in `NnDescent::descent`).
        let changed = Arc::new(AtomicU64::new(0));
        let halves: Vec<_> = [(0usize, 2usize), (2, 4)]
            .into_iter()
            .map(|(start, end)| {
                let lists = Arc::clone(&lists);
                let changed = Arc::clone(&changed);
                let snap = snapshot[start..end].to_vec();
                thread::spawn(move || {
                    let mut local = 0u64;
                    for (i, v) in (start..end).enumerate() {
                        let now = row_ids(&lists, v);
                        local += now.iter().zip(&snap[i]).filter(|(a, b)| a != b).count() as u64;
                    }
                    changed.fetch_add(local, Ordering::Relaxed);
                })
            })
            .collect();
        for h in halves {
            h.join().unwrap();
        }
        // Every row's improvements displace both snapshot positions:
        // row 0 gets {10}, rows 1/2 get two better ids each, row 3
        // gets {23} — so exactly 2 changed positions per row.
        assert_eq!(changed.load(Ordering::Relaxed), (n * k) as u64);
        // And the final lists are the k-smallest sets regardless of
        // which worker won each race.
        assert_eq!(row_ids(&lists, 1), vec![11, 21]);
        assert_eq!(row_ids(&lists, 2), vec![12, 22]);
    });
}

/// End-to-end sanity under the model runtime: a tiny real build stays
/// deterministic across thread counts (stress form of the
/// `thread_count_does_not_change_the_result` tier-1 test).
#[test]
fn nn_descent_output_is_thread_count_independent_under_model() {
    use dataset::synth::{Family, SynthSpec};
    let spec = SynthSpec { dim: 4, n: 600, queries: 0, family: Family::Gaussian, seed: 11 };
    let (base, _) = spec.generate();
    let build = |threads| {
        NnDescent::new(NnDescentParams { threads, max_iters: 3, ..NnDescentParams::new(4) })
            .build(&base, Metric::SquaredL2)
    };
    let one = build(1);
    for _ in 0..4 {
        assert_eq!(one, build(3), "3-thread build diverged from serial");
    }
}
