//! Flat-arena storage for the construction pipeline.
//!
//! The paper's whole build — NN-Descent, detour reordering, pruning,
//! reverse-edge addition, merge — is embarrassingly parallel over
//! nodes (Sec. III-B). The enemies of that parallelism on a CPU are
//! the same ones a GPU port would face: per-node heap allocations
//! (`Vec<Vec<_>>` rebuilt every iteration) and per-node locks guarding
//! output lists. This module provides the allocation-flat substitutes:
//!
//! * [`KnnLists`] — the NN-Descent result as one `n × k` slab of
//!   [`Neighbor`] entries (every row has exactly `k` entries, sorted
//!   ascending by distance).
//! * [`FlatArena`] — a fixed-stride `n × cap` scratch slab with a
//!   per-row length array, cleared in place and reused across
//!   NN-Descent iterations.
//! * [`CsrRows`] — variable-stride rows over one backing buffer
//!   (offsets + data, both reused across iterations), filled by the
//!   deterministic [`counting_scatter`].
//!
//! [`counting_scatter`] is the piece that makes reverse-edge
//! construction parallel *and* bit-deterministic: a two-pass counting
//! scatter (parallel per-chunk histograms → serial prefix-sum over
//! targets → parallel placement through per-chunk cursors) that lands
//! every item at exactly the index a serial ascending-source scatter
//! would have used, for any thread count and any chunking.

use crate::parallel::{chunk_ranges, SendPtr};
use crate::topk::Neighbor;

/// NN-Descent output: `n` neighbor lists of exactly `k` entries each,
/// stored as one flat row-major slab.
#[derive(Clone, Debug, PartialEq)]
pub struct KnnLists {
    data: Vec<Neighbor>,
    n: usize,
    k: usize,
}

impl KnnLists {
    /// Wrap a flat row-major buffer (`data.len() == n * k`).
    pub fn from_flat(data: Vec<Neighbor>, n: usize, k: usize) -> Self {
        assert_eq!(data.len(), n * k, "knn list buffer shape mismatch");
        KnnLists { data, n, k }
    }

    /// Flatten per-node rows; every row must have the same length.
    pub fn from_rows(rows: &[Vec<Neighbor>]) -> Self {
        let n = rows.len();
        let k = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * k);
        for (v, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), k, "row {v} has {} entries, expected {k}", row.len());
            data.extend_from_slice(row);
        }
        KnnLists { data, n, k }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Entries per node.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Node `v`'s neighbor list, sorted ascending by distance.
    #[inline]
    pub fn row(&self, v: usize) -> &[Neighbor] {
        &self.data[v * self.k..(v + 1) * self.k]
    }

    /// Iterate rows in node order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Neighbor]> {
        self.data.chunks_exact(self.k.max(1)).take(self.n)
    }

    /// Copy out as per-node `Vec`s (tests and adapters).
    pub fn to_vecs(&self) -> Vec<Vec<Neighbor>> {
        (0..self.n).map(|v| self.row(v).to_vec()).collect()
    }
}

/// Fixed-stride scratch arena: one `n × cap` slab plus a per-row
/// length array. `clear` resets lengths without touching the slab, so
/// the allocation survives across NN-Descent iterations.
#[derive(Clone, Debug)]
pub struct FlatArena<T> {
    slab: Vec<T>,
    lens: Vec<u32>,
    cap: usize,
}

impl<T: Copy + Default> FlatArena<T> {
    /// An arena of `n` rows with capacity `cap` each, all empty.
    pub fn new(n: usize, cap: usize) -> Self {
        FlatArena { slab: vec![T::default(); n * cap], lens: vec![0; n], cap }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// True when the arena has no rows.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Row capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Reset every row to empty, keeping the allocation.
    pub fn clear(&mut self) {
        self.lens.fill(0);
    }

    /// Row `v`'s current contents.
    #[inline]
    pub fn row(&self, v: usize) -> &[T] {
        &self.slab[v * self.cap..v * self.cap + self.lens[v] as usize]
    }

    /// Append to row `v`.
    ///
    /// # Panics
    /// Panics if the row is at capacity.
    #[inline]
    pub fn push(&mut self, v: usize, x: T) {
        let len = self.lens[v] as usize;
        assert!(len < self.cap, "arena row {v} overflow (cap {})", self.cap);
        self.slab[v * self.cap + len] = x;
        self.lens[v] += 1;
    }

    /// Split into disjoint per-chunk mutable views matching `ranges`
    /// (as produced by [`chunk_ranges`]); each view may only touch its
    /// own rows, which makes parallel row writes safe without locks.
    pub fn chunks_mut<'a>(&'a mut self, ranges: &[(usize, usize)]) -> Vec<ArenaChunkMut<'a, T>> {
        let cap = self.cap;
        let mut out = Vec::with_capacity(ranges.len());
        let mut slab: &mut [T] = &mut self.slab;
        let mut lens: &mut [u32] = &mut self.lens;
        let mut consumed = 0usize;
        for &(start, end) in ranges {
            assert_eq!(start, consumed, "ranges must tile the arena contiguously");
            let rows = end - start;
            let (s_head, s_tail) = std::mem::take(&mut slab).split_at_mut(rows * cap);
            let (l_head, l_tail) = std::mem::take(&mut lens).split_at_mut(rows);
            slab = s_tail;
            lens = l_tail;
            consumed = end;
            out.push(ArenaChunkMut { start, cap, slab: s_head, lens: l_head });
        }
        out
    }
}

/// Mutable view over a contiguous row range of a [`FlatArena`];
/// indices are global row ids.
pub struct ArenaChunkMut<'a, T> {
    start: usize,
    cap: usize,
    slab: &'a mut [T],
    lens: &'a mut [u32],
}

impl<T: Copy> ArenaChunkMut<'_, T> {
    /// Append to (global) row `v`.
    #[inline]
    pub fn push(&mut self, v: usize, x: T) {
        let r = v - self.start;
        let len = self.lens[r] as usize;
        assert!(len < self.cap, "arena row {v} overflow (cap {})", self.cap);
        self.slab[r * self.cap + len] = x;
        self.lens[r] += 1;
    }
}

/// Variable-stride rows over one reused backing buffer (CSR layout).
/// Filled by [`counting_scatter`]; `offsets` has `rows + 1` entries.
#[derive(Clone, Debug, Default)]
pub struct CsrRows<T> {
    offsets: Vec<u32>,
    data: Vec<T>,
}

impl<T: Copy + Default> CsrRows<T> {
    /// An empty buffer (backing storage grows on first scatter).
    pub fn new() -> Self {
        CsrRows { offsets: Vec::new(), data: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `v`'s contents.
    #[inline]
    pub fn row(&self, v: usize) -> &[T] {
        &self.data[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Run `f(row_index, row)` over every row with mutable access, in
    /// parallel chunks of whole rows. Safe: the data buffer is
    /// pre-split at chunk boundaries.
    pub fn par_rows_mut<F>(&mut self, threads: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = self.len();
        let ranges = chunk_ranges(n, threads);
        let offsets = &self.offsets;
        if ranges.len() == 1 {
            let mut rest: &mut [T] = &mut self.data;
            for v in 0..n {
                let len = (offsets[v + 1] - offsets[v]) as usize;
                let (row, tail) = std::mem::take(&mut rest).split_at_mut(len);
                f(v, row);
                rest = tail;
            }
            return;
        }
        let mut rest: &mut [T] = &mut self.data;
        let mut consumed = 0usize;
        std::thread::scope(|scope| {
            for &(start, end) in &ranges {
                let take = offsets[end] as usize - consumed;
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
                rest = tail;
                consumed = offsets[end] as usize;
                let f = &f;
                scope.spawn(move || {
                    let mut head = head;
                    for v in start..end {
                        let len = (offsets[v + 1] - offsets[v]) as usize;
                        let (row, t) = std::mem::take(&mut head).split_at_mut(len);
                        f(v, row);
                        head = t;
                    }
                });
            }
        });
    }
}

/// Reused per-chunk histogram storage for [`counting_scatter`]
/// (`chunks × n_targets` counters).
#[derive(Clone, Debug, Default)]
pub struct ScatterScratch {
    hist: Vec<u32>,
}

impl ScatterScratch {
    /// An empty scratch (storage grows on first scatter).
    pub fn new() -> Self {
        ScatterScratch::default()
    }
}

/// Deterministic two-pass parallel counting scatter.
///
/// `each(v)` yields `(target, payload)` items for source `v`. Every
/// payload is placed in `out.row(target)` at exactly the position a
/// serial `for v in 0..n_sources { push }` loop would have used
/// (ascending source order within each target row), independent of
/// thread count:
///
/// 1. parallel count — each source chunk histograms its targets;
/// 2. serial prefix sum — per-target offsets plus per-(chunk, target)
///    starting cursors (`O(chunks × n_targets)` additions);
/// 3. parallel placement — each chunk writes through its own cursors,
///    so all writes are disjoint by construction.
pub fn counting_scatter<T, I, F>(
    n_targets: usize,
    n_sources: usize,
    threads: usize,
    scratch: &mut ScatterScratch,
    out: &mut CsrRows<T>,
    each: F,
) where
    T: Copy + Default + Send,
    I: Iterator<Item = (u32, T)>,
    F: Fn(usize) -> I + Sync,
{
    if n_targets == 0 {
        out.offsets.clear();
        out.offsets.resize(1, 0);
        out.data.clear();
        return;
    }
    let ranges = chunk_ranges(n_sources, threads);
    let nchunks = ranges.len();
    scratch.hist.clear();
    scratch.hist.resize(nchunks * n_targets, 0);

    // Pass 1: per-chunk histograms (disjoint rows of `hist`).
    {
        let mut hists: Vec<&mut [u32]> = scratch.hist.chunks_mut(n_targets.max(1)).collect();
        if nchunks == 1 {
            let hist = &mut hists[0];
            for v in ranges[0].0..ranges[0].1 {
                for (u, _) in each(v) {
                    hist[u as usize] += 1;
                }
            }
        } else {
            std::thread::scope(|scope| {
                for (hist, &(start, end)) in hists.into_iter().zip(&ranges) {
                    let each = &each;
                    scope.spawn(move || {
                        for v in start..end {
                            for (u, _) in each(v) {
                                hist[u as usize] += 1;
                            }
                        }
                    });
                }
            });
        }
    }

    // Prefix sums: row offsets, and per-chunk cursors in `hist`.
    out.offsets.clear();
    out.offsets.resize(n_targets + 1, 0);
    let mut total = 0u32;
    for u in 0..n_targets {
        out.offsets[u] = total;
        let mut run = total;
        for c in 0..nchunks {
            let slot = &mut scratch.hist[c * n_targets + u];
            let count = *slot;
            *slot = run;
            run += count;
        }
        total = run;
    }
    out.offsets[n_targets] = total;
    out.data.clear();
    out.data.resize(total as usize, T::default());

    // Checked shadow (debug_invariants): snapshot each (chunk, target)
    // cursor's exclusive end — the next chunk's start cursor, or the
    // target row's end for the last chunk — and verify the starts tile
    // every target row exactly. Combined with the post-placement check
    // below (each cursor must land exactly on its end) this proves the
    // raw writes of pass 2 cover each target row's half-open ranges
    // disjointly, once and only once: a permutation of the emitted
    // items. Compiled out entirely without the feature.
    #[cfg(feature = "debug_invariants")]
    let cursor_ends: Vec<u32> = {
        let mut ends = vec![0u32; nchunks * n_targets];
        for u in 0..n_targets {
            assert_eq!(
                scratch.hist[u], out.offsets[u],
                "scatter invariant: chunk 0's cursor for target {u} must start at the row offset"
            );
            for c in 0..nchunks {
                let start = scratch.hist[c * n_targets + u];
                let end = if c + 1 < nchunks {
                    scratch.hist[(c + 1) * n_targets + u]
                } else {
                    out.offsets[u + 1]
                };
                assert!(
                    start <= end,
                    "scatter invariant: target {u} cursor ranges are not ascending half-open \
                     ranges (chunk {c}: {start} > {end})"
                );
                ends[c * n_targets + u] = end;
            }
        }
        ends
    };

    // Pass 2: placement through per-chunk cursors.
    {
        let data = SendPtr::new(&mut out.data);
        let mut hists: Vec<&mut [u32]> = scratch.hist.chunks_mut(n_targets.max(1)).collect();
        if nchunks == 1 {
            let cursor = &mut hists[0];
            for v in ranges[0].0..ranges[0].1 {
                for (u, x) in each(v) {
                    let slot = cursor[u as usize] as usize;
                    cursor[u as usize] += 1;
                    out.data[slot] = x;
                }
            }
        } else {
            std::thread::scope(|scope| {
                for (cursor, &(start, end)) in hists.into_iter().zip(&ranges) {
                    let each = &each;
                    scope.spawn(move || {
                        // Rebind the whole wrapper so the closure captures
                        // `SendPtr` (Send), not the raw pointer field.
                        let base = data;
                        for v in start..end {
                            for (u, x) in each(v) {
                                let slot = cursor[u as usize] as usize;
                                cursor[u as usize] += 1;
                                // SAFETY: each (chunk, target) pair owns the
                                // cursor range [its start, next chunk's
                                // start); ranges are disjoint across chunks
                                // and in-bounds by the prefix-sum pass, so
                                // no two threads ever write the same slot.
                                // `debug_invariants` machine-checks both
                                // claims (bounds in `write`, disjointness
                                // via the cursor tiling + landing checks
                                // around this pass).
                                unsafe { base.write(slot, x) };
                            }
                        }
                    });
                }
            });
        }
    }

    // Post-placement shadow check: every cursor must have advanced
    // exactly to its range end. Since cursors start at the range
    // starts (verified above) and bump by one per write, this proves
    // each chunk performed exactly `end - start` writes at slots
    // `start..end` — no slot missed, no slot written twice, and `each`
    // emitted the same targets in both passes.
    #[cfg(feature = "debug_invariants")]
    for (c, (cursors, ends)) in
        scratch.hist.chunks(n_targets).zip(cursor_ends.chunks(n_targets)).enumerate()
    {
        for (u, (&cur, &end)) in cursors.iter().zip(ends).enumerate() {
            assert_eq!(
                cur, end,
                "scatter invariant: chunk {c} left target {u}'s cursor at {cur}, expected {end} \
                 — `each` emitted different (target, payload) streams across the two passes"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_lists_round_trip() {
        let rows = vec![
            vec![Neighbor::new(1, 0.5), Neighbor::new(2, 1.5)],
            vec![Neighbor::new(0, 0.5), Neighbor::new(2, 2.0)],
        ];
        let lists = KnnLists::from_rows(&rows);
        assert_eq!(lists.len(), 2);
        assert_eq!(lists.k(), 2);
        assert_eq!(lists.row(1)[1].id, 2);
        assert_eq!(lists.to_vecs(), rows);
        assert_eq!(lists.rows().count(), 2);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn ragged_rows_rejected() {
        KnnLists::from_rows(&[vec![Neighbor::new(1, 0.0)], vec![]]);
    }

    #[test]
    fn arena_push_clear_reuse() {
        let mut a = FlatArena::<u32>::new(3, 2);
        a.push(0, 7);
        a.push(2, 9);
        a.push(2, 11);
        assert_eq!(a.row(0), &[7]);
        assert_eq!(a.row(1), &[] as &[u32]);
        assert_eq!(a.row(2), &[9, 11]);
        a.clear();
        assert_eq!(a.row(2), &[] as &[u32]);
        a.push(2, 1);
        assert_eq!(a.row(2), &[1]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn arena_overflow_rejected() {
        let mut a = FlatArena::<u32>::new(1, 1);
        a.push(0, 1);
        a.push(0, 2);
    }

    #[test]
    fn arena_chunks_write_disjoint_rows() {
        let ranges = chunk_ranges(10, 3);
        let mut a = FlatArena::<u32>::new(10, 4);
        std::thread::scope(|s| {
            for mut chunk in a.chunks_mut(&ranges).into_iter().zip(&ranges) {
                s.spawn(move || {
                    let (start, end) = *chunk.1;
                    for v in start..end {
                        chunk.0.push(v, v as u32);
                        chunk.0.push(v, 100 + v as u32);
                    }
                });
            }
        });
        for v in 0..10 {
            assert_eq!(a.row(v), &[v as u32, 100 + v as u32]);
        }
    }

    /// The parallel counting scatter must land every item exactly
    /// where the serial push loop would, for any thread count.
    #[test]
    fn counting_scatter_matches_serial_for_any_thread_count() {
        let n = 97usize;
        // Source v emits (v*j % n, payload v*1000+j) for j in 0..(v%5).
        let emit =
            |v: usize| (0..v % 5).map(move |j| (((v * (j + 3)) % n) as u32, (v * 1000 + j) as u32));
        let mut serial: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n {
            for (u, x) in emit(v) {
                serial[u as usize].push(x);
            }
        }
        for threads in [1usize, 2, 3, 8, 64] {
            let mut scratch = ScatterScratch::new();
            let mut out = CsrRows::new();
            counting_scatter(n, n, threads, &mut scratch, &mut out, emit);
            assert_eq!(out.len(), n);
            for (u, expected) in serial.iter().enumerate() {
                assert_eq!(out.row(u), &expected[..], "target {u} at {threads} threads");
            }
        }
    }

    #[test]
    fn scatter_scratch_and_csr_are_reusable() {
        let mut scratch = ScatterScratch::new();
        let mut out = CsrRows::new();
        counting_scatter(4, 4, 2, &mut scratch, &mut out, |v| {
            std::iter::once((v as u32, v as u32))
        });
        assert_eq!(out.row(2), &[2]);
        // Second scatter with different shape reuses both buffers.
        counting_scatter(2, 3, 2, &mut scratch, &mut out, |v| {
            std::iter::once(((v % 2) as u32, v as u32))
        });
        assert_eq!(out.len(), 2);
        assert_eq!(out.row(0), &[0, 2]);
        assert_eq!(out.row(1), &[1]);
    }

    #[test]
    fn csr_par_rows_mut_sees_every_row() {
        let mut scratch = ScatterScratch::new();
        let mut out = CsrRows::new();
        counting_scatter(5, 20, 2, &mut scratch, &mut out, |v| {
            std::iter::once(((v % 5) as u32, v as u32))
        });
        out.par_rows_mut(3, |_, row| row.sort_unstable_by(|a, b| b.cmp(a)));
        for u in 0..5 {
            let row = out.row(u);
            assert_eq!(row.len(), 4);
            assert!(row.windows(2).all(|w| w[0] > w[1]), "row {u} not reverse-sorted");
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut scratch = ScatterScratch::new();
        let mut out = CsrRows::<u32>::new();
        counting_scatter(0, 0, 4, &mut scratch, &mut out, |_| std::iter::empty());
        assert!(out.is_empty());
        let lists = KnnLists::from_rows(&[]);
        assert!(lists.is_empty());
        assert_eq!(lists.k(), 0);
    }
}
