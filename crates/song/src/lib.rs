//! SONG baseline — Zhao et al.'s GPU graph search (ICDE 2020), the
//! first GPU graph-based ANN implementation and the origin of the
//! open-addressing visited table CAGRA adopts (paper Sec. II-C1 and
//! IV-B3).
//!
//! SONG contributes *search only* ("relies on other methods like NSW,
//! NSG, and DPG" for the graph), so this crate operates over any
//! adjacency structure. Its signature data structures are implemented
//! faithfully:
//!
//! * a **bounded priority queue** of fixed capacity (their
//!   "dynamic allocation reduction": everything lives in fixed-size
//!   arrays, sized at launch);
//! * an **open-addressing hash table** for the visited set — reused
//!   from `cagra::search::hash`, which implements exactly that
//!   structure;
//! * one vertex expansion per iteration with the neighbor distance
//!   computations batched across the thread block.
//!
//! Searches record a [`cagra::search::trace::SearchTrace`]
//! (device-memory hash, full-warp distances) so `gpu-sim` prices SONG
//! with the same model as every other GPU method.

use cagra::search::hash::VisitedSet;
use cagra::search::trace::{IterationTrace, SearchTrace};
use dataset::{PermutableStore, VectorStore};
use distance::{DistanceOracle, Metric};
use graph::relabel::{self, IdMap, RelabelStrategy};
use knn::topk::{cmp_neighbor, Neighbor, TopK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where the traversal begins.
#[derive(Clone, Copy, Debug)]
pub enum StartPolicy {
    /// A fixed entry vertex (NSG-style graphs have a navigating node).
    Fixed(u32),
    /// `n` uniformly random vertices (NSW/CAGRA-style graphs).
    Random(usize),
}

/// SONG search parameters.
#[derive(Clone, Copy, Debug)]
pub struct SongParams {
    /// Bounded priority-queue capacity (SONG's quality/speed knob).
    pub pq_size: usize,
    /// Iteration cap (0 = auto: `4 * pq_size`).
    pub max_iterations: usize,
    /// Entry policy.
    pub starts: StartPolicy,
    /// Seed for random starts.
    pub seed: u64,
}

impl SongParams {
    /// Defaults used by the SONG paper's recall sweeps.
    pub fn new(pq_size: usize) -> Self {
        SongParams { pq_size, max_iterations: 0, starts: StartPolicy::Random(8), seed: 0x5049 }
    }
}

/// Fixed-capacity min-priority queue of unexpanded candidates. The
/// bound is SONG's "bounded priority queue": when full, pushes beyond
/// the current worst are dropped (the worst is evicted if the new
/// entry is better).
#[derive(Clone, Debug)]
pub struct BoundedPq {
    items: Vec<Neighbor>, // sorted ascending; small capacity
    capacity: usize,
}

impl BoundedPq {
    /// Create a queue holding at most `capacity` candidates.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        BoundedPq { items: Vec::with_capacity(capacity + 1), capacity }
    }

    /// Number of queued candidates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no candidates are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Offer a candidate; dropped if the queue is full of better ones.
    /// Returns whether it was admitted.
    pub fn push(&mut self, n: Neighbor) -> bool {
        if self.items.len() == self.capacity {
            match self.items.last() {
                Some(worst) if cmp_neighbor(&n, worst).is_lt() => {
                    self.items.pop();
                }
                _ => return false,
            }
        }
        let at = self.items.partition_point(|x| cmp_neighbor(x, &n).is_lt());
        self.items.insert(at, n);
        true
    }

    /// Remove and return the best candidate.
    pub fn pop_min(&mut self) -> Option<Neighbor> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.items.remove(0))
        }
    }
}

/// Jointly renumber a foreign adjacency structure and its store for
/// memory locality (SONG searches graphs it did not build, so the
/// relabel entry point is free-standing too). Returns the relabeled
/// graph, the permuted store, and the map for
/// [`song_search_mapped`].
pub fn relabel_graph<S: VectorStore + PermutableStore>(
    adjacency: &[Vec<u32>],
    store: &S,
    strategy: RelabelStrategy,
) -> (Vec<Vec<u32>>, S, IdMap) {
    let perm = relabel::compute_lists(adjacency, strategy);
    let relabeled = relabel::apply_to_lists(adjacency, &perm);
    let permuted = store.permuted(perm.old_of_new_slice());
    (relabeled, permuted, IdMap { perm, strategy })
}

/// [`song_search`] over a relabeled graph: a `Fixed` entry vertex is
/// interpreted as an *original* id, and results come back in original
/// ids. With `id_map == None` this is exactly [`song_search`].
pub fn song_search_mapped<S: VectorStore + ?Sized>(
    adjacency: &[Vec<u32>],
    store: &S,
    metric: Metric,
    query: &[f32],
    k: usize,
    params: &SongParams,
    id_map: Option<&IdMap>,
) -> (Vec<Neighbor>, SearchTrace) {
    let Some(m) = id_map else {
        return song_search(adjacency, store, metric, query, k, params);
    };
    let mut p = *params;
    if let StartPolicy::Fixed(id) = p.starts {
        if (id as usize) < m.len() {
            p.starts = StartPolicy::Fixed(m.internal_of_original(id));
        }
    }
    let (mut res, trace) = song_search(adjacency, store, metric, query, k, &p);
    for nb in &mut res {
        nb.id = m.original_of_internal(nb.id);
    }
    (res, trace)
}

/// SONG search over `adjacency`. Returns ascending-distance results
/// and the GPU-costing trace.
pub fn song_search<S: VectorStore + ?Sized>(
    adjacency: &[Vec<u32>],
    store: &S,
    metric: Metric,
    query: &[f32],
    k: usize,
    params: &SongParams,
) -> (Vec<Neighbor>, SearchTrace) {
    assert!(adjacency.len() <= store.len(), "graph larger than dataset");
    assert_eq!(query.len(), store.dim(), "query dimension mismatch");
    let n = adjacency.len();
    let pq_size = params.pq_size.max(k).max(1);
    let max_iters = if params.max_iterations == 0 { 4 * pq_size } else { params.max_iterations };
    let avg_degree =
        if n == 0 { 1 } else { (adjacency.iter().map(Vec::len).sum::<usize>() / n.max(1)).max(1) };

    let mut hash = VisitedSet::new(VisitedSet::standard_bits(max_iters, avg_degree));
    let mut trace = SearchTrace {
        itopk: pq_size,
        search_width: 1,
        degree: avg_degree,
        num_workers: 1,
        hash_slots: hash.capacity(),
        hash_in_shared: false, // SONG keeps the table in device memory
        serial_queue: true,    // bounded pq with serialized inserts
        ..Default::default()
    };
    if n == 0 || k == 0 {
        return (Vec::new(), trace);
    }

    let oracle = DistanceOracle::new(store, metric);
    let mut pq = BoundedPq::new(pq_size);
    // Results are tracked at pq_size width (the SONG evaluation's
    // quality knob) and truncated to k at the end, so the termination
    // test below is ef-style rather than prematurely greedy.
    let mut results = TopK::new(pq_size);

    match params.starts {
        StartPolicy::Fixed(id) => {
            let id = id.min(n as u32 - 1);
            hash.insert(id);
            let d = oracle.to_row(query, id as usize);
            trace.init_distances += 1;
            pq.push(Neighbor::new(id, d));
            results.push(Neighbor::new(id, d));
        }
        StartPolicy::Random(count) => {
            let mut rng = StdRng::seed_from_u64(params.seed);
            for _ in 0..count.max(1).min(n) {
                let id = rng.gen_range(0..n) as u32;
                if hash.insert(id) {
                    let d = oracle.to_row(query, id as usize);
                    trace.init_distances += 1;
                    pq.push(Neighbor::new(id, d));
                    results.push(Neighbor::new(id, d));
                }
            }
        }
    }

    for _ in 0..max_iters {
        let Some(best) = pq.pop_min() else { break };
        // SONG's termination: stop once the best frontier candidate
        // cannot improve the tracked result set.
        if best.dist > results.threshold() {
            break;
        }
        let neighbors = &adjacency[best.id as usize];
        let probes_before = hash.probes();
        let mut computed = 0usize;
        for &nb in neighbors {
            if !hash.insert(nb) {
                continue;
            }
            let d = oracle.to_row(query, nb as usize);
            computed += 1;
            pq.push(Neighbor::new(nb, d));
            if d < results.threshold() {
                results.push(Neighbor::new(nb, d));
            }
        }
        trace.iterations.push(IterationTrace {
            candidates: neighbors.len() as u64,
            distances_computed: computed as u64,
            hash_probes: hash.probes() - probes_before,
            sort_len: neighbors.len() as u64,
            hash_reset: false,
        });
    }

    let mut out = results.into_sorted();
    out.truncate(k);
    (out, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagra::build::GraphConfig;
    use cagra::CagraIndex;
    use dataset::synth::{Family, SynthSpec};
    use knn::brute::ground_truth;

    #[test]
    fn bounded_pq_keeps_the_best() {
        let mut pq = BoundedPq::new(3);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 3.0), (3, 0.5), (4, 9.0)] {
            pq.push(Neighbor::new(id, d));
        }
        assert_eq!(pq.len(), 3);
        assert_eq!(pq.pop_min().unwrap().id, 3);
        assert_eq!(pq.pop_min().unwrap().id, 1);
        assert_eq!(pq.pop_min().unwrap().id, 2);
        assert!(pq.pop_min().is_none());
    }

    #[test]
    fn bounded_pq_drops_overflow() {
        let mut pq = BoundedPq::new(2);
        assert!(pq.push(Neighbor::new(0, 1.0)));
        assert!(pq.push(Neighbor::new(1, 2.0)));
        assert!(!pq.push(Neighbor::new(2, 3.0)), "worse than everything: dropped");
        assert!(pq.push(Neighbor::new(3, 0.5)), "better: evicts the worst");
        assert_eq!(pq.len(), 2);
    }

    fn setup(n: usize) -> (dataset::Dataset, Vec<Vec<u32>>, dataset::Dataset) {
        let spec = SynthSpec { dim: 8, n, queries: 30, family: Family::Gaussian, seed: 23 };
        let (base, queries) = spec.generate();
        let store = dataset::Dataset::from_flat(base.as_flat().to_vec(), 8);
        let (index, _) = CagraIndex::build(store, Metric::SquaredL2, &GraphConfig::new(16));
        let adj: Vec<Vec<u32>> =
            (0..index.graph().len()).map(|v| index.graph().neighbors(v).to_vec()).collect();
        (base, adj, queries)
    }

    #[test]
    fn reaches_good_recall_over_a_cagra_graph() {
        let (base, adj, queries) = setup(2000);
        let gt = ground_truth(&base, Metric::SquaredL2, &queries, 10);
        let params = SongParams { starts: StartPolicy::Random(64), ..SongParams::new(128) };
        let mut hits = 0usize;
        for (qi, ids) in gt.iter().enumerate() {
            let (res, _) =
                song_search(&adj, &base, Metric::SquaredL2, queries.row(qi), 10, &params);
            let truth: std::collections::HashSet<u32> = ids.iter().copied().collect();
            hits += res.iter().filter(|x| truth.contains(&x.id)).count();
        }
        let recall = hits as f64 / (queries.len() * 10) as f64;
        assert!(recall > 0.85, "SONG recall@10 = {recall}");
    }

    #[test]
    fn recall_grows_with_pq_size() {
        let (base, adj, queries) = setup(1500);
        let gt = ground_truth(&base, Metric::SquaredL2, &queries, 10);
        let score = |pq: usize| {
            let params = SongParams { starts: StartPolicy::Random(32), ..SongParams::new(pq) };
            let mut hits = 0usize;
            for (qi, ids) in gt.iter().enumerate() {
                let (res, _) =
                    song_search(&adj, &base, Metric::SquaredL2, queries.row(qi), 10, &params);
                let truth: std::collections::HashSet<u32> = ids.iter().copied().collect();
                hits += res.iter().filter(|x| truth.contains(&x.id)).count();
            }
            hits as f64 / (queries.len() * 10) as f64
        };
        let lo = score(16);
        let hi = score(256);
        assert!(hi >= lo, "pq=256 ({hi}) must be >= pq=16 ({lo})");
    }

    #[test]
    fn fixed_entry_point_works() {
        let (base, adj, queries) = setup(600);
        let params = SongParams { starts: StartPolicy::Fixed(0), ..SongParams::new(64) };
        let (res, trace) = song_search(&adj, &base, Metric::SquaredL2, queries.row(0), 5, &params);
        assert_eq!(res.len(), 5);
        assert_eq!(trace.init_distances, 1);
        assert!(!trace.hash_in_shared);
    }

    #[test]
    fn relabeled_fixed_start_search_matches_bit_exactly() {
        let (base, adj, queries) = setup(800);
        let params = SongParams { starts: StartPolicy::Fixed(17), ..SongParams::new(64) };
        let (relabeled, permuted, map) = relabel_graph(&adj, &base, RelabelStrategy::Rcm);
        assert!(!map.perm.is_identity(), "rcm on a real graph is not identity");
        for qi in 0..5 {
            let q = queries.row(qi);
            let baseline = song_search(&adj, &base, Metric::SquaredL2, q, 10, &params).0;
            let (mapped, _) = song_search_mapped(
                &relabeled,
                &permuted,
                Metric::SquaredL2,
                q,
                10,
                &params,
                Some(&map),
            );
            // A fixed start pins the traversal, so the relabeled run
            // visits the same points and reports original ids.
            assert_eq!(mapped, baseline);
        }
    }

    #[test]
    fn empty_graph_and_zero_k() {
        let store = dataset::Dataset::empty(4);
        let (res, _) =
            song_search(&[], &store, Metric::SquaredL2, &[0.0; 4], 5, &SongParams::new(8));
        assert!(res.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (base, adj, queries) = setup(500);
        let params = SongParams::new(64);
        let a = song_search(&adj, &base, Metric::SquaredL2, queries.row(1), 5, &params).0;
        let b = song_search(&adj, &base, Metric::SquaredL2, queries.row(1), 5, &params).0;
        assert_eq!(a, b);
    }
}
