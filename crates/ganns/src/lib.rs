//! GANNS baseline — Yu et al.'s GPU-accelerated NSW construction and
//! search.
//!
//! GANNS builds Navigable Small World graphs by inserting points in
//! parallel batches: every point of a batch searches the *current*
//! graph snapshot for its nearest neighbors (a GPU-wide, conflict-free
//! step), then the batch's bidirectional links are committed, with
//! overflowing neighbor lists truncated to the closest entries. This
//! reproduction keeps the batched-snapshot structure on CPU threads;
//! searches run through the SONG-style kernel in `gpu_sim::kernels`
//! so the same device model prices GANNS and CAGRA (Figs. 11, 13).

use cagra::search::trace::SearchTrace;
use dataset::{PermutableStore, VectorStore};
use distance::{DistanceOracle, Metric};
use gpu_sim::{traced_beam_search, BeamParams};
use graph::relabel::{self, IdMap, RelabelStrategy};
use knn::parallel::{default_threads, parallel_map};
use knn::topk::{cmp_neighbor, Neighbor};
use std::time::{Duration, Instant};

/// GANNS construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct GannsParams {
    /// Links created per inserted point (NSW's `M`); lists may grow to
    /// `2M` from reverse links before truncation.
    pub m: usize,
    /// Beam width for the insertion-time search (`efConstruction`).
    pub ef_construction: usize,
    /// Points inserted per parallel batch.
    pub batch: usize,
    /// RNG seed for insertion-search starts.
    pub seed: u64,
}

impl GannsParams {
    /// Defaults comparable to the GANNS paper's NSW configuration.
    pub fn new(m: usize) -> Self {
        GannsParams { m, ef_construction: m * 4, batch: 256, seed: 0x9a25 }
    }
}

/// A built GANNS (NSW) index owning its store.
pub struct Ganns<S> {
    store: S,
    metric: Metric,
    adjacency: Vec<Vec<u32>>,
    params: GannsParams,
    id_map: Option<IdMap>,
}

impl<S: VectorStore + PermutableStore> Ganns<S> {
    /// Renumber vertices for memory locality (same contract as
    /// `CagraIndex::relabel`): adjacency and vector rows move together
    /// and searches keep returning original ids.
    pub fn relabel(&mut self, strategy: RelabelStrategy) {
        let perm = relabel::compute_lists(&self.adjacency, strategy);
        if perm.is_identity() {
            return;
        }
        self.adjacency = relabel::apply_to_lists(&self.adjacency, &perm);
        self.store = self.store.permuted(perm.old_of_new_slice());
        self.id_map = Some(match self.id_map.take() {
            Some(prev) => IdMap { perm: prev.perm.then(&perm), strategy },
            None => IdMap { perm, strategy },
        });
    }
}

impl<S: VectorStore> Ganns<S> {
    /// Build the NSW graph by batched parallel insertion.
    pub fn build(store: S, metric: Metric, params: GannsParams) -> (Self, Duration) {
        assert!(params.m >= 2, "M must be at least 2");
        let n = store.len();
        let t0 = Instant::now();
        let threads = default_threads();
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];

        // Seed clique: the first M+1 points link to each other.
        let seed_count = (params.m + 1).min(n);
        for (v, adj) in adjacency.iter_mut().enumerate().take(seed_count) {
            for u in 0..seed_count {
                if u != v {
                    adj.push(u as u32);
                }
            }
        }

        let mut next = seed_count;
        while next < n {
            let end = (next + params.batch).min(n);
            let snapshot = adjacency.clone();
            let found: Vec<Vec<Neighbor>> = parallel_map(end - next, threads, |i| {
                let v = next + i;
                let mut q = vec![0.0f32; store.dim()];
                store.get_into(v, &mut q);
                let beam = BeamParams {
                    beam: params.ef_construction,
                    n_starts: 4,
                    max_iterations: params.ef_construction * 4,
                    seed: params.seed ^ v as u64,
                };
                let (mut res, _) =
                    traced_beam_search(&snapshot[..next], &store, metric, &q, params.m, &beam);
                res.retain(|nb| nb.id as usize != v);
                res
            });
            // Commit the batch serially (the GPU does this with atomics).
            let oracle = DistanceOracle::new(&store, metric);
            for (i, neighbors) in found.into_iter().enumerate() {
                let v = next + i;
                for nb in neighbors {
                    adjacency[v].push(nb.id);
                    adjacency[nb.id as usize].push(v as u32);
                    truncate_closest(&mut adjacency[nb.id as usize], nb.id, &oracle, 2 * params.m);
                }
                truncate_closest(&mut adjacency[v], v as u32, &oracle, 2 * params.m);
            }
            next = end;
        }

        (Ganns { store, metric, adjacency, params, id_map: None }, t0.elapsed())
    }

    /// Single-query search via the SONG-style kernel.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        beam: usize,
        seed: u64,
    ) -> (Vec<Neighbor>, SearchTrace) {
        let p =
            BeamParams { beam: beam.max(k), n_starts: 8, max_iterations: beam.max(k) * 4, seed };
        let (mut res, trace) =
            traced_beam_search(&self.adjacency, &self.store, self.metric, query, k, &p);
        if let Some(m) = &self.id_map {
            for nb in &mut res {
                nb.id = m.original_of_internal(nb.id);
            }
        }
        (res, trace)
    }

    /// Thread-parallel batch search returning results and traces.
    pub fn search_batch<Q: VectorStore>(
        &self,
        queries: &Q,
        k: usize,
        beam: usize,
    ) -> Vec<(Vec<Neighbor>, SearchTrace)> {
        let dim = queries.dim();
        assert_eq!(dim, self.store.dim(), "query dimension mismatch");
        parallel_map(queries.len(), default_threads(), |qi| {
            let mut q = vec![0.0f32; dim];
            queries.get_into(qi, &mut q);
            self.search(&q, k, beam, 0xaa55 ^ qi as u64)
        })
    }

    /// Average out-degree.
    pub fn average_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            return 0.0;
        }
        self.adjacency.iter().map(Vec::len).sum::<usize>() as f64 / self.adjacency.len() as f64
    }

    /// The owned store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Adjacency lists.
    pub fn adjacency(&self) -> &[Vec<u32>] {
        &self.adjacency
    }

    /// Build parameters.
    pub fn params(&self) -> &GannsParams {
        &self.params
    }

    /// The active relabel map, if [`Ganns::relabel`] reordered the index.
    pub fn id_map(&self) -> Option<&IdMap> {
        self.id_map.as_ref()
    }
}

/// Keep the `cap` closest links of `v`, dropping duplicates.
fn truncate_closest<S: VectorStore + ?Sized>(
    links: &mut Vec<u32>,
    v: u32,
    oracle: &DistanceOracle<'_, S>,
    cap: usize,
) {
    links.sort_unstable();
    links.dedup();
    if links.len() <= cap {
        return;
    }
    let mut with_dist: Vec<Neighbor> = links
        .iter()
        .map(|&u| Neighbor::new(u, oracle.between_rows(v as usize, u as usize)))
        .collect();
    with_dist.sort_unstable_by(cmp_neighbor);
    with_dist.truncate(cap);
    *links = with_dist.into_iter().map(|nb| nb.id).collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::synth::{Family, SynthSpec};
    use knn::brute::ground_truth;

    fn setup(n: usize) -> (Ganns<dataset::Dataset>, dataset::Dataset) {
        let spec = SynthSpec { dim: 8, n, queries: 40, family: Family::Gaussian, seed: 17 };
        let (base, queries) = spec.generate();
        let (g, _) = Ganns::build(base, Metric::SquaredL2, GannsParams::new(12));
        (g, queries)
    }

    #[test]
    fn builds_bounded_degree_graph() {
        let (g, _) = setup(1500);
        for (v, list) in g.adjacency().iter().enumerate() {
            assert!(list.len() <= 24, "node {v} degree {}", list.len());
            assert!(list.iter().all(|&u| u as usize != v), "self link at {v}");
        }
        assert!(g.average_degree() >= 4.0);
    }

    #[test]
    fn reaches_reasonable_recall() {
        let (g, queries) = setup(2000);
        let gt = ground_truth(g.store(), Metric::SquaredL2, &queries, 10);
        let got = g.search_batch(&queries, 10, 128);
        let mut hits = 0usize;
        for ((res, _), t) in got.iter().zip(&gt) {
            let ts: std::collections::HashSet<u32> = t.iter().copied().collect();
            hits += res.iter().filter(|nb| ts.contains(&nb.id)).count();
        }
        let recall = hits as f64 / (gt.len() * 10) as f64;
        assert!(recall > 0.85, "GANNS recall@10 = {recall}");
    }

    #[test]
    fn every_late_node_is_linked_bidirectionally() {
        let (g, _) = setup(800);
        // NSW insertion always commits v->nb and nb->v (possibly later
        // truncated); every node must keep at least one edge.
        assert!(g.adjacency().iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn traces_cost_on_the_device_model() {
        let (g, queries) = setup(600);
        let results = g.search_batch(&queries, 10, 64);
        let traces: Vec<_> = results.into_iter().map(|(_, t)| t).collect();
        let device = gpu_sim::DeviceSpec::a100();
        let timing =
            gpu_sim::simulate_batch(&device, &traces, 8, 4, 32, gpu_sim::Mapping::SingleCta);
        assert!(timing.qps > 0.0);
    }

    #[test]
    fn relabel_preserves_recall_and_reports_original_ids() {
        let (mut g, queries) = setup(1200);
        let gt = ground_truth(g.store(), Metric::SquaredL2, &queries, 10);
        g.relabel(RelabelStrategy::Gorder);
        assert_eq!(g.id_map().unwrap().strategy, RelabelStrategy::Gorder);
        let got = g.search_batch(&queries, 10, 128);
        let mut hits = 0usize;
        for ((res, _), t) in got.iter().zip(&gt) {
            let ts: std::collections::HashSet<u32> = t.iter().copied().collect();
            hits += res.iter().filter(|nb| ts.contains(&nb.id)).count();
        }
        let recall = hits as f64 / (gt.len() * 10) as f64;
        assert!(recall > 0.8, "relabeled GANNS recall@10 = {recall}");
    }

    #[test]
    fn tiny_dataset_builds() {
        let spec = SynthSpec { dim: 4, n: 5, queries: 0, family: Family::Gaussian, seed: 1 };
        let (base, _) = spec.generate();
        let (g, _) = Ganns::build(base, Metric::SquaredL2, GannsParams::new(4));
        assert_eq!(g.adjacency().len(), 5);
        assert!(g.adjacency().iter().all(|l| !l.is_empty()));
    }

    #[test]
    #[should_panic(expected = "M must be at least 2")]
    fn tiny_m_rejected() {
        let spec = SynthSpec { dim: 4, n: 50, queries: 0, family: Family::Gaussian, seed: 1 };
        let (base, _) = spec.generate();
        let _ = Ganns::build(
            base,
            Metric::SquaredL2,
            GannsParams { m: 1, ef_construction: 8, batch: 16, seed: 0 },
        );
    }
}
