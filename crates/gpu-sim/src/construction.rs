//! GPU construction-time estimate (Fig. 11's CAGRA bars).
//!
//! The paper builds the initial k-NN graph with GPU NN-Descent (Wang
//! et al.) and optimizes it with "highly parallel" kernels; on the
//! device both stages are memory-bandwidth bound. This estimator
//! prices the *work actually performed* by our CPU build — the
//! recorded NN-Descent distance count and the optimizer's array
//! traffic — on the device model, giving the GPU-side construction
//! time the 1-core host cannot measure directly. EXPERIMENTS.md
//! reports measured CPU totals and this estimate side by side.

use crate::device::DeviceSpec;

/// Breakdown of an estimated GPU build.
#[derive(Clone, Copy, Debug)]
pub struct ConstructionEstimate {
    /// NN-Descent stage seconds (bandwidth-bound distance evaluation).
    pub knn_seconds: f64,
    /// Optimization stage seconds (rank counting + reverse + merge).
    pub opt_seconds: f64,
}

impl ConstructionEstimate {
    /// Total estimated seconds.
    pub fn total(&self) -> f64 {
        self.knn_seconds + self.opt_seconds
    }
}

/// Fraction of peak DRAM bandwidth the irregular NN-Descent access
/// pattern achieves (local joins read scattered vectors).
const NN_DESCENT_BW_EFFICIENCY: f64 = 0.5;

/// Estimate the GPU time for a CAGRA build that performed
/// `nn_distances` NN-Descent distance computations over `n` vectors of
/// `dim x bytes_per_elem`, then optimized to degree `d` from `d_init`.
pub fn estimate_construction(
    device: &DeviceSpec,
    n: usize,
    dim: usize,
    bytes_per_elem: usize,
    d: usize,
    d_init: usize,
    nn_distances: u64,
) -> ConstructionEstimate {
    // NN-Descent: one operand of each distance streams from device
    // memory (the other is tile-resident in shared memory).
    let nn_bytes = nn_distances as f64 * (dim * bytes_per_elem) as f64;
    let knn_seconds = device.bytes_to_seconds(nn_bytes) / NN_DESCENT_BW_EFFICIENCY
        + device.launch_overhead_us * 1e-6;

    // Optimization is pure index arithmetic over the rank arrays:
    // detour counting touches each of the n*d_init^2 (rank, rank)
    // pairs' 4-byte entries once; reverse + merge re-stream the n*d
    // edge array a handful of times.
    let detour_bytes = n as f64 * (d_init * d_init) as f64 * 4.0;
    let edge_bytes = (n * d * 4) as f64 * 6.0;
    let opt_seconds =
        device.bytes_to_seconds(detour_bytes + edge_bytes) + device.launch_overhead_us * 1e-6;

    ConstructionEstimate { knn_seconds, opt_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_with_work() {
        let d = DeviceSpec::a100();
        let small = estimate_construction(&d, 1000, 96, 4, 32, 64, 1_000_000);
        let big = estimate_construction(&d, 1000, 96, 4, 32, 64, 100_000_000);
        assert!(big.knn_seconds > 50.0 * small.knn_seconds);
        assert!(small.total() > 0.0);
    }

    #[test]
    fn paper_scale_sanity() {
        // DEEP-1M at degree 32: NN-Descent does on the order of
        // n * k^2 * iters ~ 1e6 * 64^2 * ~8 = 3e10 distances is an
        // overestimate; measured runs land near 1e9-1e10. The paper's
        // Fig. 15 shows ~10 s for DEEP-1M; our estimate with a
        // plausible 3e9 distance count must land within an order of
        // magnitude.
        let d = DeviceSpec::a100();
        let est = estimate_construction(&d, 1_000_000, 96, 4, 32, 64, 3_000_000_000);
        assert!(
            est.total() > 0.3 && est.total() < 30.0,
            "estimate {:.2}s implausible for DEEP-1M",
            est.total()
        );
    }

    #[test]
    fn optimization_is_cheap_relative_to_knn() {
        // Fig. 11's stacked bars: the optimize stage is the short one.
        let d = DeviceSpec::a100();
        let est = estimate_construction(&d, 100_000, 96, 4, 32, 64, 500_000_000);
        assert!(est.opt_seconds < est.knn_seconds);
    }
}
