//! Timing-functional GPU model for the CAGRA reproduction.
//!
//! The paper's throughput results depend on GPU hardware effects —
//! 128-bit memory transactions split across software **teams**,
//! register-pressure-limited occupancy, shared- vs device-memory hash
//! tables, and CTA scheduling across SMs. This host has no GPU, so the
//! substitution (documented in DESIGN.md) is a first-order analytical
//! timing model layered on top of the *real* search execution: the
//! `cagra` crate records a [`cagra::search::trace::SearchTrace`] of the
//! operations a kernel would perform, and this crate converts those
//! counts into simulated seconds on a parameterized device.
//!
//! Recall numbers are therefore exact (the traversal really ran);
//! throughput numbers are model outputs calibrated to an A100-like
//! device and should be read for *shape* (who wins, where crossovers
//! fall), not absolute QPS.
//!
//! ```
//! use cagra::{CagraIndex, GraphConfig, SearchParams};
//! use cagra::search::planner::Mode;
//! use dataset::synth::{Family, SynthSpec};
//! use distance::Metric;
//! use gpu_sim::{simulate_batch, DeviceSpec, Mapping};
//!
//! let (base, queries) =
//!     SynthSpec { dim: 16, n: 400, queries: 4, family: Family::Gaussian, seed: 2 }.generate();
//! let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8));
//! let out = index.search_batch_traced(&queries, 5, &SearchParams::for_k(5), Mode::SingleCta);
//! let traces: Vec<_> = out.into_iter().map(|(_, t)| t).collect();
//! let timing = simulate_batch(&DeviceSpec::a100(), &traces, 16, 4, 8, Mapping::SingleCta);
//! assert!(timing.qps > 0.0);
//! ```

pub mod construction;
pub mod cost;
pub mod device;
pub mod exec;
pub mod kernels;
pub mod mem;
pub mod multi;

pub use construction::{estimate_construction, ConstructionEstimate};
pub use cost::{cta_occupancy, iteration_cycles, KernelConfig, Occupancy};
pub use device::DeviceSpec;
pub use exec::{simulate_batch, BatchTiming, Mapping};
pub use kernels::{traced_beam_search, BeamParams};
pub use mem::{replay_batch, replay_trace, CacheModel, MemLayout, TxCounts};
pub use multi::{simulate_sharded_batch, MultiGpuTiming};
