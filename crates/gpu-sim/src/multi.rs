//! Multi-GPU timing for the sharded deployment (Sec. IV-C2 / Q-C5).
//!
//! Each device owns one shard's graph and dataset; a query broadcast
//! to all devices completes when the slowest device finishes, and the
//! host merges the per-shard top-k lists (a negligible k·shards merge,
//! modeled as a fixed per-query cost). This is the deployment the
//! paper recommends once a dataset no longer fits one device's memory.

use crate::device::DeviceSpec;
use crate::exec::{simulate_batch, BatchTiming, Mapping};
use cagra::search::trace::SearchTrace;

/// Result of simulating a sharded launch across identical devices.
#[derive(Clone, Debug)]
pub struct MultiGpuTiming {
    /// End-to-end seconds (slowest device + host merge).
    pub seconds: f64,
    /// Queries per second.
    pub qps: f64,
    /// Per-device timings, one per shard.
    pub per_device: Vec<BatchTiming>,
}

/// Host-side merge cost per query (k-way merge of tiny sorted lists).
const MERGE_SECONDS_PER_QUERY: f64 = 2.0e-8;

/// Simulate a batch where query `q`'s work on shard `s` is
/// `shard_traces[s][q]`. All shards run concurrently on their own
/// device.
///
/// # Panics
/// Panics if shards disagree on the batch size or there are no shards.
pub fn simulate_sharded_batch(
    device: &DeviceSpec,
    shard_traces: &[Vec<SearchTrace>],
    dim: usize,
    bytes_per_elem: usize,
    team_size: usize,
    mapping: Mapping,
) -> MultiGpuTiming {
    assert!(!shard_traces.is_empty(), "need at least one shard");
    let batch = shard_traces[0].len();
    assert!(batch > 0, "empty batch");
    assert!(
        shard_traces.iter().all(|t| t.len() == batch),
        "all shards must process the same batch"
    );
    let per_device: Vec<BatchTiming> = shard_traces
        .iter()
        .map(|traces| simulate_batch(device, traces, dim, bytes_per_elem, team_size, mapping))
        .collect();
    let slowest = per_device.iter().map(|t| t.seconds).fold(0.0, f64::max);
    let seconds = slowest + MERGE_SECONDS_PER_QUERY * batch as f64;
    MultiGpuTiming { seconds, qps: batch as f64 / seconds, per_device }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagra::search::trace::IterationTrace;

    fn trace(iters: usize) -> SearchTrace {
        SearchTrace {
            init_distances: 32,
            iterations: (0..iters)
                .map(|_| IterationTrace {
                    candidates: 32,
                    distances_computed: 20,
                    hash_probes: 48,
                    sort_len: 32,
                    hash_reset: false,
                })
                .collect(),
            itopk: 64,
            search_width: 1,
            degree: 32,
            num_workers: 1,
            hash_slots: 2048,
            hash_in_shared: true,
            serial_queue: false,
            scratch_reused: false,
            accesses: None,
        }
    }

    #[test]
    fn completion_is_bounded_by_the_slowest_shard() {
        let d = DeviceSpec::a100();
        let fast: Vec<_> = (0..100).map(|_| trace(8)).collect();
        let slow: Vec<_> = (0..100).map(|_| trace(64)).collect();
        let t =
            simulate_sharded_batch(&d, &[fast.clone(), slow.clone()], 96, 4, 8, Mapping::SingleCta);
        let slow_alone = simulate_batch(&d, &slow, 96, 4, 8, Mapping::SingleCta);
        assert!(t.seconds >= slow_alone.seconds, "{} < {}", t.seconds, slow_alone.seconds);
        assert_eq!(t.per_device.len(), 2);
    }

    #[test]
    fn sharding_shrinks_per_device_time_for_equal_total_work() {
        // Splitting a dataset in half roughly halves each device's
        // traversal depth; two devices in parallel finish sooner than
        // one device doing the full-depth search.
        let d = DeviceSpec::a100();
        let full: Vec<_> = (0..2000).map(|_| trace(32)).collect();
        let half: Vec<_> = (0..2000).map(|_| trace(18)).collect();
        let single = simulate_batch(&d, &full, 96, 4, 8, Mapping::SingleCta);
        let sharded =
            simulate_sharded_batch(&d, &[half.clone(), half], 96, 4, 8, Mapping::SingleCta);
        assert!(sharded.qps > single.qps, "sharded {} vs single {}", sharded.qps, single.qps);
    }

    #[test]
    #[should_panic(expected = "same batch")]
    fn mismatched_batches_rejected() {
        let d = DeviceSpec::a100();
        let a = vec![trace(4)];
        let b = vec![trace(4), trace(4)];
        simulate_sharded_batch(&d, &[a, b], 96, 4, 8, Mapping::SingleCta);
    }
}
