//! Traced best-first search — the "SONG-style" GPU kernel shape shared
//! by the GGNN and GANNS baselines.
//!
//! Both comparison methods search with a bounded priority queue plus an
//! open-addressing visited table, expanding one node per iteration and
//! computing the distances of its not-yet-visited neighbors (Zhao et
//! al.'s SONG formulation, which GGNN and GANNS inherit). This module
//! implements that loop once and records a
//! [`cagra::search::trace::SearchTrace`] so [`crate::simulate_batch`]
//! can cost the baselines with the *same* device model as CAGRA —
//! keeping the GPU-vs-GPU comparisons of Figs. 11 and 13 apples-to-
//! apples. The baselines map one distance to a full warp (`team = 32`)
//! and keep their visited tables in device memory, as their papers
//! describe.

use cagra::search::trace::{IterationTrace, SearchTrace};
use dataset::VectorStore;
use distance::{DistanceOracle, Metric};
use knn::topk::{cmp_neighbor, Neighbor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Parameters of the baseline GPU search loop.
#[derive(Clone, Copy, Debug)]
pub struct BeamParams {
    /// Priority-queue width (the methods' `ef`/slack beam).
    pub beam: usize,
    /// Entry points: number of random starts (GGNN uses block
    /// entry points; random starts are the degree-matched equivalent).
    pub n_starts: usize,
    /// Iteration cap.
    pub max_iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Best-first search over `adjacency`, returning results plus the
/// kernel trace (visited table modeled in device memory).
pub fn traced_beam_search<S: VectorStore + ?Sized>(
    adjacency: &[Vec<u32>],
    store: &S,
    metric: Metric,
    query: &[f32],
    k: usize,
    params: &BeamParams,
) -> (Vec<Neighbor>, SearchTrace) {
    // A graph over a prefix of the store is allowed: incremental
    // builders (GANNS batch insertion) search the part built so far.
    assert!(adjacency.len() <= store.len(), "graph larger than dataset");
    assert_eq!(query.len(), store.dim(), "query dimension mismatch");
    let n = adjacency.len();
    let beam = params.beam.max(k).max(1);
    let avg_degree =
        if n == 0 { 0 } else { adjacency.iter().map(Vec::len).sum::<usize>() / n.max(1) };
    let mut trace = SearchTrace {
        itopk: beam,
        search_width: 1,
        degree: avg_degree.max(1),
        num_workers: 1,
        // SONG-style: hash sized for the whole search, device memory.
        hash_slots: (2 * params.max_iterations.max(1) * avg_degree.max(1)).next_power_of_two(),
        hash_in_shared: false,
        serial_queue: true, // SONG-style bounded pq, serialized inserts
        ..Default::default()
    };
    if n == 0 || k == 0 {
        return (Vec::new(), trace);
    }

    let oracle = DistanceOracle::new(store, metric);
    // A BTreeSet (not HashSet) keeps the membership structure free of
    // RandomState: nothing here iterates it today, but the determinism
    // lint bans hash containers on the search path outright.
    let mut visited: BTreeSet<u32> = BTreeSet::new();
    let mut pool: Vec<(Neighbor, bool)> = Vec::with_capacity(beam + 1);
    let mut rng = StdRng::seed_from_u64(params.seed);
    for _ in 0..params.n_starts.max(1).min(n) {
        let id = rng.gen_range(0..n) as u32;
        if visited.insert(id) {
            pool.push((Neighbor::new(id, oracle.to_row(query, id as usize)), false));
            trace.init_distances += 1;
        }
    }
    pool.sort_unstable_by(|a, b| cmp_neighbor(&a.0, &b.0));
    pool.truncate(beam);

    for _ in 0..params.max_iterations {
        let Some(pos) = pool.iter().position(|(_, expanded)| !expanded) else {
            break;
        };
        pool[pos].1 = true;
        let node = pool[pos].0.id;
        let neighbors = &adjacency[node as usize];
        let mut computed = 0usize;
        for &nb in neighbors {
            if !visited.insert(nb) {
                continue;
            }
            computed += 1;
            let d = oracle.to_row(query, nb as usize);
            let worst = pool.last().map(|(p, _)| p.dist).unwrap_or(f32::INFINITY);
            if pool.len() < beam || d < worst {
                let item = (Neighbor::new(nb, d), false);
                let at = pool.partition_point(|(p, _)| cmp_neighbor(p, &item.0).is_lt());
                pool.insert(at, item);
                pool.truncate(beam);
            }
        }
        trace.iterations.push(IterationTrace {
            candidates: neighbors.len() as u64,
            // Open-addressing probe estimate: one probe per lookup plus
            // collisions for the repeats.
            hash_probes: (neighbors.len() as u64 * 3) / 2,
            distances_computed: computed as u64,
            sort_len: neighbors.len() as u64,
            hash_reset: false,
        });
    }

    let out = pool.into_iter().take(k).map(|(p, _)| p).collect();
    (out, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(n: usize) -> (dataset::Dataset, Vec<Vec<u32>>) {
        let d = dataset::Dataset::from_flat((0..n).map(|i| i as f32).collect(), 1);
        let adj = (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push((i - 1) as u32);
                }
                if i + 1 < n {
                    v.push((i + 1) as u32);
                }
                v
            })
            .collect();
        (d, adj)
    }

    #[test]
    fn walks_to_the_nearest_point() {
        let (d, adj) = line_graph(100);
        let p = BeamParams { beam: 16, n_starts: 8, max_iterations: 200, seed: 1 };
        let (got, trace) = traced_beam_search(&adj, &d, Metric::SquaredL2, &[37.2], 3, &p);
        assert_eq!(got[0].id, 37);
        assert!(trace.iteration_count() > 0);
        assert!(!trace.hash_in_shared, "baselines keep the hash in device memory");
    }

    #[test]
    fn trace_counts_are_consistent() {
        let (d, adj) = line_graph(50);
        let p = BeamParams { beam: 8, n_starts: 4, max_iterations: 100, seed: 2 };
        let (_, trace) = traced_beam_search(&adj, &d, Metric::SquaredL2, &[10.0], 3, &p);
        for it in &trace.iterations {
            assert!(it.distances_computed <= it.candidates);
        }
        assert!(trace.total_distances() >= trace.init_distances);
    }

    #[test]
    fn respects_iteration_cap() {
        let (d, adj) = line_graph(500);
        let p = BeamParams { beam: 64, n_starts: 4, max_iterations: 5, seed: 3 };
        let (_, trace) = traced_beam_search(&adj, &d, Metric::SquaredL2, &[250.0], 3, &p);
        assert!(trace.iteration_count() <= 5);
    }

    #[test]
    fn empty_graph_is_fine() {
        let d = dataset::Dataset::empty(1);
        let p = BeamParams { beam: 4, n_starts: 2, max_iterations: 10, seed: 0 };
        let (got, _) = traced_beam_search(&[], &d, Metric::SquaredL2, &[0.0], 3, &p);
        assert!(got.is_empty());
    }
}
