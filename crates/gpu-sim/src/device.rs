//! Device specifications.

use serde::{Deserialize, Serialize};

/// The hardware parameters the cost model consumes. Defaults mirror
/// the paper's NVIDIA A100 (80 GB, SXM).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: String,
    /// Streaming multiprocessors (the paper's recommended `b_T`).
    pub sm_count: usize,
    /// Warp scheduler limit per SM.
    pub max_warps_per_sm: usize,
    /// Thread-block limit per SM.
    pub max_ctas_per_sm: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Per-thread register ceiling before spilling.
    pub max_registers_per_thread: usize,
    /// Usable shared memory per SM, bytes.
    pub shared_mem_per_sm: usize,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// Device (HBM) bandwidth, GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Average amortized cost of a dependent device-memory access,
    /// cycles.
    pub device_latency_cycles: f64,
    /// Average amortized cost of a shared-memory access, cycles.
    pub shared_latency_cycles: f64,
    /// Kernel launch overhead, microseconds (dominates tiny batches).
    pub launch_overhead_us: f64,
}

impl DeviceSpec {
    /// The paper's evaluation GPU: A100-SXM 80 GB.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100-SXM4-80GB".to_string(),
            sm_count: 108,
            max_warps_per_sm: 64,
            max_ctas_per_sm: 32,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            shared_mem_per_sm: 164 * 1024,
            clock_ghz: 1.41,
            mem_bandwidth_gbps: 2039.0,
            device_latency_cycles: 290.0,
            shared_latency_cycles: 25.0,
            launch_overhead_us: 8.0,
        }
    }

    /// NVIDIA V100-SXM2 32 GB — the GPU the GGNN paper evaluated on;
    /// useful for sensitivity studies across device generations.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100-SXM2-32GB".to_string(),
            sm_count: 80,
            max_warps_per_sm: 64,
            max_ctas_per_sm: 32,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            shared_mem_per_sm: 96 * 1024,
            clock_ghz: 1.53,
            mem_bandwidth_gbps: 900.0,
            device_latency_cycles: 400.0,
            shared_latency_cycles: 28.0,
            launch_overhead_us: 8.0,
        }
    }

    /// NVIDIA H100-SXM5 80 GB — one generation past the paper's A100.
    pub fn h100() -> Self {
        DeviceSpec {
            name: "H100-SXM5-80GB".to_string(),
            sm_count: 132,
            max_warps_per_sm: 64,
            max_ctas_per_sm: 32,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            shared_mem_per_sm: 228 * 1024,
            clock_ghz: 1.83,
            mem_bandwidth_gbps: 3350.0,
            device_latency_cycles: 280.0,
            shared_latency_cycles: 22.0,
            launch_overhead_us: 6.0,
        }
    }

    /// Seconds represented by `cycles` core cycles.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }

    /// Seconds needed to move `bytes` through device memory.
    pub fn bytes_to_seconds(&self, bytes: f64) -> f64 {
        bytes / (self.mem_bandwidth_gbps * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_published_numbers() {
        let d = DeviceSpec::a100();
        assert_eq!(d.sm_count, 108);
        assert_eq!(d.registers_per_sm, 65_536);
        assert!((d.clock_ghz - 1.41).abs() < 1e-9);
    }

    #[test]
    fn device_generations_order_sensibly() {
        let (v, a, h) = (DeviceSpec::v100(), DeviceSpec::a100(), DeviceSpec::h100());
        assert!(v.mem_bandwidth_gbps < a.mem_bandwidth_gbps);
        assert!(a.mem_bandwidth_gbps < h.mem_bandwidth_gbps);
        assert!(v.sm_count < a.sm_count && a.sm_count < h.sm_count);
    }

    #[test]
    fn unit_conversions() {
        let d = DeviceSpec::a100();
        let s = d.cycles_to_seconds(1.41e9);
        assert!((s - 1.0).abs() < 1e-9);
        let s = d.bytes_to_seconds(2039.0 * 1e9);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
