//! Per-CTA cost model: registers, occupancy, and iteration cycles.
//!
//! The model captures the four first-order effects the paper analyzes:
//!
//! * **Warp splitting (Sec. IV-B1)** — a distance computation issues
//!   `ceil(dim * bytes / (team * 16B))` 128-bit loads per team, and a
//!   warp computes `32 / team` distances concurrently. Smaller teams
//!   mean more distances in flight but more registers per thread (the
//!   query fragment is register-resident), shrinking occupancy.
//! * **Occupancy** — CTAs per SM is the minimum of the register,
//!   shared-memory, warp, and block limits; the search buffer and a
//!   shared-memory hash table both consume shared memory.
//! * **Top-M update (Sec. IV-B2)** — warp-register bitonic merge up to
//!   512 candidates; a radix path with a shared-memory footprint (and
//!   a larger constant) beyond, which is what makes very large `itopk`
//!   favor the multi-CTA mapping (Fig. 7).
//! * **Hash placement (Sec. IV-B3)** — each probe pays shared- or
//!   device-memory latency; forgettable resets pay a sweep over the
//!   table.

use crate::device::DeviceSpec;
use cagra::search::trace::{IterationTrace, SearchTrace};
use serde::{Deserialize, Serialize};

/// Static kernel shape for one search configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Threads cooperating on one distance (2..=32).
    pub team_size: usize,
    /// Vector dimensionality.
    pub dim: usize,
    /// Bytes per vector element (4 = FP32, 2 = FP16).
    pub bytes_per_elem: usize,
    /// Internal top-M length per CTA.
    pub itopk: usize,
    /// Visited-table slot count.
    pub hash_slots: usize,
    /// Hash table resident in shared memory?
    pub hash_in_shared: bool,
    /// Graph degree `d`.
    pub degree: usize,
    /// Threads per CTA (cuVS uses 64–512; 256 is the common setting).
    pub cta_threads: usize,
    /// Candidate queue maintained with serialized insertions
    /// (SONG/GGNN/GANNS) instead of CAGRA's bitonic sort+merge.
    pub serial_queue: bool,
}

impl KernelConfig {
    /// Derive the kernel shape from a recorded trace plus dataset
    /// storage properties.
    pub fn from_trace(
        trace: &SearchTrace,
        dim: usize,
        bytes_per_elem: usize,
        team_size: usize,
    ) -> Self {
        KernelConfig {
            team_size,
            dim,
            bytes_per_elem,
            itopk: if trace.num_workers > 1 {
                (trace.itopk.div_ceil(trace.num_workers)).max(32)
            } else {
                trace.itopk
            },
            hash_slots: trace.hash_slots,
            hash_in_shared: trace.hash_in_shared,
            degree: trace.degree,
            cta_threads: 256,
            serial_queue: trace.serial_queue,
        }
    }

    /// 128-bit (16-byte) loads each team member issues per vector.
    pub fn loads_per_team(&self) -> usize {
        (self.dim * self.bytes_per_elem).div_ceil(self.team_size * 16)
    }

    /// Distances computed concurrently per warp.
    pub fn teams_per_warp(&self) -> usize {
        32 / self.team_size
    }

    /// Estimated registers per thread: a base working set (buffer
    /// cursors, hash state, loop bookkeeping) plus the
    /// register-resident query fragment (`dim / team` f32 values).
    pub fn registers_per_thread(&self) -> usize {
        64 + self.dim.div_ceil(self.team_size)
    }

    /// Fraction of loaded bytes that are useful. A team loads
    /// `loads_per_team * team * 16` bytes to cover a
    /// `dim * bytes_per_elem` vector; the paper's Sec. IV-B1 example
    /// (96-dim FP32 on a full warp: 3072 useful of 4096 loaded bits)
    /// is the motivating inefficiency for warp splitting.
    pub fn lane_efficiency(&self) -> f64 {
        let useful = (self.dim * self.bytes_per_elem) as f64;
        let loaded = (self.loads_per_team() * self.team_size * 16) as f64;
        useful / loaded
    }

    /// Shared-memory bytes per CTA: the search buffer (top-M list +
    /// candidate list, 8 bytes per entry), the staging area for the
    /// query, and the hash table when shared-resident.
    pub fn shared_mem_per_cta(&self) -> usize {
        let buffer = (self.itopk + self.degree) * 8;
        let query = self.dim * self.bytes_per_elem;
        let hash = if self.hash_in_shared { self.hash_slots * 4 } else { 0 };
        buffer + query + hash + 1024 // fixed kernel scratch
    }
}

/// Resolved occupancy for a kernel on a device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct Occupancy {
    /// Concurrent CTAs per SM.
    pub ctas_per_sm: usize,
    /// Registers per thread after the spill ceiling.
    pub regs_per_thread: usize,
    /// Fraction of the register demand that spilled to local memory
    /// (0 = none); spills multiply distance-phase cost.
    pub spill_ratio: f64,
    /// Which resource bound occupancy: "regs", "smem", "warps", "ctas".
    pub limited_by: &'static str,
}

/// Compute occupancy for `cfg` on `device`.
pub fn cta_occupancy(device: &DeviceSpec, cfg: &KernelConfig) -> Occupancy {
    let wanted_regs = cfg.registers_per_thread();
    let regs = wanted_regs.min(device.max_registers_per_thread);
    let spill_ratio =
        if wanted_regs > regs { (wanted_regs - regs) as f64 / wanted_regs as f64 } else { 0.0 };
    let warps_per_cta = cfg.cta_threads.div_ceil(32);
    let by_regs = device.registers_per_sm / (regs * 32 * warps_per_cta).max(1);
    let by_smem = device.shared_mem_per_sm / cfg.shared_mem_per_cta().max(1);
    let by_warps = device.max_warps_per_sm / warps_per_cta.max(1);
    let by_ctas = device.max_ctas_per_sm;
    let (ctas, limited_by) =
        [(by_regs, "regs"), (by_smem, "smem"), (by_warps, "warps"), (by_ctas, "ctas")]
            .into_iter()
            .min_by_key(|&(c, _)| c)
            .expect("non-empty limits");
    Occupancy {
        ctas_per_sm: ctas.max(1).min(by_ctas.max(1)),
        regs_per_thread: regs,
        spill_ratio,
        limited_by,
    }
}

/// Cycles one CTA spends on the distance phase for `n_dist` vectors.
fn distance_cycles(cfg: &KernelConfig, occ: &Occupancy, n_dist: u64) -> f64 {
    if n_dist == 0 {
        return 0.0;
    }
    let warps_per_cta = (cfg.cta_threads / 32).max(1);
    // Distances in flight across the CTA: one per team.
    let concurrent = (cfg.teams_per_warp() * warps_per_cta).max(1);
    let rounds = (n_dist as f64 / concurrent as f64).ceil();
    // Per round a team issues `loads_per_team` 128-bit load
    // instructions (cost amortized over the memory pipeline), padded
    // by lane waste when the vector does not fill the transaction,
    // plus a log2(team)-step shuffle reduction. Register spills turn
    // register traffic into local-memory traffic on every access.
    let per_round = cfg.loads_per_team() as f64 * 30.0 / cfg.lane_efficiency()
        * (1.0 + 4.0 * occ.spill_ratio)
        + (cfg.team_size as f64).log2() * 4.0;
    // One exposed memory latency per phase; the rest is pipelined.
    rounds * per_round + latency_exposure(cfg) + 60.0
}

// Memory-latency exposure grows mildly with vector size (longer
// dependent load chains).
fn latency_exposure(cfg: &KernelConfig) -> f64 {
    (cfg.loads_per_team() as f64).sqrt() * 9.0
}

/// Cycles for the candidate-queue update.
fn topm_cycles(cfg: &KernelConfig, sort_len: u64) -> f64 {
    if sort_len == 0 {
        return 0.0;
    }
    if cfg.serial_queue {
        // SONG-style bounded priority queue: each candidate's insert
        // is a dependent binary search + shift executed by one thread
        // group — serialized across the candidate batch. This is the
        // data-structure bottleneck CAGRA's batched bitonic update
        // removes.
        let log_q = (cfg.itopk.max(2) as f64).log2();
        return sort_len as f64 * (log_q * 2.0 + 6.0);
    }
    let n = sort_len.next_power_of_two().max(2) as f64;
    let stages = n.log2();
    if cfg.itopk <= 512 {
        // Warp-register bitonic sort + merge with the top-M list:
        // n/32 elements per thread through log^2 stages.
        (n / 32.0).max(1.0) * stages * stages * 6.0 + cfg.itopk as f64 / 32.0 * 12.0
    } else {
        // CTA-wide radix path through shared memory: linear passes
        // with a bigger constant (the paper's observed degradation).
        (sort_len as f64 + cfg.itopk as f64) * 3.5 + 400.0
    }
}

/// Cycles spent in the hash table for one iteration.
fn hash_cycles(device: &DeviceSpec, cfg: &KernelConfig, it: &IterationTrace) -> f64 {
    // Probes within an iteration are independent, so they pipeline:
    // one exposed latency per iteration plus a per-probe issue cost
    // (device probes are full DRAM transactions; shared probes are
    // bank accesses), spread across the CTA's warps.
    let (latency, per_probe) = if cfg.hash_in_shared {
        (device.shared_latency_cycles, 2.0)
    } else {
        (device.device_latency_cycles, 8.0)
    };
    let warps = (cfg.cta_threads / 32) as f64;
    let probe_cost = if it.hash_probes == 0 {
        0.0
    } else {
        (latency + it.hash_probes as f64 * per_probe) / warps.max(1.0)
    };
    let reset_cost = if it.hash_reset {
        // fill() sweep at 16 bytes/cycle/warp + top-M re-registration.
        cfg.hash_slots as f64 * 4.0 / (16.0 * warps) + cfg.itopk as f64 * 2.0
    } else {
        0.0
    };
    probe_cost + reset_cost
}

/// Per-phase cycle attribution for a slice of kernel work, mirroring
/// the five phases of the search loop (Fig. 6): top-M sort, parent
/// selection/control, neighbor-list expansion, distance computation,
/// and visited-hash maintenance. Makes the cost model's attribution
/// inspectable instead of a single opaque total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct CycleBreakdown {
    /// Top-M candidate sort/merge cycles.
    pub sort: f64,
    /// Parent selection + fixed per-iteration control cycles.
    pub parent_select: f64,
    /// Neighbor-list (graph adjacency) fetch cycles.
    pub expand: f64,
    /// Distance-computation cycles.
    pub distance: f64,
    /// Visited-hash probe/reset cycles.
    pub hash: f64,
}

impl CycleBreakdown {
    /// Sum of all phases.
    pub fn total(&self) -> f64 {
        self.sort + self.parent_select + self.expand + self.distance + self.hash
    }

    /// Accumulate another breakdown into this one.
    pub fn accumulate(&mut self, other: &CycleBreakdown) {
        self.sort += other.sort;
        self.parent_select += other.parent_select;
        self.expand += other.expand;
        self.distance += other.distance;
        self.hash += other.hash;
    }

    /// Scale every phase (e.g. by a CTA count).
    pub fn scaled(&self, factor: f64) -> CycleBreakdown {
        CycleBreakdown {
            sort: self.sort * factor,
            parent_select: self.parent_select * factor,
            expand: self.expand * factor,
            distance: self.distance * factor,
            hash: self.hash * factor,
        }
    }
}

/// Phase-attributed cycles one CTA spends on one search iteration.
pub fn iteration_breakdown(
    device: &DeviceSpec,
    cfg: &KernelConfig,
    occ: &Occupancy,
    it: &IterationTrace,
) -> CycleBreakdown {
    CycleBreakdown {
        sort: topm_cycles(cfg, it.sort_len),
        parent_select: 120.0, // fixed per-iteration control overhead
        expand: (cfg.degree as f64 * 4.0 / 128.0).ceil() * 40.0, // neighbor-list loads
        distance: distance_cycles(cfg, occ, it.distances_computed),
        hash: hash_cycles(device, cfg, it),
    }
}

/// Cycles one CTA spends on one search iteration (all phases).
pub fn iteration_cycles(
    device: &DeviceSpec,
    cfg: &KernelConfig,
    occ: &Occupancy,
    it: &IterationTrace,
) -> f64 {
    iteration_breakdown(device, cfg, occ, it).total()
}

/// Phase-attributed cycles for the random-initialization phase.
pub fn init_breakdown(cfg: &KernelConfig, occ: &Occupancy, init_distances: u64) -> CycleBreakdown {
    CycleBreakdown {
        distance: distance_cycles(cfg, occ, init_distances),
        sort: topm_cycles(cfg, init_distances),
        ..CycleBreakdown::default()
    }
}

/// Cycles for the random-initialization phase.
pub fn init_cycles(cfg: &KernelConfig, occ: &Occupancy, init_distances: u64) -> f64 {
    init_breakdown(cfg, occ, init_distances).total()
}

/// Device-memory bytes one query moves (dataset vectors + neighbor
/// lists + a device-resident hash).
pub fn query_bytes(cfg: &KernelConfig, trace: &SearchTrace) -> f64 {
    // Lane waste loads real bytes: a 96-dim FP32 vector on a full-warp
    // team moves 512 of its 384 useful bytes (Sec. IV-B1).
    let vector_bytes = trace.total_distances() as f64 * (cfg.dim * cfg.bytes_per_elem) as f64
        / cfg.lane_efficiency();
    let graph_bytes: f64 = trace.iterations.iter().map(|i| (i.candidates * 4) as f64).sum();
    let hash_bytes = if cfg.hash_in_shared {
        0.0
    } else {
        // Each device-memory probe is its own DRAM transaction.
        trace.total_hash_probes() as f64 * 32.0
    };
    vector_bytes + graph_bytes + hash_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(team: usize, dim: usize) -> KernelConfig {
        KernelConfig {
            team_size: team,
            dim,
            bytes_per_elem: 4,
            itopk: 64,
            hash_slots: 2048,
            hash_in_shared: true,
            degree: 32,
            cta_threads: 256,
            serial_queue: false,
        }
    }

    #[test]
    fn loads_per_team_matches_paper_example() {
        // Sec. IV-B1: dim 96 FP32 = 3072 bits; team of 8 loads 1024
        // bits per instruction -> 3 loads.
        let c = cfg(8, 96);
        assert_eq!(c.loads_per_team(), 3);
        assert_eq!(c.teams_per_warp(), 4);
        // A full warp (team 32) covers 4096 bits in one go.
        assert_eq!(cfg(32, 96).loads_per_team(), 1);
    }

    #[test]
    fn fp16_halves_the_loads() {
        let mut c = cfg(8, 96);
        c.bytes_per_elem = 2;
        assert_eq!(c.loads_per_team(), 2); // 1536 bits / 1024
        let mut big = cfg(8, 960);
        assert_eq!(big.loads_per_team(), 30);
        big.bytes_per_elem = 2;
        assert_eq!(big.loads_per_team(), 15);
    }

    #[test]
    fn small_teams_burn_registers() {
        assert!(cfg(2, 96).registers_per_thread() > cfg(8, 96).registers_per_thread());
        // GIST at team 2 exceeds the per-thread ceiling -> spills.
        let d = DeviceSpec::a100();
        let occ = cta_occupancy(&d, &cfg(2, 960));
        assert!(occ.spill_ratio > 0.0);
        let occ8 = cta_occupancy(&d, &cfg(32, 960));
        assert_eq!(occ8.spill_ratio, 0.0);
    }

    #[test]
    fn occupancy_limited_by_registers_for_small_teams() {
        let d = DeviceSpec::a100();
        let occ2 = cta_occupancy(&d, &cfg(2, 96));
        let occ8 = cta_occupancy(&d, &cfg(8, 96));
        assert!(occ2.ctas_per_sm <= occ8.ctas_per_sm, "{occ2:?} vs {occ8:?}");
    }

    #[test]
    fn team_size_sweet_spot_for_small_dim() {
        // Fig. 8 (DEEP-1M, dim 96): team 4/8 beat 2 and 32.
        let d = DeviceSpec::a100();
        let it = IterationTrace {
            candidates: 32,
            distances_computed: 28,
            hash_probes: 40,
            sort_len: 32,
            hash_reset: false,
        };
        let score = |team| {
            let c = cfg(team, 96);
            let occ = cta_occupancy(&d, &c);
            // Throughput ~ parallel CTAs / per-iteration time.
            occ.ctas_per_sm as f64 / iteration_cycles(&d, &c, &occ, &it)
        };
        let (s2, s8, s32) = (score(2), score(8), score(32));
        assert!(s8 > s2, "team8 {s8} must beat team2 {s2}");
        assert!(s8 >= s32, "team8 {s8} must be >= team32 {s32}");
    }

    #[test]
    fn team_32_wins_for_large_dim() {
        // Fig. 8 (GIST, dim 960): full-warp teams win.
        let d = DeviceSpec::a100();
        let it = IterationTrace {
            candidates: 48,
            distances_computed: 40,
            hash_probes: 60,
            sort_len: 48,
            hash_reset: false,
        };
        let score = |team| {
            let c = cfg(team, 960);
            let occ = cta_occupancy(&d, &c);
            occ.ctas_per_sm as f64 / iteration_cycles(&d, &c, &occ, &it)
        };
        assert!(score(32) > score(4), "32: {} vs 4: {}", score(32), score(4));
        assert!(score(32) > score(2), "32: {} vs 2: {}", score(32), score(2));
    }

    #[test]
    fn shared_hash_is_cheaper_per_probe() {
        let d = DeviceSpec::a100();
        let it = IterationTrace {
            candidates: 32,
            distances_computed: 10,
            hash_probes: 50,
            sort_len: 32,
            hash_reset: false,
        };
        let shared = cfg(8, 96);
        let mut device_hash = cfg(8, 96);
        device_hash.hash_in_shared = false;
        let occ = cta_occupancy(&d, &shared);
        assert!(
            iteration_cycles(&d, &shared, &occ, &it)
                < iteration_cycles(&d, &device_hash, &occ, &it)
        );
    }

    #[test]
    fn huge_itopk_pays_radix_penalty() {
        let d = DeviceSpec::a100();
        let it = IterationTrace {
            candidates: 32,
            distances_computed: 10,
            hash_probes: 30,
            sort_len: 32,
            hash_reset: false,
        };
        let small = cfg(8, 96);
        let mut big = cfg(8, 96);
        big.itopk = 1024;
        let occ = cta_occupancy(&d, &small);
        assert!(
            iteration_cycles(&d, &big, &occ, &it) > 2.0 * iteration_cycles(&d, &small, &occ, &it)
        );
    }

    #[test]
    fn query_bytes_scale_with_precision() {
        let trace = SearchTrace {
            init_distances: 32,
            iterations: vec![IterationTrace {
                candidates: 32,
                distances_computed: 20,
                hash_probes: 40,
                sort_len: 32,
                hash_reset: false,
            }],
            itopk: 64,
            search_width: 1,
            degree: 32,
            num_workers: 1,
            hash_slots: 2048,
            hash_in_shared: true,
            serial_queue: false,
            scratch_reused: false,
            accesses: None,
        };
        let fp32 = query_bytes(&cfg(8, 96), &trace);
        let mut half = cfg(8, 96);
        half.bytes_per_elem = 2;
        let fp16 = query_bytes(&half, &trace);
        assert!(fp16 < fp32);
        assert!(fp16 > 0.4 * fp32);
    }
}
