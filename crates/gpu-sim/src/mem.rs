//! 128-bit memory-transaction replay: how many DRAM transactions a
//! kernel's gathers cost under a given vertex *numbering*.
//!
//! The cycle model in [`crate::cost`] prices each phase from operation
//! counts, which are invariant under relabeling — by design, a
//! relabeled index performs bit-identical work. What relabeling changes
//! is *where* that work lands in memory: gathers of nearby ids share
//! 128-byte lines and stay resident in cache, gathers of scattered ids
//! each pay a full line fill. This module replays the memory-access
//! log a search recorded ([`cagra::search::trace::AccessLog`]) against
//! a flat address-space layout and a small direct-mapped cache, and
//! counts the 128-bit (16-byte) transactions the misses would issue —
//! the quantity Sec. IV-B1 of the paper optimizes.
//!
//! The replay is deterministic and exact for the model: same trace,
//! same layout, same counts. Comparing counts across relabel
//! strategies on the *same* trace isolates the layout effect.

use cagra::search::trace::SearchTrace;
use serde::Serialize;

/// Bytes per cache line / memory segment.
pub const LINE_BYTES: u64 = 128;
/// 128-bit transactions per line fill (128 bytes / 16 bytes).
pub const TX_PER_LINE: u64 = 8;
/// Default cache size in lines: 192 KiB, the unified L1/shared storage
/// of an A100 SM — the cache a single query's CTA actually sees.
pub const DEFAULT_CACHE_LINES: usize = 1536;

/// Flat device address space for one index: adjacency rows first,
/// vector rows after (aligned to a line boundary), every row
/// contiguous. Mirrors how both arrays are actually stored.
#[derive(Clone, Copy, Debug)]
pub struct MemLayout {
    n: usize,
    adj_row_bytes: u64,
    vec_row_bytes: u64,
    vec_base: u64,
}

impl MemLayout {
    /// Layout for `n` nodes of graph degree `degree` and
    /// `vec_row_bytes` bytes per vector row (`dim * bytes_per_elem`).
    pub fn new(n: usize, degree: usize, vec_row_bytes: usize) -> MemLayout {
        let adj_row_bytes = (degree as u64) * 4;
        let adj_total = adj_row_bytes * n as u64;
        MemLayout {
            n,
            adj_row_bytes,
            vec_row_bytes: vec_row_bytes as u64,
            vec_base: adj_total.div_ceil(LINE_BYTES) * LINE_BYTES,
        }
    }

    /// Node count the layout covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the zero-node layout.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Byte range of node `id`'s adjacency row.
    fn adj_range(&self, id: u32) -> (u64, u64) {
        let start = id as u64 * self.adj_row_bytes;
        (start, start + self.adj_row_bytes)
    }

    /// Byte range of node `id`'s vector row.
    fn vec_range(&self, id: u32) -> (u64, u64) {
        let start = self.vec_base + id as u64 * self.vec_row_bytes;
        (start, start + self.vec_row_bytes)
    }
}

/// Direct-mapped cache of [`LINE_BYTES`] lines: one tag per set, a
/// first-order stand-in for the L1/L2 a gather stream sees. Direct
/// mapping makes conflict misses visible, which is exactly what hub
/// packing (degree relabeling) relieves.
#[derive(Clone, Debug)]
pub struct CacheModel {
    tags: Vec<u64>,
}

impl CacheModel {
    /// A cold cache of `lines` sets.
    pub fn new(lines: usize) -> CacheModel {
        assert!(lines > 0, "cache must have at least one line");
        CacheModel { tags: vec![u64::MAX; lines] }
    }

    /// Touch the byte range `[start, end)`, returning the number of
    /// 128-bit transactions issued (8 per missed line, 0 per hit).
    fn touch(&mut self, start: u64, end: u64) -> u64 {
        let mut tx = 0;
        let first = start / LINE_BYTES;
        let last = (end.max(start + 1) - 1) / LINE_BYTES;
        for line in first..=last {
            let set = (line % self.tags.len() as u64) as usize;
            if self.tags[set] != line {
                self.tags[set] = line;
                tx += TX_PER_LINE;
            }
        }
        tx
    }
}

/// 128-bit transaction counts per kernel phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct TxCounts {
    /// Vector-row gathers during random initialization.
    pub init: u64,
    /// Adjacency-row gathers during parent expansion.
    pub expand: u64,
    /// Vector-row gathers for scored (first-visit) neighbors.
    pub distance: u64,
}

impl TxCounts {
    /// Sum across phases.
    pub fn total(&self) -> u64 {
        self.init + self.expand + self.distance
    }

    /// Accumulate another count into this one.
    pub fn accumulate(&mut self, other: &TxCounts) {
        self.init += other.init;
        self.expand += other.expand;
        self.distance += other.distance;
    }
}

/// Replay one search's access log against `layout` on `cache`,
/// returning per-phase transaction counts. A trace recorded without
/// access logging contributes zero.
pub fn replay_trace(layout: &MemLayout, cache: &mut CacheModel, trace: &SearchTrace) -> TxCounts {
    let mut tx = TxCounts::default();
    let Some(log) = &trace.accesses else {
        return tx;
    };
    for &id in &log.init_scored {
        let (s, e) = layout.vec_range(id);
        tx.init += cache.touch(s, e);
    }
    for it in &log.iterations {
        for &p in &it.parents {
            let (s, e) = layout.adj_range(p);
            tx.expand += cache.touch(s, e);
        }
        for &id in &it.scored {
            let (s, e) = layout.vec_range(id);
            tx.distance += cache.touch(s, e);
        }
    }
    tx
}

/// Replay a whole batch, each query on its own cold cache (one CTA per
/// query: queries do not share an SM's L1). Records the totals into
/// the `sim.tx_*` observability counters.
pub fn replay_batch(layout: &MemLayout, traces: &[SearchTrace], cache_lines: usize) -> TxCounts {
    let mut total = TxCounts::default();
    for trace in traces {
        let mut cache = CacheModel::new(cache_lines);
        total.accumulate(&replay_trace(layout, &mut cache, trace));
    }
    let m = obs::metrics();
    m.sim_tx_init.add(total.init);
    m.sim_tx_expand.add(total.expand);
    m.sim_tx_distance.add(total.distance);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagra::search::trace::{AccessLog, IterAccess};

    fn trace_with(init: Vec<u32>, iters: Vec<IterAccess>) -> SearchTrace {
        SearchTrace {
            accesses: Some(AccessLog { init_scored: init, iterations: iters }),
            ..Default::default()
        }
    }

    #[test]
    fn adjacent_rows_share_lines() {
        // 32-byte vector rows: four consecutive ids fit in one line.
        let layout = MemLayout::new(64, 8, 32);
        let mut cache = CacheModel::new(DEFAULT_CACHE_LINES);
        let t = trace_with(vec![0, 1, 2, 3], vec![]);
        let tx = replay_trace(&layout, &mut cache, &t);
        assert_eq!(tx.init, TX_PER_LINE, "four rows in one line = one fill");

        // The same four rows scattered: four separate fills.
        let mut cold = CacheModel::new(DEFAULT_CACHE_LINES);
        let t = trace_with(vec![0, 16, 32, 48], vec![]);
        let tx = replay_trace(&layout, &mut cold, &t);
        assert_eq!(tx.init, 4 * TX_PER_LINE);
    }

    #[test]
    fn cache_hits_are_free_and_conflicts_cost() {
        let layout = MemLayout::new(1024, 8, 128);
        let mut cache = CacheModel::new(4); // tiny: 4 lines
        let t = trace_with(vec![], vec![IterAccess { parents: vec![], scored: vec![7, 7, 7] }]);
        let tx = replay_trace(&layout, &mut cache, &t);
        assert_eq!(tx.distance, TX_PER_LINE, "re-touching a resident line is free");

        // ids 0 and 4 map to the same set in a 4-line cache
        // (128-byte rows = one line per id): alternating evicts.
        let mut cache = CacheModel::new(4);
        let t = trace_with(vec![], vec![IterAccess { parents: vec![], scored: vec![0, 4, 0, 4] }]);
        let tx = replay_trace(&layout, &mut cache, &t);
        assert_eq!(tx.distance, 4 * TX_PER_LINE, "conflict misses every touch");
    }

    #[test]
    fn phases_attribute_to_their_own_counter() {
        let layout = MemLayout::new(256, 16, 64);
        let mut cache = CacheModel::new(DEFAULT_CACHE_LINES);
        let t = trace_with(vec![3], vec![IterAccess { parents: vec![9], scored: vec![200] }]);
        let tx = replay_trace(&layout, &mut cache, &t);
        assert!(tx.init > 0);
        assert!(tx.expand > 0);
        assert!(tx.distance > 0);
        assert_eq!(tx.total(), tx.init + tx.expand + tx.distance);
    }

    #[test]
    fn missing_access_log_contributes_zero() {
        let layout = MemLayout::new(16, 4, 16);
        let mut cache = CacheModel::new(8);
        assert_eq!(replay_trace(&layout, &mut cache, &SearchTrace::default()), TxCounts::default());
    }

    #[test]
    fn batch_replay_sums_and_isolates_queries() {
        let layout = MemLayout::new(64, 8, 128);
        let one = trace_with(vec![5], vec![]);
        let solo = replay_batch(&layout, std::slice::from_ref(&one), 16);
        // Two identical queries: cold caches each, so exactly double.
        let duo = replay_batch(&layout, &[one.clone(), one], 16);
        assert_eq!(duo.total(), 2 * solo.total());
    }

    #[test]
    fn vectors_do_not_alias_adjacency() {
        // Adjacency of the last node and vector of node 0 must land on
        // different lines (the vector base is line-aligned past the
        // adjacency block).
        let layout = MemLayout::new(10, 4, 16); // adjacency: 160 bytes
        let (adj_s, adj_e) = layout.adj_range(9);
        let (vec_s, _) = layout.vec_range(0);
        assert!(adj_e <= vec_s);
        assert_eq!(vec_s % LINE_BYTES, 0);
        assert!(adj_s / LINE_BYTES <= vec_s / LINE_BYTES);
    }
}
