//! Batch-level scheduling: turn per-query traces into simulated
//! wall-clock time for a whole kernel launch.
//!
//! Single-CTA launches one block per query; multi-CTA launches
//! `num_workers` blocks per query that advance in rounds. The batch
//! finishes when the slowest query finishes, but total throughput is
//! bounded by how many CTAs the device can keep resident (occupancy)
//! and by device-memory bandwidth — the same three bounds the paper
//! reasons about (Secs. IV-C1/C2, Q-C3).

use crate::cost::{
    cta_occupancy, init_breakdown, iteration_breakdown, query_bytes, CycleBreakdown, KernelConfig,
    Occupancy,
};
use crate::device::DeviceSpec;
use cagra::search::trace::{IterationTrace, SearchTrace};
use serde::{Deserialize, Serialize};

/// Hardware mapping of a launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mapping {
    /// One CTA per query.
    SingleCta,
    /// `trace.num_workers` CTAs per query.
    MultiCta,
}

/// Result of simulating one batch launch.
#[derive(Clone, Debug, Serialize)]
pub struct BatchTiming {
    /// End-to-end simulated seconds (including launch overhead).
    pub seconds: f64,
    /// Queries per second.
    pub qps: f64,
    /// Compute-bound component (occupancy-limited CTA cycles).
    pub compute_seconds: f64,
    /// Memory-bandwidth-bound component.
    pub bandwidth_seconds: f64,
    /// Critical path of the slowest query, seconds.
    pub critical_path_seconds: f64,
    /// Occupancy resolved for the kernel.
    pub occupancy: Occupancy,
    /// CTAs the device can keep resident.
    pub concurrent_ctas: usize,
    /// Total CTAs launched.
    pub total_ctas: usize,
    /// Whole-batch simulated cycles attributed to kernel phases
    /// (summed over every CTA of every query).
    pub cycles: CycleBreakdown,
}

/// Scale a round-aggregated multi-CTA iteration down to one worker.
fn per_worker(it: &IterationTrace, workers: usize) -> IterationTrace {
    let w = workers.max(1) as u64;
    IterationTrace {
        candidates: it.candidates.div_ceil(w),
        distances_computed: it.distances_computed.div_ceil(w),
        hash_probes: it.hash_probes.div_ceil(w),
        sort_len: it.sort_len,
        hash_reset: it.hash_reset,
    }
}

/// Simulate one launch of `traces.len()` queries.
///
/// All queries must share a kernel shape (same graph, parameters and
/// precision); `team_size` is the warp-splitting factor under test.
///
/// # Panics
/// Panics on an empty batch.
pub fn simulate_batch(
    device: &DeviceSpec,
    traces: &[SearchTrace],
    dim: usize,
    bytes_per_elem: usize,
    team_size: usize,
    mapping: Mapping,
) -> BatchTiming {
    assert!(!traces.is_empty(), "cannot simulate an empty batch");
    let cfg = KernelConfig::from_trace(&traces[0], dim, bytes_per_elem, team_size);
    let occ = cta_occupancy(device, &cfg);

    let mut total_cta_cycles = 0.0f64;
    let mut critical_cycles = 0.0f64;
    let mut total_bytes = 0.0f64;
    let mut total_ctas = 0usize;
    let mut batch_cycles = CycleBreakdown::default();

    for trace in traces {
        let workers = match mapping {
            Mapping::SingleCta => 1,
            Mapping::MultiCta => trace.num_workers.max(1),
        };
        total_ctas += workers;
        total_bytes += query_bytes(&cfg, trace);

        // Per-CTA critical path: init + every round this CTA runs.
        let mut cta_cycles =
            init_breakdown(&cfg, &occ, trace.init_distances.div_ceil(workers as u64));
        for it in &trace.iterations {
            let it_one = if workers > 1 { per_worker(it, workers) } else { *it };
            cta_cycles.accumulate(&iteration_breakdown(device, &cfg, &occ, &it_one));
        }
        critical_cycles = critical_cycles.max(cta_cycles.total());
        total_cta_cycles += cta_cycles.total() * workers as f64;
        batch_cycles.accumulate(&cta_cycles.scaled(workers as f64));
    }

    let m = obs::metrics();
    m.sim_batches.inc();
    m.sim_cycles_sort.add(batch_cycles.sort as u64);
    m.sim_cycles_parent_select.add(batch_cycles.parent_select as u64);
    m.sim_cycles_expand.add(batch_cycles.expand as u64);
    m.sim_cycles_distance.add(batch_cycles.distance as u64);
    m.sim_cycles_hash.add(batch_cycles.hash as u64);

    let concurrent_ctas = (device.sm_count * occ.ctas_per_sm).max(1);
    let throughput_cycles = total_cta_cycles / concurrent_ctas.min(total_ctas).max(1) as f64;
    let compute_cycles = throughput_cycles.max(critical_cycles);

    let compute_seconds = device.cycles_to_seconds(compute_cycles);
    // DRAM only reaches peak bandwidth with enough memory-level
    // parallelism: roughly 24 resident warps per SM on an A100-class
    // part. Below that, occupancy (registers, shared memory) throttles
    // achievable bandwidth — the mechanism behind the paper's
    // register-pressure and shared-memory-hash effects.
    let warps_per_cta = cfg.cta_threads.div_ceil(32);
    let mlp_fraction = ((occ.ctas_per_sm * warps_per_cta) as f64 / 24.0).min(1.0);
    let bandwidth_seconds = device.bytes_to_seconds(total_bytes) / mlp_fraction.max(1e-3);
    let seconds = compute_seconds.max(bandwidth_seconds) + device.launch_overhead_us * 1e-6;

    BatchTiming {
        seconds,
        qps: traces.len() as f64 / seconds,
        compute_seconds,
        bandwidth_seconds,
        critical_path_seconds: device.cycles_to_seconds(critical_cycles),
        occupancy: occ,
        concurrent_ctas,
        total_ctas,
        cycles: batch_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesize a plausible trace: `iters` iterations, `workers`
    /// CTAs, `new_frac` of candidates passing the hash.
    fn mk_trace(
        iters: usize,
        workers: usize,
        degree: usize,
        itopk: usize,
        shared: bool,
    ) -> SearchTrace {
        let per_round = (workers * degree) as u64;
        SearchTrace {
            init_distances: per_round,
            iterations: (0..iters)
                .map(|_| IterationTrace {
                    candidates: per_round,
                    distances_computed: (per_round * 7) / 10,
                    hash_probes: per_round * 3 / 2,
                    sort_len: degree as u64,
                    hash_reset: false,
                })
                .collect(),
            itopk,
            search_width: 1,
            degree,
            num_workers: workers,
            hash_slots: if shared { 2048 } else { 1 << 14 },
            hash_in_shared: shared,
            serial_queue: false,
            scratch_reused: false,
            accesses: None,
        }
    }

    #[test]
    fn single_query_prefers_multi_cta() {
        // Fig. 10 top: batch size 1, multi-CTA wins by engaging many
        // SMs. Multi-CTA reaches the same recall in ~1/workers the
        // rounds; give both the same total traversal volume.
        let d = DeviceSpec::a100();
        let single = vec![mk_trace(64, 1, 32, 64, true)];
        let multi = vec![mk_trace(16, 8, 32, 64, false)];
        let ts = simulate_batch(&d, &single, 96, 4, 8, Mapping::SingleCta);
        let tm = simulate_batch(&d, &multi, 96, 4, 8, Mapping::MultiCta);
        assert!(tm.qps > ts.qps, "multi {} <= single {}", tm.qps, ts.qps);
    }

    #[test]
    fn large_batch_prefers_single_cta() {
        // Fig. 10 bottom (DEEP-like): at batch 10k single-CTA wins —
        // it does less total work per query and its hash is cheap
        // shared memory.
        let d = DeviceSpec::a100();
        let single: Vec<_> = (0..2000).map(|_| mk_trace(24, 1, 32, 64, true)).collect();
        let multi: Vec<_> = (0..2000).map(|_| mk_trace(12, 8, 32, 64, false)).collect();
        let ts = simulate_batch(&d, &single, 96, 4, 8, Mapping::SingleCta);
        let tm = simulate_batch(&d, &multi, 96, 4, 8, Mapping::MultiCta);
        assert!(ts.qps > tm.qps, "single {} <= multi {}", ts.qps, tm.qps);
    }

    #[test]
    fn fp16_beats_fp32_when_bandwidth_bound() {
        // Fig. 13: FP16 increases large-batch throughput on bigger
        // dimensions by halving memory traffic.
        let d = DeviceSpec::a100();
        let traces: Vec<_> = (0..20_000).map(|_| mk_trace(24, 1, 48, 64, true)).collect();
        let t32 = simulate_batch(&d, &traces, 960, 4, 32, Mapping::SingleCta);
        let t16 = simulate_batch(&d, &traces, 960, 2, 32, Mapping::SingleCta);
        assert!(t16.qps > t32.qps, "fp16 {} <= fp32 {}", t16.qps, t32.qps);
    }

    #[test]
    fn throughput_saturates_with_batch_size() {
        let d = DeviceSpec::a100();
        let small: Vec<_> = (0..10).map(|_| mk_trace(24, 1, 32, 64, true)).collect();
        let large: Vec<_> = (0..5000).map(|_| mk_trace(24, 1, 32, 64, true)).collect();
        let qs = simulate_batch(&d, &small, 96, 4, 8, Mapping::SingleCta);
        let ql = simulate_batch(&d, &large, 96, 4, 8, Mapping::SingleCta);
        assert!(ql.qps > 10.0 * qs.qps, "large batch must amortize: {} vs {}", ql.qps, qs.qps);
    }

    #[test]
    fn launch_overhead_floors_tiny_batches() {
        let d = DeviceSpec::a100();
        let t = simulate_batch(&d, &[mk_trace(4, 1, 32, 64, true)], 96, 4, 8, Mapping::SingleCta);
        assert!(t.seconds >= d.launch_overhead_us * 1e-6);
        assert!(t.qps <= 1e6 / d.launch_overhead_us);
    }

    #[test]
    fn more_work_takes_longer() {
        let d = DeviceSpec::a100();
        let short =
            simulate_batch(&d, &[mk_trace(8, 1, 32, 64, true)], 96, 4, 8, Mapping::SingleCta);
        let long =
            simulate_batch(&d, &[mk_trace(80, 1, 32, 64, true)], 96, 4, 8, Mapping::SingleCta);
        assert!(long.seconds > short.seconds);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        simulate_batch(&DeviceSpec::a100(), &[], 96, 4, 8, Mapping::SingleCta);
    }
}
