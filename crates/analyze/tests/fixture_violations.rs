//! Every pass must fire on the deliberate violations planted in
//! `crates/analyze/fixtures/` — a lint that cannot find its own
//! fixture is scanning nothing. Counts are exact so a detector that
//! silently widens (or narrows) fails here first.

use analyze::passes::{self, determinism, hotpath, locks, panics};
use analyze::syntax::{Allow, Workspace};
use std::collections::{BTreeMap, BTreeSet};

fn fixture_ws() -> Workspace {
    let root = analyze::workspace_root().join("crates/analyze/fixtures");
    Workspace::load(&root, passes::SCOPES).expect("load fixture tree")
}

#[test]
fn panic_pass_fires_on_fixture() {
    let r = panics::run(&fixture_ws());
    let t = passes::tally(panics::KEYS, &r.findings);
    // 3 unwraps (panic_site + two lock guards), 1 indexing (the bare
    // ALLOW still counts), 1 allowed (the reasoned ALLOW); the
    // #[cfg(test)] unwrap and assert_eq are invisible.
    assert_eq!(t["crates/demo"], vec![3, 0, 0, 0, 1, 1]);
    let bare = r.findings.iter().filter(|f| f.allow == Allow::Bare).count();
    assert_eq!(bare, 1, "the reasonless ALLOW must be detected as bare");
}

#[test]
fn alloc_pass_fires_on_fixture() {
    let mut hot: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    hot.insert("crates/demo".into(), ["hot_alloc".to_string()].into_iter().collect());
    let r = hotpath::run(&fixture_ws(), &hot);
    let t = passes::tally(hotpath::KEYS, &r.findings);
    assert_eq!(t["crates/demo"], vec![1, 0], "to_vec in the listed hot fn");
    assert!(r.problems.is_empty(), "{:?}", r.problems);
}

#[test]
fn lock_pass_fires_on_fixture() {
    let r = locks::run(&fixture_ws());
    let t = passes::tally(locks::KEYS, &r.findings);
    // Two acquisitions; `names` is taken while `items` is held
    // (nested); `collect` allocates inside the `items` section.
    assert_eq!(t["crates/demo"], vec![2, 1, 1, 0]);
    assert!(r.problems.is_empty(), "no cycle in the fixture: {:?}", r.problems);
}

#[test]
fn determinism_pass_fires_on_fixture() {
    let r = determinism::run(&fixture_ws(), &["crates/demo"]);
    let t = passes::tally(determinism::KEYS, &r.findings);
    assert_eq!(t["crates/demo"], vec![1, 0, 0, 0], "HashMap reachable from search_demo");
}
