//! Lexer mask invariants over arbitrary concatenations of pathological
//! source fragments (raw strings, nested block comments, char literals
//! that look like syntax, escaped quotes, line continuations). Every
//! downstream pass assumes these properties; if one breaks, every
//! budget in the repo is suspect.

use analyze::lexer::mask;
use proptest::prelude::*;

/// Tricky fragments; random concatenations explore their interactions
/// (a raw string opened right after a block comment, a char literal
/// against a line comment, ...).
const VOCAB: &[&str] = &[
    "fn main() {}",
    "// line comment\n",
    "/* block /* nested */ still */",
    "\"string // not a comment\"",
    "r#\"raw \" quote\"#",
    "r\"raw\"",
    "b\"bytes\"",
    "'\"'",
    "'a'",
    "'\\''",
    "'/'",
    "'a",
    "\n",
    "let x = v[0];",
    "\"esc \\\" quote\"",
    "\"trail \\\n cont\"",
    "// ALLOW(panic): reason\n",
    "#",
    "<'a>",
];

fn assemble(picks: &[usize]) -> String {
    picks.iter().map(|&i| VOCAB[i % VOCAB.len()]).collect()
}

proptest! {
    #[test]
    fn masks_are_aligned_disjoint_and_newline_preserving(
        picks in proptest::collection::vec(0usize..1000, 0..40)
    ) {
        let src = assemble(&picks);
        let m = mask(&src);
        // Byte-aligned with the input.
        prop_assert_eq!(m.code.len(), src.len());
        prop_assert_eq!(m.comment.len(), src.len());
        let (s, c, k) = (src.as_bytes(), m.code.as_bytes(), m.comment.as_bytes());
        for i in 0..s.len() {
            // Newlines survive in BOTH masks (line numbers must match);
            // every other mask byte is the source byte or a blank.
            if s[i] == b'\n' {
                prop_assert_eq!(c[i], b'\n');
                prop_assert_eq!(k[i], b'\n');
            } else {
                prop_assert!(c[i] == s[i] || c[i] == b' ', "code[{}]", i);
                prop_assert!(k[i] == s[i] || k[i] == b' ', "comment[{}]", i);
                // A byte is never code AND comment.
                prop_assert!(
                    c[i] == b' ' || k[i] == b' ',
                    "byte {} claimed by both masks", i
                );
            }
        }
    }

    #[test]
    fn masking_is_deterministic_and_line_stable(
        picks in proptest::collection::vec(0usize..1000, 0..40)
    ) {
        let src = assemble(&picks);
        let a = mask(&src);
        let b = mask(&src);
        prop_assert_eq!(&a.code, &b.code);
        prop_assert_eq!(&a.comment, &b.comment);
        let lines = src.bytes().filter(|&b| b == b'\n').count();
        prop_assert_eq!(a.code.bytes().filter(|&b| b == b'\n').count(), lines);
        prop_assert_eq!(a.comment.bytes().filter(|&b| b == b'\n').count(), lines);
    }
}
