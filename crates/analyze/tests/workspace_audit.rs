//! Runs the real unsafe audit over the real workspace as part of
//! tier-1 `cargo test`, so an undocumented `unsafe` or an unreviewed
//! budget drift fails the ordinary test run — not just the dedicated
//! CI lane.

#[test]
fn workspace_audit_is_clean() {
    let root = analyze::workspace_root();
    match analyze::run_audit(&root) {
        Ok(sites) => assert!(!sites.is_empty(), "audit found no unsafe at all — scan is broken"),
        Err(problems) => panic!(
            "unsafe audit failed with {} problem(s):\n  {}",
            problems.len(),
            problems.join("\n  ")
        ),
    }
}

#[test]
fn budget_file_is_canonical() {
    // `budget-write` output must be byte-identical to the committed
    // file, so formatting drift can't mask a count change in review.
    let root = analyze::workspace_root();
    let sites = analyze::audit_workspace(&root).expect("walk workspace");
    let expected = analyze::budget::render(&analyze::budget::tally(&sites));
    let committed = std::fs::read_to_string(analyze::budget_path(&root)).expect("read budget");
    assert_eq!(committed, expected, "run `cargo run -p analyze -- budget-write` and commit");
}
