//! Runs the real static-analysis suite over the real workspace as part
//! of tier-1 `cargo test`, so an undocumented `unsafe`, a new panic
//! path, a hot-loop allocation, a lock-order regression, an
//! order-sensitive construct, or an unreviewed budget drift fails the
//! ordinary test run — not just the dedicated CI lane.

#[test]
fn workspace_audit_is_clean() {
    let root = analyze::workspace_root();
    match analyze::run_audit(&root) {
        Ok(sites) => assert!(!sites.is_empty(), "audit found no unsafe at all — scan is broken"),
        Err(problems) => panic!(
            "unsafe audit failed with {} problem(s):\n  {}",
            problems.len(),
            problems.join("\n  ")
        ),
    }
}

#[test]
fn budget_file_is_canonical() {
    // `budget-write` output must be byte-identical to the committed
    // file, so formatting drift can't mask a count change in review.
    let root = analyze::workspace_root();
    let sites = analyze::audit_workspace(&root).expect("walk workspace");
    let expected = analyze::budget::render(&analyze::budget::tally(&sites));
    let committed = std::fs::read_to_string(analyze::budget_path(&root)).expect("read budget");
    assert_eq!(committed, expected, "run `cargo run -p analyze -- budget-write` and commit");
}

#[test]
fn every_pass_is_clean() {
    let root = analyze::workspace_root();
    for pass in analyze::PASSES {
        let out = analyze::audit_pass(&root, pass).expect("run pass");
        assert!(
            out.problems.is_empty(),
            "{pass} audit failed with {} problem(s):\n  {}",
            out.problems.len(),
            out.problems.join("\n  ")
        );
    }
}

#[test]
fn every_budget_file_is_canonical() {
    // Each pass's `budget-write` output must be byte-identical to the
    // committed file, so formatting drift can't mask a count change.
    let root = analyze::workspace_root();
    for pass in analyze::PASSES {
        let schema = analyze::pass_schema(pass).expect("known pass");
        let out = analyze::audit_pass(&root, pass).expect("run pass");
        let expected = analyze::ledger::render(schema, &out.tallies);
        let committed = std::fs::read_to_string(analyze::pass_budget_path(&root, schema))
            .unwrap_or_else(|e| panic!("read {}: {e}", schema.file));
        assert_eq!(committed, expected, "run `{}` and commit", schema.write_cmd);
    }
}

#[test]
fn pinned_zero_buckets_hold_in_committed_budgets() {
    // `crates/serve` and the try_search call graph must stay at zero
    // un-ALLOWed panic sites — in the committed file, not just the
    // live scan, so a hand-edited budget can't smuggle a site in.
    let root = analyze::workspace_root();
    for pass in analyze::PASSES {
        let schema = analyze::pass_schema(pass).expect("known pass");
        if schema.pinned_zero.is_empty() {
            continue;
        }
        let text = std::fs::read_to_string(analyze::pass_budget_path(&root, schema))
            .unwrap_or_else(|e| panic!("read {}: {e}", schema.file));
        let tallies = analyze::ledger::parse(schema, &text).expect("parse committed budget");
        for (bucket, _) in schema.pinned_zero {
            let counts = tallies.get(*bucket).unwrap_or_else(|| {
                panic!("{}: pinned bucket {bucket} missing from committed file", schema.file)
            });
            // Every key except the trailing `allowed` must be zero.
            let sites = &counts[..counts.len().saturating_sub(1)];
            assert!(
                sites.iter().all(|&c| c == 0),
                "{}: pinned-zero bucket {bucket} has un-ALLOWed sites: {counts:?}",
                schema.file
            );
        }
    }
}
