//! The unsafe-audit pass: inventory every `unsafe` site in the
//! workspace and check that each carries the adjacent safety
//! documentation the workspace convention demands.
//!
//! Conventions enforced (see DESIGN.md "Soundness & analysis"):
//!
//! * `unsafe {}` **blocks** need a `// SAFETY:` comment on the same
//!   line or in the contiguous comment run directly above;
//! * `unsafe fn` declarations need a `/// # Safety` doc section (or a
//!   `SAFETY:` comment) directly above, explaining the caller
//!   contract;
//! * `unsafe impl` / `unsafe trait` need a `// SAFETY:` comment
//!   directly above justifying the asserted invariant.
//!
//! The pass is purely textual (via [`crate::lexer`]), so it also
//! covers sources that are `cfg`'d out on the build host — e.g. the
//! NEON kernels on an x86 CI runner — which no compiler-based lint
//! can see.

use crate::lexer;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// What kind of `unsafe` a site introduces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// `unsafe { .. }` expression block (incl. `unsafe extern` blocks).
    Block,
    /// `unsafe fn` declaration (caller-contract unsafety).
    Fn,
    /// `unsafe impl` (asserting a marker/contract invariant).
    Impl,
    /// `unsafe trait` declaration.
    Trait,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kind::Block => "block",
            Kind::Fn => "fn",
            Kind::Impl => "impl",
            Kind::Trait => "trait",
        })
    }
}

/// One `unsafe` occurrence in the workspace.
pub struct Site {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    pub kind: Kind,
    /// Whether the required adjacent safety documentation was found.
    pub documented: bool,
}

impl Site {
    /// The budget bucket this site belongs to: `crates/<name>`,
    /// `shims/<name>`, or `root` for the top-level package.
    pub fn bucket(&self) -> String {
        let mut parts = self.path.components().filter_map(|c| c.as_os_str().to_str());
        match (parts.next(), parts.next()) {
            (Some(top @ ("crates" | "shims")), Some(name)) => format!("{top}/{name}"),
            _ => "root".to_string(),
        }
    }
}

/// Per-bucket tallies, the unit the budget file is expressed in.
#[derive(Default, Clone, Copy, PartialEq, Eq, Debug)]
pub struct Counts {
    pub blocks: usize,
    pub fns: usize,
    pub impls: usize,
    pub traits: usize,
}

impl Counts {
    pub fn add(&mut self, kind: Kind) {
        match kind {
            Kind::Block => self.blocks += 1,
            Kind::Fn => self.fns += 1,
            Kind::Impl => self.impls += 1,
            Kind::Trait => self.traits += 1,
        }
    }

    pub fn total(&self) -> usize {
        self.blocks + self.fns + self.impls + self.traits
    }
}

/// Directories under the workspace root that hold Rust sources. The
/// walk skips build output (`target/`) and anything hidden.
const SCOPES: &[&str] = &["crates", "shims", "src", "tests", "examples", "benches"];

/// Collect every `.rs` file in scope, paths relative to `root`,
/// sorted for deterministic reports.
pub fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for scope in SCOPES {
        let dir = root.join(scope);
        if dir.is_dir() {
            walk(&dir, Path::new(scope), &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with('.') || name == "target" || name == "fixtures" {
            // `fixtures/` holds deliberately-violating lint-test
            // sources (crates/analyze/fixtures); auditing them would
            // poison every workspace budget.
            continue;
        }
        let path = entry.path();
        let rel = rel.join(name);
        if path.is_dir() {
            walk(&path, &rel, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Audit every in-scope source file under `root`.
pub fn audit_workspace(root: &Path) -> std::io::Result<Vec<Site>> {
    let mut sites = Vec::new();
    for rel in source_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        scan_file(&rel, &src, &mut sites);
    }
    Ok(sites)
}

/// Scan one file's source text for `unsafe` sites.
pub fn scan_file(rel: &Path, src: &str, out: &mut Vec<Site>) {
    let masks = lexer::mask(src);
    let code = masks.code.as_bytes();
    let code_lines: Vec<&str> = masks.code.lines().collect();
    let comment_lines: Vec<&str> = masks.comment.lines().collect();

    for pos in crate::syntax::word_occurrences(&masks.code, "unsafe") {
        let Some(kind) = classify(code, pos + "unsafe".len()) else {
            continue; // `unsafe fn(..)` pointer type: no site, nothing to document
        };
        let line = masks.code[..pos].bytes().filter(|&b| b == b'\n').count();
        let documented = is_documented(kind, line, &code_lines, &comment_lines);
        out.push(Site { path: rel.to_path_buf(), line: line + 1, kind, documented });
    }
}

/// Decide what an `unsafe` keyword at `code[..from]` introduces by
/// looking at the following code tokens. Returns `None` for
/// fn-pointer *types* (`unsafe fn(..)`, `unsafe extern "C" fn(..)`),
/// which declare no new obligation site.
fn classify(code: &[u8], mut from: usize) -> Option<Kind> {
    loop {
        let (tok, next) = next_token(code, from)?;
        from = next;
        match tok.as_str() {
            // `unsafe extern "C" fn(..)` type or `unsafe extern {}`
            // block: keep scanning past the (masked) ABI string.
            "extern" => continue,
            "fn" => {
                // `fn` directly followed by `(` is a pointer type.
                let (peek, _) = next_token(code, from)?;
                return if peek == "(" { None } else { Some(Kind::Fn) };
            }
            "impl" => return Some(Kind::Impl),
            "trait" => return Some(Kind::Trait),
            "{" => return Some(Kind::Block),
            // Anything else is a shape this scanner doesn't know;
            // surface it as a block so the audit flags rather than
            // silently skips it.
            _ => return Some(Kind::Block),
        }
    }
}

use crate::syntax::next_token;

/// Check the adjacency convention for a site on 0-based `line`.
fn is_documented(kind: Kind, line: usize, code_lines: &[&str], comment_lines: &[&str]) -> bool {
    let marker_hit = |l: usize| {
        let c = comment_lines.get(l).copied().unwrap_or("");
        c.contains("SAFETY:") || (kind == Kind::Fn && c.contains("# Safety"))
    };
    // Same-line comment (e.g. `unsafe { .. } // SAFETY: ..` or the
    // comment introducing a one-liner).
    if marker_hit(line) {
        return true;
    }
    // Walk the contiguous run of comment-only and attribute lines
    // directly above; any code or blank line ends the run.
    let mut l = line;
    while l > 0 {
        l -= 1;
        let code_l = code_lines.get(l).copied().unwrap_or("").trim();
        let comment_l = comment_lines.get(l).copied().unwrap_or("").trim();
        let is_comment_only = code_l.is_empty() && !comment_l.is_empty();
        let is_attr = code_l.starts_with("#[");
        if is_comment_only || is_attr {
            if marker_hit(l) {
                return true;
            }
            continue;
        }
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Site> {
        let mut out = Vec::new();
        scan_file(Path::new("crates/demo/src/lib.rs"), src, &mut out);
        out
    }

    #[test]
    fn documented_block_passes_and_bare_block_fails() {
        let sites = scan("fn f() {\n    // SAFETY: index is in bounds by loop invariant.\n    unsafe { g() }\n}\nfn h() {\n    unsafe { g() }\n}\n");
        assert_eq!(sites.len(), 2);
        assert_eq!((sites[0].kind, sites[0].documented), (Kind::Block, true));
        assert_eq!((sites[1].kind, sites[1].documented, sites[1].line), (Kind::Block, false, 6));
    }

    #[test]
    fn fn_accepts_safety_doc_section_through_attributes() {
        let src = "/// Does a thing.\n///\n/// # Safety\n/// Caller must uphold X.\n#[inline]\npub unsafe fn f() {}\n";
        let sites = scan(src);
        assert_eq!(sites.len(), 1);
        assert_eq!((sites[0].kind, sites[0].documented), (Kind::Fn, true));
    }

    #[test]
    fn impl_requires_safety_comment() {
        let sites = scan("// SAFETY: T: Send suffices; see DESIGN.md.\nunsafe impl<T: Send> Sync for P<T> {}\nunsafe impl<T> Send for Q<T> {}\n");
        assert_eq!(sites.len(), 2);
        assert!(sites[0].documented);
        assert!(!sites[1].documented);
        assert!(sites.iter().all(|s| s.kind == Kind::Impl));
    }

    #[test]
    fn fn_pointer_types_are_not_sites() {
        let sites = scan("type K = unsafe fn(*const f32, usize) -> f32;\ntype E = unsafe extern \"C\" fn(i32);\n");
        assert!(sites.is_empty(), "fn-pointer types declare no obligation");
    }

    #[test]
    fn blank_line_breaks_the_comment_run() {
        let sites = scan("// SAFETY: stale, detached comment.\n\nunsafe { g() }\n");
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].documented, "a blank line must detach the justification");
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_ignored() {
        let sites = scan("// this mentions unsafe { } casually\nlet s = \"unsafe impl Sync\";\n");
        assert!(sites.is_empty());
    }

    #[test]
    fn buckets_attribute_by_top_level_dir() {
        let mut out = Vec::new();
        scan_file(Path::new("shims/loom/src/lib.rs"), "unsafe { g() }\n", &mut out);
        scan_file(Path::new("tests/end_to_end.rs"), "unsafe { g() }\n", &mut out);
        assert_eq!(out[0].bucket(), "shims/loom");
        assert_eq!(out[1].bucket(), "root");
    }
}
