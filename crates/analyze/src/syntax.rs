//! Shared syntactic model for the multi-pass lint suite.
//!
//! Every pass beyond the unsafe audit needs the same three structural
//! facts about a source file, all derivable from the [`crate::lexer`]
//! masks without a real parse tree:
//!
//! * **function spans** — `fn name` occurrences with brace-matched
//!   body extents, the unit the hot-path, lock-order, and determinism
//!   passes reason over (and the nodes of the textual call graph);
//! * **test regions** — `#[cfg(test)]` items and test-scope files, so
//!   the "non-test code" passes can skip them;
//! * **escape hatches** — `ALLOW(<pass>): <reason>` adjacency, the
//!   generalization of the unsafe audit's `SAFETY:` rule.
//!
//! Like the unsafe audit, everything here is textual: the passes see
//! `cfg`'d-out code (NEON kernels on x86 CI) that compiler-based lints
//! cannot reach, at the cost of name-based (not type-based)
//! resolution. The budget files absorb the imprecision: what matters
//! is that the counts are *stable and exact*, so any drift is a
//! reviewed diff.

use crate::audit;
use crate::lexer::{self, Masks};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// One parsed source file, shared by all passes.
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub rel: PathBuf,
    /// Budget bucket (`crates/<name>`, `shims/<name>`, or `root`).
    pub bucket: String,
    /// Lexer masks over the raw source.
    pub masks: Masks,
    /// Code mask split into lines (parallel to `comment_lines`).
    pub code_lines: Vec<String>,
    /// Comment mask split into lines.
    pub comment_lines: Vec<String>,
    /// Byte offset of the start of each line of the masks.
    pub line_starts: Vec<usize>,
    /// True when the whole file is test scope (`tests/`, `benches/`,
    /// `examples/` trees, or a `tests` directory inside a crate).
    pub is_test_file: bool,
    /// Byte ranges of `#[cfg(test)]` items within the code mask.
    pub test_ranges: Vec<Range<usize>>,
    /// Function definitions found in the code mask.
    pub fns: Vec<FnSpan>,
}

/// A `fn` definition: its name and brace-matched body extent.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The declared name (textual; generics/impl context not resolved).
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Byte range of the body, `{` through matching `}` (empty for
    /// bodyless trait-method declarations).
    pub body: Range<usize>,
}

impl SourceFile {
    /// Lex and index one file.
    pub fn parse(rel: &Path, src: &str) -> SourceFile {
        let masks = lexer::mask(src);
        let code_lines: Vec<String> = masks.code.lines().map(str::to_string).collect();
        let comment_lines: Vec<String> = masks.comment.lines().map(str::to_string).collect();
        let mut line_starts = vec![0usize];
        for (i, b) in masks.code.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let is_test_file = rel
            .components()
            .any(|c| matches!(c.as_os_str().to_str(), Some("tests" | "benches" | "examples")))
            || rel
                .file_stem()
                .and_then(|s| s.to_str())
                // Loom model-checking harnesses live in src/ but only
                // compile under `--cfg loom`; they are test scope.
                .is_some_and(|s| s.starts_with("loom_model"));
        let test_ranges = cfg_test_ranges(&masks.code);
        let fns = functions(&masks.code);
        let bucket = bucket_of(rel);
        SourceFile {
            rel: rel.to_path_buf(),
            bucket,
            masks,
            code_lines,
            comment_lines,
            line_starts,
            is_test_file,
            test_ranges,
            fns,
        }
    }

    /// 0-based line containing byte `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(l) => l,
            Err(l) => l - 1,
        }
    }

    /// True when byte `pos` lies in test scope (test file or inside a
    /// `#[cfg(test)]` item).
    pub fn in_test_code(&self, pos: usize) -> bool {
        self.is_test_file || self.test_ranges.iter().any(|r| r.contains(&pos))
    }

    /// The function whose body contains byte `pos`, if any. Nested
    /// functions resolve to the innermost definition.
    pub fn enclosing_fn(&self, pos: usize) -> Option<&FnSpan> {
        self.fns.iter().filter(|f| f.body.contains(&pos)).min_by_key(|f| f.body.end - f.body.start)
    }
}

/// The workspace as every pass sees it: all in-scope files, parsed
/// once. `scopes` filters the walk (e.g. the code-quality passes skip
/// `shims/`, which holds vendored offline stand-ins, not product
/// code).
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Load every `.rs` file under `root`, excluding top-level scopes
    /// not listed in `scopes`.
    pub fn load(root: &Path, scopes: &[&str]) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        for rel in audit::source_files(root)? {
            let top = rel.components().next().and_then(|c| c.as_os_str().to_str());
            if !top.is_some_and(|t| scopes.contains(&t)) {
                continue;
            }
            let src = std::fs::read_to_string(root.join(&rel))?;
            files.push(SourceFile::parse(&rel, &src));
        }
        Ok(Workspace { files })
    }
}

/// Budget bucket for a path: `crates/<name>`, `shims/<name>`, `root`.
pub fn bucket_of(rel: &Path) -> String {
    let mut parts = rel.components().filter_map(|c| c.as_os_str().to_str());
    match (parts.next(), parts.next()) {
        (Some(top @ ("crates" | "shims")), Some(name)) => format!("{top}/{name}"),
        _ => "root".to_string(),
    }
}

/// Byte offsets of whole-word matches of `word` in `hay`.
pub fn word_occurrences(hay: &str, word: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    hay.match_indices(word)
        .filter(|&(i, _)| {
            let before_ok = i == 0 || !is_word(bytes[i - 1]);
            let after = i + word.len();
            let after_ok = after >= bytes.len() || !is_word(bytes[after]);
            before_ok && after_ok
        })
        .map(|(i, _)| i)
        .collect()
}

/// Next non-whitespace code token at/after `from`: a word or one
/// punctuation byte, with the offset past it.
pub fn next_token(code: &[u8], mut from: usize) -> Option<(String, usize)> {
    while from < code.len() && (code[from] as char).is_whitespace() {
        from += 1;
    }
    if from >= code.len() {
        return None;
    }
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let start = from;
    if is_word(code[from]) {
        while from < code.len() && is_word(code[from]) {
            from += 1;
        }
    } else {
        from += 1;
    }
    Some((String::from_utf8_lossy(&code[start..from]).into_owned(), from))
}

/// Find the matching `}` for the `{` at `open` (depth-counted over
/// the code mask, so strings/comments cannot unbalance it). Returns
/// the offset *after* the closing brace, or `code.len()` when
/// unbalanced.
pub fn match_brace(code: &[u8], open: usize) -> usize {
    debug_assert_eq!(code[open], b'{');
    let mut depth = 0usize;
    for (i, &b) in code.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    code.len()
}

/// Extract every `fn` definition from a code mask.
pub fn functions(code: &str) -> Vec<FnSpan> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for pos in word_occurrences(code, "fn") {
        let Some((name, after_name)) = next_token(bytes, pos + 2) else { continue };
        // `fn(` is a fn-pointer type, not a definition.
        if !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
            continue;
        }
        let line = code[..pos].bytes().filter(|&b| b == b'\n').count();
        // Scan for the body `{` (or a `;` ending a bodyless trait
        // declaration) at zero paren/bracket depth, so braces inside
        // const-generic brackets or where-clause parens don't trigger
        // early.
        let mut depth = 0i32;
        let mut body = after_name..after_name;
        let mut i = after_name;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    body = i..match_brace(bytes, i);
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        out.push(FnSpan { name, line, body });
    }
    out
}

/// Byte ranges of `#[cfg(test)]`-gated items in a code mask. The
/// attribute's item is the next `{`-delimited block (a `mod tests`,
/// fn, or impl) or, for statement-like items, everything through the
/// next top-level `;`.
pub fn cfg_test_ranges(code: &str) -> Vec<Range<usize>> {
    let bytes = code.as_bytes();
    let mut out: Vec<Range<usize>> = Vec::new();
    for (at, _) in code.match_indices("#[cfg(test)]").chain(code.match_indices("#[cfg(all(test")) {
        if out.iter().any(|r| r.contains(&at)) {
            continue; // nested inside an already-recorded region
        }
        let mut depth = 0i32;
        let mut i = at + 1;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    out.push(at..match_brace(bytes, i));
                    break;
                }
                b';' if depth == 0 => {
                    out.push(at..i + 1);
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

/// Escape-hatch lookup result for one site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Allow {
    /// No `ALLOW(<pass>)` marker adjacent to the site.
    None,
    /// Marker present with a non-empty reason — the site is exempt.
    Reasoned,
    /// Marker present but the reason is missing/empty — itself a
    /// violation (the hatch exists to force written justification).
    Bare,
}

/// Check the `ALLOW(<tag>): <reason>` convention for a site on
/// 0-based `line`: the marker counts on the same line or anywhere in
/// the contiguous run of comment-only/attribute lines directly above
/// (same adjacency rule as the unsafe audit's `SAFETY:` comments).
pub fn find_allow(
    tag: &str,
    line: usize,
    code_lines: &[String],
    comment_lines: &[String],
) -> Allow {
    let needle = format!("ALLOW({tag})");
    let hit = |l: usize| -> Option<Allow> {
        let c = comment_lines.get(l).map(String::as_str).unwrap_or("");
        let at = c.find(&needle)?;
        let rest = c[at + needle.len()..].trim_start();
        let reason = rest.strip_prefix(':').map(str::trim).unwrap_or("");
        Some(if reason.is_empty() { Allow::Bare } else { Allow::Reasoned })
    };
    if let Some(a) = hit(line) {
        return a;
    }
    let mut l = line;
    while l > 0 {
        l -= 1;
        let code_l = code_lines.get(l).map(String::as_str).unwrap_or("").trim();
        let comment_l = comment_lines.get(l).map(String::as_str).unwrap_or("").trim();
        let is_comment_only = code_l.is_empty() && !comment_l.is_empty();
        let is_attr = code_l.starts_with("#[");
        if !(is_comment_only || is_attr) {
            return Allow::None;
        }
        if let Some(a) = hit(l) {
            return a;
        }
    }
    Allow::None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_have_names_lines_and_bodies() {
        let code = "pub fn alpha(x: u32) -> u32 {\n    x + 1\n}\nfn beta() {}\n";
        let fns = functions(code);
        assert_eq!(fns.len(), 2);
        assert_eq!((fns[0].name.as_str(), fns[0].line), ("alpha", 0));
        assert!(code[fns[0].body.clone()].contains("x + 1"));
        assert_eq!(fns[1].name, "beta");
    }

    #[test]
    fn fn_pointer_types_are_not_definitions() {
        let fns = functions("type K = fn(u32) -> u32;\nfn real() {}\n");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn trait_declarations_have_empty_bodies() {
        let fns = functions("trait T {\n    fn decl(&self) -> u32;\n    fn with(&self) {}\n}\n");
        // `decl` has no body; `with` does. Both are found.
        let decl = fns.iter().find(|f| f.name == "decl").unwrap();
        assert!(decl.body.is_empty());
        let with = fns.iter().find(|f| f.name == "with").unwrap();
        assert!(!with.body.is_empty());
    }

    #[test]
    fn nested_fn_resolves_to_innermost() {
        let code = "fn outer() {\n    fn inner() { tok(); }\n    tok();\n}\n";
        let f = SourceFile::parse(Path::new("crates/x/src/lib.rs"), code);
        let pos = code.find("tok").unwrap();
        assert_eq!(f.enclosing_fn(pos).unwrap().name, "inner");
        let pos2 = code.rfind("tok").unwrap();
        assert_eq!(f.enclosing_fn(pos2).unwrap().name, "outer");
    }

    #[test]
    fn cfg_test_mod_is_one_region() {
        let code = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let f = SourceFile::parse(Path::new("crates/x/src/lib.rs"), code);
        assert!(f.in_test_code(code.find("unwrap").unwrap()));
        assert!(!f.in_test_code(code.find("live").unwrap()));
    }

    #[test]
    fn tests_dir_files_are_test_scope() {
        let f = SourceFile::parse(Path::new("crates/x/tests/it.rs"), "fn t() {}\n");
        assert!(f.is_test_file);
        let f2 = SourceFile::parse(Path::new("crates/x/src/lib.rs"), "fn t() {}\n");
        assert!(!f2.is_test_file);
    }

    #[test]
    fn allow_requires_a_reason() {
        let parse = |src: &str| SourceFile::parse(Path::new("crates/x/src/lib.rs"), src);
        let f = parse("// ALLOW(panic): checked by validate() upstream.\nx.unwrap();\n");
        assert_eq!(find_allow("panic", 1, &f.code_lines, &f.comment_lines), Allow::Reasoned);
        let bare = parse("// ALLOW(panic)\nx.unwrap();\n");
        assert_eq!(find_allow("panic", 1, &bare.code_lines, &bare.comment_lines), Allow::Bare);
        let wrong = parse("// ALLOW(alloc): wrong tag.\nx.unwrap();\n");
        assert_eq!(find_allow("panic", 1, &wrong.code_lines, &wrong.comment_lines), Allow::None);
        let detached = parse("// ALLOW(panic): stale.\n\nx.unwrap();\n");
        assert_eq!(
            find_allow("panic", 2, &detached.code_lines, &detached.comment_lines),
            Allow::None,
        );
    }

    #[test]
    fn same_line_allow_counts() {
        let f = SourceFile::parse(
            Path::new("crates/x/src/lib.rs"),
            "x.unwrap(); // ALLOW(panic): len checked above.\n",
        );
        assert_eq!(find_allow("panic", 0, &f.code_lines, &f.comment_lines), Allow::Reasoned);
    }

    #[test]
    fn match_brace_is_depth_aware() {
        let code = "{ a { b } c } tail";
        assert_eq!(match_brace(code.as_bytes(), 0), code.find(" tail").unwrap());
    }
}
