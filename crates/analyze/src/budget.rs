//! The committed per-crate unsafe budget: a ratchet that makes any
//! change to the workspace's unsafe surface a conscious, reviewed
//! diff of `crates/analyze/unsafe_budget.toml`.
//!
//! The audit demands an **exact** match in both directions: counts
//! above budget mean new unsafe landed without review; counts below
//! budget mean unsafe was removed and the ratchet should be tightened
//! so it cannot silently creep back.
//!
//! The file is a small TOML subset (quoted-key sections, integer
//! values, `#` comments) parsed here without any dependency, since
//! the workspace builds offline.

use crate::audit::{Counts, Site};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parse the budget file. Returns bucket → expected counts, or a
/// human-readable error naming the offending line.
pub fn parse(text: &str) -> Result<BTreeMap<String, Counts>, String> {
    let mut out = BTreeMap::new();
    let mut section: Option<String> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("unsafe_budget.toml:{}: {msg}: `{raw}`", idx + 1);
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim().trim_matches('"').to_string();
            if out.insert(name.clone(), Counts::default()).is_some() {
                return Err(err("duplicate section"));
            }
            section = Some(name);
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| err("expected `key = value`"))?;
        let value: usize =
            value.trim().parse().map_err(|_| err("expected a non-negative integer"))?;
        let section = section.as_ref().ok_or_else(|| err("key outside any [section]"))?;
        let counts = out.get_mut(section).expect("section inserted when header was seen");
        match key.trim() {
            "blocks" => counts.blocks = value,
            "fns" => counts.fns = value,
            "impls" => counts.impls = value,
            "traits" => counts.traits = value,
            _ => return Err(err("unknown key (expected blocks/fns/impls/traits)")),
        }
    }
    Ok(out)
}

/// Tally audited sites into per-bucket counts.
pub fn tally(sites: &[Site]) -> BTreeMap<String, Counts> {
    let mut out: BTreeMap<String, Counts> = BTreeMap::new();
    for site in sites {
        out.entry(site.bucket()).or_default().add(site.kind);
    }
    out
}

/// Buckets whose budget is an explicit commitment to ZERO unsafe:
/// the canonical render always emits their section (with the
/// rationale) even though they tally no sites, so the first `unsafe`
/// introduced there shows up in review as a budget diff rather than
/// as a brand-new, easy-to-wave-through section.
pub const PINNED_ZERO: &[(&str, &str)] = &[
    (
        "crates/dataset",
        "# Stores are the other half of the joint relabeling: `permuted` must\n\
         # copy every f32/f16/int8 row to its new slot exactly once, in safe\n\
         # indexed loops, so a bad permutation panics instead of aliasing rows.\n",
    ),
    (
        "crates/gpu-sim",
        "# The transaction model is arithmetic over recorded access logs; it\n\
         # has no performance excuse for unsafe, and its counts feed CI\n\
         # assertions (the locality lane), so it must stay trivially auditable.\n",
    ),
    (
        "crates/graph",
        "# Relabeling moves every adjacency row through index permutations; a\n\
         # bug here silently corrupts results rather than crashing. Safe\n\
         # indexing means an out-of-bounds composition panics at the fault\n\
         # instead of reading a stale row.\n",
    ),
    (
        "crates/serve",
        "# The serving layer must stay free of unsafe: it is the long-lived,\n\
         # network-facing surface, and every concurrency primitive it needs\n\
         # (Mutex/Condvar handshake, mpsc responses, scoped worker fan-out)\n\
         # exists in safe std.\n",
    ),
];

/// Render the canonical budget file for the given tallies (what
/// `analyze budget-write` commits). Zero-count buckets are omitted
/// unless pinned in [`PINNED_ZERO`].
pub fn render(tallies: &BTreeMap<String, Counts>) -> String {
    let mut s = String::from(
        "# Per-crate unsafe budget, enforced by `cargo run -p analyze -- audit`.\n\
         # The audit requires an EXACT match: growing a count needs review of the\n\
         # new unsafe (with its SAFETY justification), shrinking one ratchets the\n\
         # budget down so removed unsafe cannot silently return. Regenerate with\n\
         # `cargo run -p analyze -- budget-write` and commit the diff.\n",
    );
    let mut buckets: BTreeMap<&str, Counts> = tallies
        .iter()
        .filter(|(_, c)| c.total() > 0)
        .map(|(name, c)| (name.as_str(), *c))
        .collect();
    for (name, _) in PINNED_ZERO {
        buckets.entry(name).or_default();
    }
    for (bucket, c) in buckets {
        s.push('\n');
        if let Some((_, rationale)) = PINNED_ZERO.iter().find(|(name, _)| *name == bucket) {
            s.push_str(rationale);
        }
        let _ = write!(
            s,
            "[\"{bucket}\"]\nblocks = {}\nfns = {}\nimpls = {}\ntraits = {}\n",
            c.blocks, c.fns, c.impls, c.traits
        );
    }
    s
}

/// Compare actual tallies against the committed budget. Returns a
/// list of violations (empty = pass).
pub fn diff(actual: &BTreeMap<String, Counts>, budget: &BTreeMap<String, Counts>) -> Vec<String> {
    let mut problems = Vec::new();
    let fields = |c: &Counts| {
        [("blocks", c.blocks), ("fns", c.fns), ("impls", c.impls), ("traits", c.traits)]
    };
    let zero = Counts::default();
    let buckets: std::collections::BTreeSet<&String> = actual.keys().chain(budget.keys()).collect();
    for bucket in buckets {
        let a = actual.get(bucket.as_str()).unwrap_or(&zero);
        let b = budget.get(bucket.as_str()).unwrap_or(&zero);
        for ((name, av), (_, bv)) in fields(a).into_iter().zip(fields(b)) {
            if av > bv {
                problems.push(format!(
                    "{bucket}: {name} grew to {av} (budget {bv}) — review the new unsafe, \
                     then `cargo run -p analyze -- budget-write`"
                ));
            } else if av < bv {
                problems.push(format!(
                    "{bucket}: {name} shrank to {av} (budget {bv}) — ratchet the budget \
                     down with `cargo run -p analyze -- budget-write`"
                ));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip_is_exact() {
        let mut t = BTreeMap::new();
        t.insert("crates/knn".to_string(), Counts { blocks: 7, fns: 2, impls: 3, traits: 0 });
        t.insert("shims/bytes".to_string(), Counts { blocks: 1, fns: 0, impls: 0, traits: 1 });
        t.insert("crates/empty".to_string(), Counts::default()); // omitted from render
        let parsed = parse(&render(&t)).unwrap();
        t.remove("crates/empty");
        // Pinned-zero buckets are always rendered (and parse back as
        // explicit zeros), unlike ordinary zero-count buckets.
        for (name, _) in PINNED_ZERO {
            t.insert(name.to_string(), Counts::default());
        }
        assert_eq!(parsed, t);
    }

    #[test]
    fn pinned_zero_bucket_with_real_sites_renders_its_tally() {
        let mut t = BTreeMap::new();
        t.insert("crates/serve".to_string(), Counts { blocks: 2, ..Counts::default() });
        let rendered = render(&t);
        assert!(rendered.contains("[\"crates/serve\"]\nblocks = 2"));
        assert!(rendered.contains("must stay free of unsafe"), "rationale comment kept");
    }

    #[test]
    fn diff_flags_growth_and_shrinkage_separately() {
        let mut actual = BTreeMap::new();
        actual.insert("crates/knn".to_string(), Counts { blocks: 5, ..Counts::default() });
        let mut budget = BTreeMap::new();
        budget.insert("crates/knn".to_string(), Counts { blocks: 4, fns: 1, ..Counts::default() });
        let problems = diff(&actual, &budget);
        assert_eq!(problems.len(), 2);
        assert!(problems[0].contains("grew to 5"));
        assert!(problems[1].contains("shrank to 0"));
    }

    #[test]
    fn diff_catches_buckets_missing_from_either_side() {
        let mut actual = BTreeMap::new();
        actual.insert("crates/new".to_string(), Counts { fns: 1, ..Counts::default() });
        assert_eq!(diff(&actual, &BTreeMap::new()).len(), 1, "unbudgeted bucket must fail");
        assert_eq!(diff(&BTreeMap::new(), &actual).len(), 1, "vanished bucket must fail");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("blocks = 1\n").is_err(), "key before any section");
        assert!(parse("[\"a\"]\nblocks = -1\n").is_err(), "negative count");
        assert!(parse("[\"a\"]\nwat = 3\n").is_err(), "unknown key");
        assert!(parse("[\"a\"]\n[\"a\"]\n").is_err(), "duplicate section");
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let t = parse("# header\n\n[\"crates/x\"] # trailing\nblocks = 2 # two\n").unwrap();
        assert_eq!(t["crates/x"].blocks, 2);
    }
}
