//! The committed per-crate unsafe budget: a ratchet that makes any
//! change to the workspace's unsafe surface a conscious, reviewed
//! diff of `crates/analyze/unsafe_budget.toml`.
//!
//! The format, exact-match diffing, and canonical rendering live in
//! the generic [`crate::ledger`] engine shared by all passes; this
//! module contributes the unsafe-specific [`ledger::Schema`] and the
//! [`Counts`]-typed API the audit front-end uses.

use crate::audit::{Counts, Site};
use crate::ledger::{self, Tallies};
use std::collections::BTreeMap;

/// Buckets whose budget is an explicit commitment to ZERO unsafe:
/// the canonical render always emits their section (with the
/// rationale) even though they tally no sites, so the first `unsafe`
/// introduced there shows up in review as a budget diff rather than
/// as a brand-new, easy-to-wave-through section.
pub const PINNED_ZERO: &[(&str, &str)] = &[
    (
        "crates/dataset",
        "# Stores are the other half of the joint relabeling: `permuted` must\n\
         # copy every f32/f16/int8 row to its new slot exactly once, in safe\n\
         # indexed loops, so a bad permutation panics instead of aliasing rows.\n",
    ),
    (
        "crates/gpu-sim",
        "# The transaction model is arithmetic over recorded access logs; it\n\
         # has no performance excuse for unsafe, and its counts feed CI\n\
         # assertions (the locality lane), so it must stay trivially auditable.\n",
    ),
    (
        "crates/graph",
        "# Relabeling moves every adjacency row through index permutations; a\n\
         # bug here silently corrupts results rather than crashing. Safe\n\
         # indexing means an out-of-bounds composition panics at the fault\n\
         # instead of reading a stale row.\n",
    ),
    (
        "crates/serve",
        "# The serving layer must stay free of unsafe: it is the long-lived,\n\
         # network-facing surface, and every concurrency primitive it needs\n\
         # (Mutex/Condvar handshake, mpsc responses, scoped worker fan-out)\n\
         # exists in safe std.\n",
    ),
];

/// The unsafe pass's budget-file schema.
pub const SCHEMA: ledger::Schema = ledger::Schema {
    file: "unsafe_budget.toml",
    header: "# Per-crate unsafe budget, enforced by `cargo run -p analyze -- audit`.\n\
             # The audit requires an EXACT match: growing a count needs review of the\n\
             # new unsafe (with its SAFETY justification), shrinking one ratchets the\n\
             # budget down so removed unsafe cannot silently return. Regenerate with\n\
             # `cargo run -p analyze -- budget-write` and commit the diff.\n",
    keys: &["blocks", "fns", "impls", "traits"],
    pinned_zero: PINNED_ZERO,
    grow_hint: "review the new unsafe",
    write_cmd: "cargo run -p analyze -- budget-write",
};

fn to_counts(v: &[usize]) -> Counts {
    Counts { blocks: v[0], fns: v[1], impls: v[2], traits: v[3] }
}

fn to_vec(c: &Counts) -> Vec<usize> {
    vec![c.blocks, c.fns, c.impls, c.traits]
}

fn typed(t: Tallies) -> BTreeMap<String, Counts> {
    t.into_iter().map(|(k, v)| (k, to_counts(&v))).collect()
}

fn untyped(t: &BTreeMap<String, Counts>) -> Tallies {
    t.iter().map(|(k, c)| (k.clone(), to_vec(c))).collect()
}

/// Parse the budget file. Returns bucket → expected counts, or a
/// human-readable error naming the offending line.
pub fn parse(text: &str) -> Result<BTreeMap<String, Counts>, String> {
    ledger::parse(&SCHEMA, text).map(typed)
}

/// Tally audited sites into per-bucket counts.
pub fn tally(sites: &[Site]) -> BTreeMap<String, Counts> {
    let mut out: BTreeMap<String, Counts> = BTreeMap::new();
    for site in sites {
        out.entry(site.bucket()).or_default().add(site.kind);
    }
    out
}

/// Render the canonical budget file for the given tallies (what
/// `analyze budget-write` commits). Zero-count buckets are omitted
/// unless pinned in [`PINNED_ZERO`].
pub fn render(tallies: &BTreeMap<String, Counts>) -> String {
    ledger::render(&SCHEMA, &untyped(tallies))
}

/// Compare actual tallies against the committed budget. Returns a
/// list of violations (empty = pass).
pub fn diff(actual: &BTreeMap<String, Counts>, budget: &BTreeMap<String, Counts>) -> Vec<String> {
    ledger::diff(&SCHEMA, &untyped(actual), &untyped(budget))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip_is_exact() {
        let mut t = BTreeMap::new();
        t.insert("crates/knn".to_string(), Counts { blocks: 7, fns: 2, impls: 3, traits: 0 });
        t.insert("shims/bytes".to_string(), Counts { blocks: 1, fns: 0, impls: 0, traits: 1 });
        t.insert("crates/empty".to_string(), Counts::default()); // omitted from render
        let parsed = parse(&render(&t)).unwrap();
        t.remove("crates/empty");
        // Pinned-zero buckets are always rendered (and parse back as
        // explicit zeros), unlike ordinary zero-count buckets.
        for (name, _) in PINNED_ZERO {
            t.insert(name.to_string(), Counts::default());
        }
        assert_eq!(parsed, t);
    }

    #[test]
    fn pinned_zero_bucket_with_real_sites_renders_its_tally() {
        let mut t = BTreeMap::new();
        t.insert("crates/serve".to_string(), Counts { blocks: 2, ..Counts::default() });
        let rendered = render(&t);
        assert!(rendered.contains("[\"crates/serve\"]\nblocks = 2"));
        assert!(rendered.contains("must stay free of unsafe"), "rationale comment kept");
    }

    #[test]
    fn diff_flags_growth_and_shrinkage_separately() {
        let mut actual = BTreeMap::new();
        actual.insert("crates/knn".to_string(), Counts { blocks: 5, ..Counts::default() });
        let mut budget = BTreeMap::new();
        budget.insert("crates/knn".to_string(), Counts { blocks: 4, fns: 1, ..Counts::default() });
        let problems = diff(&actual, &budget);
        assert_eq!(problems.len(), 2);
        assert!(problems[0].contains("grew to 5"));
        assert!(problems[1].contains("shrank to 0"));
    }

    #[test]
    fn diff_catches_buckets_missing_from_either_side() {
        let mut actual = BTreeMap::new();
        actual.insert("crates/new".to_string(), Counts { fns: 1, ..Counts::default() });
        assert_eq!(diff(&actual, &BTreeMap::new()).len(), 1, "unbudgeted bucket must fail");
        assert_eq!(diff(&BTreeMap::new(), &actual).len(), 1, "vanished bucket must fail");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("blocks = 1\n").is_err(), "key before any section");
        assert!(parse("[\"a\"]\nblocks = -1\n").is_err(), "negative count");
        assert!(parse("[\"a\"]\nwat = 3\n").is_err(), "unknown key");
        assert!(parse("[\"a\"]\n[\"a\"]\n").is_err(), "duplicate section");
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let t = parse("# header\n\n[\"crates/x\"] # trailing\nblocks = 2 # two\n").unwrap();
        assert_eq!(t["crates/x"].blocks, 2);
    }
}
