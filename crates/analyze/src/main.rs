//! CLI driver: `cargo run -p analyze -- <audit|list|budget-write>
//! [--root <path>]`. See the crate docs (src/lib.rs) for what each
//! check does; CI runs `audit` as a required lane.

use analyze::{audit, budget};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p analyze -- <audit|list|budget-write> [--root <path>]

  audit         enforce SAFETY documentation and the committed unsafe budget
  list          print the full unsafe inventory
  budget-write  regenerate crates/analyze/unsafe_budget.toml from current counts";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut root = analyze::workspace_root();
    match (args.next().as_deref(), args.next()) {
        (None, _) => {}
        (Some("--root"), Some(p)) => root = PathBuf::from(p),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    match cmd.as_str() {
        "audit" => match analyze::run_audit(&root) {
            Ok(sites) => {
                let tallies = budget::tally(&sites);
                println!(
                    "unsafe audit PASS: {} sites across {} crates, all documented, \
                     budget exact",
                    sites.len(),
                    tallies.len()
                );
                ExitCode::SUCCESS
            }
            Err(problems) => {
                for p in &problems {
                    eprintln!("audit: {p}");
                }
                eprintln!("unsafe audit FAIL: {} problem(s)", problems.len());
                ExitCode::FAILURE
            }
        },
        "list" => match audit::audit_workspace(&root) {
            Ok(sites) => {
                for s in &sites {
                    println!(
                        "{}:{}\t{}\t{}",
                        s.path.display(),
                        s.line,
                        s.kind,
                        if s.documented { "documented" } else { "UNDOCUMENTED" }
                    );
                }
                let tallies = budget::tally(&sites);
                for (bucket, c) in &tallies {
                    println!(
                        "# {bucket}: {} blocks, {} fns, {} impls, {} traits",
                        c.blocks, c.fns, c.impls, c.traits
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("list: {e}");
                ExitCode::FAILURE
            }
        },
        "budget-write" => match audit::audit_workspace(&root) {
            Ok(sites) => {
                let path = analyze::budget_path(&root);
                let text = budget::render(&budget::tally(&sites));
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("budget-write: writing {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {} ({} sites)", path.display(), sites.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("budget-write: {e}");
                ExitCode::FAILURE
            }
        },
        other => {
            eprintln!("unknown check `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
