//! CLI driver: `cargo run -p analyze -- <audit|list|budget-write>
//! [--pass <name|all>] [--json <path>] [--root <path>]`. See the
//! crate docs (src/lib.rs) for what each pass does; CI runs `audit`
//! (all passes) as a required lane and uploads the JSON report.

use analyze::report::{self, PassReport};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p analyze -- <audit|list|budget-write> \
[--pass <unsafe|panic|alloc|lock|determinism|all>] [--json <path>] [--root <path>]

  audit         run the pass(es) and fail on any violation (missing docs,
                budget drift, pinned-zero breaches, lock cycles, bare ALLOWs);
                --json also writes a cagra-metrics-v1 report
  list          print the pass(es)' full site inventory
  budget-write  regenerate the committed budget file(s) from current counts";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut root = analyze::workspace_root();
    let mut pass = "all".to_string();
    let mut json: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        match (flag.as_str(), args.next()) {
            ("--root", Some(p)) => root = PathBuf::from(p),
            ("--pass", Some(p)) => pass = p,
            ("--json", Some(p)) => json = Some(PathBuf::from(p)),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let selected: Vec<&str> = if pass == "all" {
        analyze::PASSES.to_vec()
    } else if analyze::PASSES.contains(&pass.as_str()) {
        vec![analyze::PASSES.iter().find(|p| **p == pass).copied().unwrap_or("unsafe")]
    } else {
        eprintln!("unknown pass `{pass}`\n{USAGE}");
        return ExitCode::FAILURE;
    };

    match cmd.as_str() {
        "audit" => {
            let mut reports = Vec::new();
            let mut failed = false;
            for name in &selected {
                let outcome = match analyze::audit_pass(&root, name) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("{name} audit: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let sites: usize = outcome.tallies.values().map(|v| v.iter().sum::<usize>()).sum();
                if outcome.problems.is_empty() {
                    println!(
                        "{name} audit PASS: {sites} sites across {} buckets, budget exact",
                        outcome.tallies.len()
                    );
                } else {
                    for p in &outcome.problems {
                        eprintln!("{name} audit: {p}");
                    }
                    eprintln!("{name} audit FAIL: {} problem(s)", outcome.problems.len());
                    failed = true;
                }
                reports.push(PassReport {
                    pass: outcome.pass,
                    keys: outcome.keys,
                    tallies: outcome.tallies,
                    violations: outcome.problems.len(),
                });
            }
            if let Some(path) = json {
                if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                    let _ = std::fs::create_dir_all(dir);
                }
                if let Err(e) = std::fs::write(&path, report::to_json(&reports)) {
                    eprintln!("writing {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "list" => {
            for name in &selected {
                match analyze::audit_pass(&root, name) {
                    Ok(outcome) => {
                        for line in &outcome.inventory {
                            println!("{line}");
                        }
                        for (bucket, counts) in &outcome.tallies {
                            let pairs: Vec<String> = outcome
                                .keys
                                .iter()
                                .zip(counts)
                                .map(|(k, v)| format!("{v} {k}"))
                                .collect();
                            println!("# {name} {bucket}: {}", pairs.join(", "));
                        }
                    }
                    Err(e) => {
                        eprintln!("{name} list: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "budget-write" => {
            for name in &selected {
                match analyze::write_pass_budget(&root, name) {
                    Ok((path, sites)) => println!("wrote {} ({sites} sites)", path.display()),
                    Err(e) => {
                        eprintln!("{name} budget-write: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown check `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
