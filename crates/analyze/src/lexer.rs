//! A comment/string-aware scanner for Rust source.
//!
//! The audit never needs a real parse tree — only to know, for every
//! byte of a file, whether it is *code*, *comment*, or *string/char
//! literal*. This module produces two parallel masks of the input
//! (same byte offsets, newlines preserved):
//!
//! * [`Masks::code`] — code bytes verbatim, everything else blanked,
//!   so keyword scans (`unsafe`, `fn`, `impl`) can never be fooled by
//!   comments or string literals;
//! * [`Masks::comment`] — comment bytes verbatim, everything else
//!   blanked, so `SAFETY:` adjacency checks can never be fooled by
//!   code or strings mentioning the word.
//!
//! Handled: line comments, nested block comments, string literals
//! with escapes (including `\`-newline line continuations, which must
//! not shift line numbers), raw strings with any `#` arity (including
//! raw byte and raw C strings), byte strings, char literals (including
//! non-ASCII contents and contents that look like syntax: `'"'`,
//! `'/'`), and the char-vs-lifetime ambiguity (`'a'` vs `'a`).

/// The two masks produced by [`mask`].
pub struct Masks {
    /// Code bytes verbatim; comments/strings/chars blanked to spaces.
    pub code: String,
    /// Comment bytes verbatim (without the `//`/`/*` introducers'
    /// following text removed — the whole comment including markers is
    /// kept); everything else blanked.
    pub comment: String,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    Str,
    RawStr(u8),
    Char,
}

/// Split `src` into code and comment masks. Total is lossless for
/// newlines, so line numbers in the masks match the original.
pub fn mask(src: &str) -> Masks {
    let b = src.as_bytes();
    let mut code = vec![b' '; b.len()];
    let mut comment = vec![b' '; b.len()];
    let mut st = State::Code;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            code[i] = b'\n';
            comment[i] = b'\n';
            if st == State::LineComment {
                st = State::Code;
            }
            i += 1;
            continue;
        }
        match st {
            State::Code => {
                if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                    st = State::LineComment;
                    comment[i] = c;
                } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    st = State::BlockComment(1);
                    comment[i] = b'/';
                    comment[i + 1] = b'*';
                    i += 2;
                    continue;
                } else if c == b'"' {
                    st = State::Str;
                } else if (c == b'r' || c == b'b' || c == b'c')
                    && raw_string_hashes(&b[i..]).is_some()
                {
                    let (hashes, intro) = raw_string_hashes(&b[i..]).unwrap();
                    st = State::RawStr(hashes);
                    // keep the introducer (r#"..) out of the code mask
                    i += intro;
                    continue;
                } else if c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' {
                    code[i] = c; // the `b` prefix is code-ish; harmless
                    st = State::Str;
                    i += 2;
                    continue;
                } else if c == b'\'' {
                    // A lifetime (or loop label) is `'` followed by an
                    // identifier-start byte and *no* closing quote one
                    // byte later (`'a` vs `'a'`). Everything else —
                    // escapes (`'\n'`), punctuation (`'"'`, `'/'`),
                    // digits, non-ASCII scalars (`'→'`) — is a char
                    // literal, since lifetimes cannot start with those.
                    let is_char = match b.get(i + 1) {
                        Some(&b'\\') => true,
                        Some(&n) if n.is_ascii_alphabetic() || n == b'_' => {
                            b.get(i + 2) == Some(&b'\'')
                        }
                        Some(_) => true,
                        None => false,
                    };
                    if is_char {
                        st = State::Char;
                    } else {
                        code[i] = c; // lifetime tick stays code
                    }
                } else {
                    code[i] = c;
                }
            }
            State::LineComment => comment[i] = c,
            State::BlockComment(depth) => {
                comment[i] = c;
                if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    comment[i + 1] = b'*';
                    st = State::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                if c == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    comment[i + 1] = b'/';
                    st = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                    continue;
                }
            }
            State::Str => {
                if c == b'\\' {
                    // A `\`-newline line continuation skips the
                    // newline byte; record it anyway so line numbers
                    // downstream of the literal stay correct.
                    if b.get(i + 1) == Some(&b'\n') {
                        code[i + 1] = b'\n';
                        comment[i + 1] = b'\n';
                    }
                    i += 2;
                    continue;
                }
                if c == b'"' {
                    st = State::Code;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' && closes_raw(&b[i + 1..], hashes) {
                    i += 1 + hashes as usize;
                    st = State::Code;
                    continue;
                }
            }
            State::Char => {
                if c == b'\\' {
                    if b.get(i + 1) == Some(&b'\n') {
                        code[i + 1] = b'\n';
                        comment[i + 1] = b'\n';
                    }
                    i += 2;
                    continue;
                }
                if c == b'\'' {
                    st = State::Code;
                }
            }
        }
        i += 1;
    }
    Masks {
        code: String::from_utf8_lossy(&code).into_owned(),
        comment: String::from_utf8_lossy(&comment).into_owned(),
    }
}

/// If `b` starts a raw (byte/C) string literal, return `(hash_count,
/// introducer_len)` where introducer covers through the opening quote.
fn raw_string_hashes(b: &[u8]) -> Option<(u8, usize)> {
    let mut i = 0usize;
    if b.first() == Some(&b'b') || b.first() == Some(&b'c') {
        i += 1;
    }
    if b.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0u8;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) == Some(&b'"') {
        Some((hashes, i + 1))
    } else {
        None
    }
}

/// True when `rest` (the bytes after a `"`) closes a raw string with
/// `hashes` trailing `#`s.
fn closes_raw(rest: &[u8], hashes: u8) -> bool {
    rest.len() >= hashes as usize && rest[..hashes as usize].iter().all(|&c| c == b'#')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_leave_the_code_mask() {
        let src = "let x = \"unsafe { }\"; // unsafe trailing\nunsafe { real() }\n";
        let m = mask(src);
        assert_eq!(m.code.matches("unsafe").count(), 1, "only the real unsafe survives");
        assert!(m.comment.contains("unsafe trailing"));
        assert!(!m.comment.contains("real"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ unsafe {}";
        let m = mask(src);
        assert!(m.code.contains("unsafe"));
        assert!(m.comment.contains("still comment"));
        assert!(!m.code.contains("still"));
    }

    #[test]
    fn raw_strings_with_hashes_are_masked() {
        let src = r###"let s = r#"unsafe fn nope() { " quote "#; unsafe { yes() }"###;
        let m = mask(src);
        assert_eq!(m.code.matches("unsafe").count(), 1);
        assert!(m.code.contains("yes"));
        assert!(!m.code.contains("nope"));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src =
            "fn f<'a>(x: &'a str) { let q = '\"'; let t = 'u'; } // unsafe? no: code has none";
        let m = mask(src);
        assert!(!m.code.contains("unsafe"));
        // The lifetime tick survives as code; the char contents do not.
        assert!(m.code.contains("<'a>"));
        assert!(!m.code.contains("'u'"));
    }

    #[test]
    fn line_numbers_are_preserved() {
        let src = "line one\n// c\nunsafe {\n}\n";
        let m = mask(src);
        assert_eq!(m.code.lines().count(), src.lines().count());
        assert_eq!(m.code.lines().nth(2).unwrap().trim(), "unsafe {");
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_numbers() {
        // `\`-newline is a line continuation *inside* the literal; the
        // newline byte must still count toward line numbering.
        let src = "let s = \"a\\\nb\";\nunsafe { g() }\n";
        let m = mask(src);
        assert_eq!(m.code.lines().count(), 3, "continuation newline must not vanish");
        assert_eq!(m.code.lines().nth(2).unwrap().trim(), "unsafe { g() }");
    }

    #[test]
    fn char_literals_with_quote_and_slash_contents() {
        let src = "let q = '\"'; let s = '/'; let t = '\\''; // trailing\nunsafe {}\n";
        let m = mask(src);
        assert_eq!(m.code.matches("unsafe").count(), 1);
        assert!(!m.code.contains('"'), "char-quoted `\"` must not open a string");
        assert!(m.comment.contains("trailing"), "`'/'` must not eat the line comment");
    }

    #[test]
    fn non_ascii_char_literal_is_masked() {
        let src = "let a = '\u{2192}'; unsafe { g() }\n";
        let m = mask(src);
        assert_eq!(m.code.matches("unsafe").count(), 1);
        assert!(!m.code.contains('\u{2192}'), "char contents must not leak into code");
    }

    #[test]
    fn raw_string_zero_hashes_and_byte_raw() {
        let src = "let a = r\"unsafe {}\"; let b = br#\"unsafe fn x\"#; unsafe { g() }\n";
        let m = mask(src);
        assert_eq!(m.code.matches("unsafe").count(), 1);
    }

    #[test]
    fn anonymous_lifetime_is_code_not_char() {
        let src = "fn f(x: &'_ str) -> &'_ str { x }\n";
        let m = mask(src);
        assert!(m.code.contains("&'_ str"), "`'_` is a lifetime, not a char literal");
    }
}
