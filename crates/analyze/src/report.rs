//! Machine-readable lint report in the workspace's `cagra-metrics-v1`
//! JSON format (the same self-describing shape `obs` snapshots use),
//! so CI can upload one artifact per run and dashboards can ingest
//! lint counts with the tooling they already have for serving
//! metrics. Lint results are pure counts, so only the `counters`
//! section is populated; `spans` and `histograms` stay empty.
//!
//! Counter naming: `analyze.<pass>.<bucket>.<key>` for per-bucket
//! tallies plus `analyze.<pass>.violations` for the pass's outcome
//! (0 = budget matched and every site carried its required
//! documentation). Output is deterministic: passes in the order run,
//! buckets in `BTreeMap` order.

use crate::ledger::Tallies;

/// One pass's contribution to the report.
pub struct PassReport {
    /// Pass name as used on the CLI (`unsafe`, `panic`, `alloc`,
    /// `lock`, `determinism`).
    pub pass: &'static str,
    /// Count keys, parallel to each tally row.
    pub keys: &'static [&'static str],
    /// Per-bucket counts from the audit.
    pub tallies: Tallies,
    /// Number of violations (budget drift + missing documentation).
    pub violations: usize,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize pass results as a `cagra-metrics-v1` document.
pub fn to_json(reports: &[PassReport]) -> String {
    let mut counters: Vec<(String, usize)> = Vec::new();
    for r in reports {
        for (bucket, counts) in &r.tallies {
            for (key, &value) in r.keys.iter().zip(counts) {
                counters.push((format!("analyze.{}.{bucket}.{key}", r.pass), value));
            }
        }
        counters.push((format!("analyze.{}.violations", r.pass), r.violations));
    }
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"schema\": \"cagra-metrics-v1\",\n  \"enabled\": true");
    out.push_str(",\n  \"counters\": [");
    for (i, (name, value)) in counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"name\": ");
        push_json_str(&mut out, name);
        out.push_str(&format!(", \"value\": {value}}}"));
    }
    out.push_str("\n  ],\n  \"spans\": [\n  ],\n  \"histograms\": [\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Vec<PassReport> {
        let mut t = Tallies::new();
        t.insert("crates/cagra".into(), vec![2, 1]);
        vec![PassReport { pass: "panic", keys: &["unwraps", "expects"], tallies: t, violations: 3 }]
    }

    #[test]
    fn report_is_valid_metrics_v1_shape() {
        let j = to_json(&demo());
        assert!(j.contains("\"schema\": \"cagra-metrics-v1\""));
        assert!(j.contains("{\"name\": \"analyze.panic.crates/cagra.unwraps\", \"value\": 2}"));
        assert!(j.contains("{\"name\": \"analyze.panic.crates/cagra.expects\", \"value\": 1}"));
        assert!(j.contains("{\"name\": \"analyze.panic.violations\", \"value\": 3}"));
        assert!(j.contains("\"spans\": [\n  ]"));
    }

    #[test]
    fn report_is_deterministic() {
        assert_eq!(to_json(&demo()), to_json(&demo()));
    }

    #[test]
    fn empty_report_is_still_a_document() {
        let j = to_json(&[]);
        assert!(j.contains("\"counters\": [\n  ]"));
    }
}
