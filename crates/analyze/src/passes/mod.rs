//! The lint passes beyond the unsafe audit, and the driver machinery
//! they share: a common [`Finding`] shape, ALLOW-aware tallying into
//! [`ledger`] buckets, and the textual per-crate call graph used for
//! reachability zones.
//!
//! Every pass follows the same contract (DESIGN.md "Static analysis"):
//!
//! * it scans **non-test** code only (test files and `#[cfg(test)]`
//!   items are free to unwrap/allocate/etc.), and skips `shims/`,
//!   which holds vendored offline stand-ins, not product code;
//! * each site can be exempted by an adjacent `ALLOW(<pass>): <reason>`
//!   comment — same adjacency rule as `SAFETY:` — which moves it from
//!   its violation key to the pass's `allowed` count; a bare `ALLOW`
//!   without a reason is itself a violation;
//! * per-bucket counts are ratcheted by a committed budget file, and
//!   buckets listed as pinned-zero reject un-ALLOWed sites outright —
//!   `budget-write` cannot whitewash them.

pub mod determinism;
pub mod hotpath;
pub mod locks;
pub mod panics;

use crate::ledger::{self, Tallies};
use crate::syntax::{word_occurrences, Allow, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Top-level scopes the quality passes scan. `shims/` is deliberately
/// absent; `src`/`tests`/`benches`/`examples` cover the root package
/// (test-scope files are then skipped per file).
pub const SCOPES: &[&str] = &["crates", "src", "tests", "benches", "examples"];

/// One site a pass flagged.
pub struct Finding {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Budget bucket (`crates/<name>` or a `zone:` bucket).
    pub bucket: String,
    /// Which schema key this site counts under.
    pub key: &'static str,
    /// Human-readable description of the site.
    pub what: String,
    /// Escape-hatch status at the site.
    pub allow: Allow,
}

/// What a pass produces: the full inventory plus structural problems
/// that are violations regardless of any budget (bare ALLOWs, lock
/// cycles, pinned-zero breaches).
pub struct PassResult {
    pub findings: Vec<Finding>,
    pub problems: Vec<String>,
}

/// Tally findings into budget buckets. Un-ALLOWed (and bare-ALLOW)
/// sites count under their own key; `Reasoned` sites count under the
/// trailing `allowed` key, so exemptions are ratcheted too.
pub fn tally(keys: &[&str], findings: &[Finding]) -> Tallies {
    let allowed_slot = keys.len() - 1;
    debug_assert_eq!(keys[allowed_slot], "allowed");
    let mut out = Tallies::new();
    for f in findings {
        let counts = out.entry(f.bucket.clone()).or_insert_with(|| vec![0; keys.len()]);
        let slot = if f.allow == Allow::Reasoned {
            allowed_slot
        } else {
            keys.iter().position(|k| *k == f.key).unwrap_or(allowed_slot)
        };
        counts[slot] += 1;
    }
    out
}

/// Fold a pass's structural problems with budget drift into the final
/// violation list (empty = pass). `budget_text` is the committed
/// budget file's contents, or `None` when it does not exist yet.
pub fn check(
    schema: &ledger::Schema,
    result: &PassResult,
    budget_text: Option<&str>,
) -> Vec<String> {
    let mut problems = result.problems.clone();
    for f in &result.findings {
        if f.allow == Allow::Bare {
            problems.push(format!(
                "{}:{}: bare ALLOW without a reason on {} — write the justification",
                f.path.display(),
                f.line,
                f.what,
            ));
        }
    }
    let actual = tally(schema.keys, &result.findings);
    match budget_text {
        Some(text) => match ledger::parse(schema, text) {
            Ok(budget) => problems.extend(ledger::diff(schema, &actual, &budget)),
            Err(e) => problems.push(e),
        },
        None => problems.push(format!(
            "missing crates/analyze/{} (run `{}` to create it)",
            schema.file, schema.write_cmd
        )),
    }
    problems
}

/// Emit pinned-zero breaches: un-ALLOWed findings in a bucket whose
/// budget is a hard ZERO commitment. These are problems even before
/// the budget diff, so `budget-write` cannot bake them in.
pub fn pinned_zero_breaches(schema: &ledger::Schema, findings: &[Finding]) -> Vec<String> {
    findings
        .iter()
        .filter(|f| f.allow != Allow::Reasoned)
        .filter(|f| schema.pinned_zero.iter().any(|(b, _)| *b == f.bucket))
        .map(|f| {
            format!(
                "{}:{}: {} in pinned-zero bucket {} — fix it or document an \
                 ALLOW with a reason",
                f.path.display(),
                f.line,
                f.what,
                f.bucket,
            )
        })
        .collect()
}

/// The set of word-tokens appearing in **call position** in a code
/// span: the next non-whitespace byte after the word is `(`, or the
/// word takes an explicit turbofish (`name::<...>`). Used to build
/// call edges cheaply: a function "calls" every workspace function
/// whose name appears as a call in its body. Name resolution still
/// over-approximates (every same-named definition is a candidate
/// callee), but the call gate keeps struct fields, locals, and range
/// bounds (`params.search`, `span.start`) from minting edges — those
/// were the main way unrelated code leaked into pinned zones.
fn call_tokens(code: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = code.as_bytes();
    let mut i = 0usize;
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    while i < bytes.len() {
        if is_word(bytes[i]) && !bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && is_word(bytes[i]) {
                i += 1;
            }
            let called = match next_nonspace(bytes, i) {
                Some(b'(') => true,
                Some(b':') => bytes[i..].starts_with(b"::<"),
                _ => false,
            };
            if called {
                out.insert(String::from_utf8_lossy(&bytes[start..i]).into_owned());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Function names in `bucket` reachable from the functions accepted
/// by `is_root`, via the textual call graph (name-based resolution,
/// same-bucket only — cross-crate calls land in the callee crate's
/// own budget). Test-scope functions are excluded from both nodes and
/// edges. Names accepted by `is_barrier` are never entered: they mark
/// documented contract boundaries (and hub names like `new` that
/// textual resolution cannot disambiguate from std constructors), so
/// neither they nor anything only they call joins the zone.
pub fn reachable_fns(
    ws: &Workspace,
    bucket: &str,
    is_root: &dyn Fn(&str) -> bool,
    is_barrier: &dyn Fn(&str) -> bool,
) -> BTreeSet<String> {
    // Collect the bucket's non-test function definitions and, per
    // name, the union of call-tokens across all bodies of that name.
    let mut defined: BTreeSet<String> = BTreeSet::new();
    let mut mentions: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in ws.files.iter().filter(|f| f.bucket == bucket) {
        for f in &file.fns {
            if file.in_test_code(f.body.start) {
                continue;
            }
            defined.insert(f.name.clone());
            mentions
                .entry(f.name.clone())
                .or_default()
                .extend(call_tokens(&file.masks.code[f.body.clone()]));
        }
    }
    let mut reach: BTreeSet<String> = defined.iter().filter(|n| is_root(n)).cloned().collect();
    let mut frontier: Vec<String> = reach.iter().cloned().collect();
    while let Some(name) = frontier.pop() {
        let Some(tokens) = mentions.get(&name) else { continue };
        for callee in tokens {
            if is_barrier(callee) {
                continue;
            }
            if defined.contains(callee) && reach.insert(callee.clone()) {
                frontier.push(callee.clone());
            }
        }
    }
    reach
}

/// Word occurrences of `word` in `file`'s code mask that lie in
/// non-test code, yielding `(byte_pos, 0-based line)`.
pub fn live_occurrences(file: &SourceFile, word: &str) -> Vec<(usize, usize)> {
    if file.is_test_file {
        return Vec::new();
    }
    word_occurrences(&file.masks.code, word)
        .into_iter()
        .filter(|&pos| !file.in_test_code(pos))
        .map(|pos| (pos, file.line_of(pos)))
        .collect()
}

/// First non-whitespace byte at/after `from` in `code`, if any.
pub fn next_nonspace(code: &[u8], mut from: usize) -> Option<u8> {
    while from < code.len() {
        let b = code[from];
        if !b.is_ascii_whitespace() {
            return Some(b);
        }
        from += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn ws(src: &str) -> Workspace {
        Workspace { files: vec![SourceFile::parse(Path::new("crates/x/src/lib.rs"), src)] }
    }

    const NO_BARRIER: fn(&str) -> bool = |_| false;

    #[test]
    fn reachability_follows_textual_calls() {
        let w = ws(
            "fn try_search() { helper(); }\nfn helper() { leaf() }\nfn leaf() {}\nfn island() {}\n",
        );
        let r = reachable_fns(&w, "crates/x", &|n| n.starts_with("try_search"), &NO_BARRIER);
        assert!(r.contains("try_search") && r.contains("helper") && r.contains("leaf"));
        assert!(!r.contains("island"));
    }

    #[test]
    fn reachability_skips_test_functions() {
        let w = ws("fn try_search() {}\n#[cfg(test)]\nmod t {\n    fn try_search_like() { island(); }\n}\nfn island() {}\n");
        let r = reachable_fns(&w, "crates/x", &|n| n.starts_with("try_search"), &NO_BARRIER);
        assert!(!r.contains("island"), "test-only callers must not extend the zone");
    }

    #[test]
    fn reachability_requires_call_syntax() {
        // `cfg.start` and `search: x` are a field read and a struct
        // literal field — neither is a call, so `start`/`search` stay
        // out even though same-named functions exist. The turbofish
        // form still counts as a call.
        let w = ws("fn try_search(cfg: &C) { let _ = cfg.start; mk(C { search: 0 }); cast::<u32>(); }\nfn start() { island() }\nfn search() { island() }\nfn cast() {}\nfn mk() {}\nfn island() {}\n");
        let r = reachable_fns(&w, "crates/x", &|n| n.starts_with("try_search"), &NO_BARRIER);
        assert!(r.contains("mk") && r.contains("cast"), "plain and turbofish calls are edges");
        assert!(!r.contains("start") && !r.contains("search") && !r.contains("island"));
    }

    #[test]
    fn reachability_stops_at_barriers() {
        let w = ws("fn try_search() { compact(); helper(); }\nfn compact() { rebuild() }\nfn rebuild() {}\nfn helper() {}\n");
        let r =
            reachable_fns(&w, "crates/x", &|n| n.starts_with("try_search"), &|n| n == "compact");
        assert!(r.contains("helper"));
        assert!(
            !r.contains("compact") && !r.contains("rebuild"),
            "a barrier excludes itself and everything only it reaches"
        );
    }

    #[test]
    fn tally_routes_allowed_sites_to_the_allowed_key() {
        let f = |allow| Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 1,
            bucket: "crates/x".into(),
            key: "unwraps",
            what: "`.unwrap()`".into(),
            allow,
        };
        let t =
            tally(&["unwraps", "allowed"], &[f(Allow::None), f(Allow::Reasoned), f(Allow::Bare)]);
        assert_eq!(t["crates/x"], vec![2, 1], "bare ALLOW still counts as a site");
    }

    #[test]
    fn pinned_zero_rejects_unallowed_sites_only() {
        const S: ledger::Schema = ledger::Schema {
            file: "f",
            header: "#\n",
            keys: &["unwraps", "allowed"],
            pinned_zero: &[("crates/serve", "# z\n")],
            grow_hint: "g",
            write_cmd: "w",
        };
        let f = |bucket: &str, allow| Finding {
            path: "p".into(),
            line: 1,
            bucket: bucket.into(),
            key: "unwraps",
            what: "`.unwrap()`".into(),
            allow,
        };
        let breaches = pinned_zero_breaches(
            &S,
            &[
                f("crates/serve", Allow::None),
                f("crates/serve", Allow::Reasoned),
                f("crates/other", Allow::None),
            ],
        );
        assert_eq!(breaches.len(), 1, "only the un-ALLOWed serve site breaches the pin");
        assert!(breaches[0].contains("pinned-zero"));
    }
}
