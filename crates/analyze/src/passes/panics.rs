//! The panic-path audit: inventory every way non-test code can panic
//! — `unwrap`/`expect` calls, `panic!`-family macros, `assert!`-family
//! macros, and slice indexing — with per-crate budgets and two hard
//! pinned-zero buckets:
//!
//! * `crates/serve` — the long-lived network-facing surface; a panic
//!   there kills the dispatcher thread and strands every queued
//!   request, so the serving layer must be panic-free or carry an
//!   explicit per-site justification;
//! * `zone:cagra-try-search` — every function in `crates/cagra`
//!   textually reachable from the `try_search*` entry points. The
//!   typed-error API promises `Result`, not panics; sites on that
//!   path are attributed to the zone bucket (instead of
//!   `crates/cagra`) and must each be fixed or `ALLOW(panic)`ed.
//!
//! `debug_assert!` is deliberately *not* counted: it vanishes in
//! release builds, and the workspace uses it (behind
//! `debug_invariants`) precisely as the panic-free alternative for
//! hot-path invariants.

use super::{live_occurrences, next_nonspace, Finding, PassResult, SCOPES};
use crate::ledger;
use crate::syntax::{find_allow, Workspace};
use std::path::Path;

pub const KEYS: &[&str] = &["unwraps", "expects", "panics", "asserts", "indexing", "allowed"];

/// The reachability zone's bucket name.
pub const ZONE: &str = "zone:cagra-try-search";

pub const SCHEMA: ledger::Schema = ledger::Schema {
    file: "panic_budget.toml",
    header: "# Per-crate panic-path budget, enforced by `cargo run -p analyze -- audit\n\
             # --pass panic`. Counts every unwrap/expect, panic!-family macro,\n\
             # assert!-family macro, and slice-indexing site in non-test code; sites\n\
             # carrying an adjacent `ALLOW(panic): <reason>` comment count under\n\
             # `allowed` instead. The audit requires an EXACT match; regenerate with\n\
             # `cargo run -p analyze -- budget-write --pass panic` and commit the diff.\n",
    keys: KEYS,
    pinned_zero: &[
        (
            ZONE,
            "# Everything reachable from the try_search* entry points: the typed-\n\
             # error API contract says search failures surface as SearchError, so\n\
             # any residual panic here must be individually ALLOW(panic)-justified\n\
             # (the `allowed` count) — never an anonymous site.\n",
        ),
        (
            "crates/serve",
            "# A panic in the serving layer kills the dispatcher thread and strands\n\
             # every queued request behind a dead Condvar; the service must degrade\n\
             # via ServeError instead. Lock poisoning recovery is the one family of\n\
             # ALLOW(panic)-documented exceptions.\n",
        ),
    ],
    grow_hint: "review the new panic path (or fix it)",
    write_cmd: "cargo run -p analyze -- budget-write --pass panic",
};

/// `try_search*` roots that define the pinned zone.
fn is_zone_root(name: &str) -> bool {
    name.starts_with("try_search")
}

/// Traversal boundaries for the zone. Two kinds of name stop the
/// reachability walk:
///
/// * `new` — a hub the textual resolver cannot disambiguate: nearly
///   every `new(` on the query path is `Vec::new`/`Arc::new`/a std
///   constructor, but resolving it to *local* constructors (which
///   legitimately assert preconditions and call half the crate) would
///   drag the whole build pipeline into the zone. The query path is
///   allocation-flat by contract (the hot-path alloc lint enforces
///   it), so skipping `new` edges loses nothing real.
/// * the compaction entries — where the dynamic index's *write* path
///   begins. The read contract the zone audits ends at the snapshot:
///   a panic inside compaction aborts that compaction before the
///   epoch publish, so readers keep serving the old snapshot, and the
///   build/optimize pipeline it invokes is budgeted per-crate like
///   every other build-side caller.
fn is_zone_barrier(name: &str) -> bool {
    name == "new" || name == "compact_once" || name == "compactor_loop"
}

/// Run the pass over a loaded workspace.
pub fn run(ws: &Workspace) -> PassResult {
    let zone = super::reachable_fns(ws, "crates/cagra", &is_zone_root, &is_zone_barrier);
    let mut findings = Vec::new();
    for file in &ws.files {
        let code = file.masks.code.as_bytes();
        let in_zone = |pos: usize| {
            file.bucket == "crates/cagra"
                && file.enclosing_fn(pos).is_some_and(|f| zone.contains(&f.name))
        };
        let mut push = |pos: usize, line: usize, key: &'static str, what: String| {
            let bucket = if in_zone(pos) { ZONE.to_string() } else { file.bucket.clone() };
            let allow = find_allow("panic", line, &file.code_lines, &file.comment_lines);
            findings.push(Finding {
                path: file.rel.clone(),
                line: line + 1,
                bucket,
                key,
                what,
                allow,
            });
        };
        // Method calls: the word followed by `(`. Word-boundary
        // matching already excludes unwrap_or/expect_err/etc.
        for (word, key) in [("unwrap", "unwraps"), ("expect", "expects")] {
            for (pos, line) in live_occurrences(file, word) {
                if next_nonspace(code, pos + word.len()) == Some(b'(') {
                    push(pos, line, key, format!("`.{word}()`"));
                }
            }
        }
        // Macros: the word followed by `!`.
        for (word, key) in [
            ("panic", "panics"),
            ("unreachable", "panics"),
            ("todo", "panics"),
            ("unimplemented", "panics"),
            ("assert", "asserts"),
            ("assert_eq", "asserts"),
            ("assert_ne", "asserts"),
        ] {
            for (pos, line) in live_occurrences(file, word) {
                if next_nonspace(code, pos + word.len()) == Some(b'!') {
                    push(pos, line, key, format!("`{word}!`"));
                }
            }
        }
        // Slice indexing: `[` immediately preceded by an identifier
        // byte, `)`, or `]` — an index expression, as opposed to array
        // types/literals and `#[..]` attributes. One finding per line
        // (chained accesses on a line share a fix).
        if !file.is_test_file {
            let mut last_line = usize::MAX;
            for (i, &b) in code.iter().enumerate() {
                if b != b'[' || i == 0 {
                    continue;
                }
                let p = code[i - 1];
                let indexes = p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']';
                if !indexes || file.in_test_code(i) {
                    continue;
                }
                let line = file.line_of(i);
                if line == last_line {
                    continue;
                }
                last_line = line;
                push(i, line, "indexing", "slice indexing".to_string());
            }
        }
    }
    let problems = super::pinned_zero_breaches(&SCHEMA, &findings);
    PassResult { findings, problems }
}

/// Load the workspace and run (the CLI entry point).
pub fn run_root(root: &Path) -> std::io::Result<PassResult> {
    Ok(run(&Workspace::load(root, SCOPES)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::SourceFile;
    use std::path::Path;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace { files: files.iter().map(|(p, s)| SourceFile::parse(Path::new(p), s)).collect() }
    }

    #[test]
    fn counts_each_panic_family() {
        let w = ws_of(&[(
            "crates/x/src/lib.rs",
            "fn f(v: &[u32]) -> u32 {\n    let a = v.first().unwrap();\n    let b = v.last().expect(\"nonempty\");\n    assert!(a < b);\n    if *a == 9 { panic!(\"nine\") }\n    v[0]\n}\n",
        )]);
        let r = run(&w);
        let t = super::super::tally(KEYS, &r.findings);
        assert_eq!(t["crates/x"], vec![1, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn unwrap_or_variants_and_debug_asserts_do_not_count() {
        let w = ws_of(&[(
            "crates/x/src/lib.rs",
            "fn f(v: Option<u32>) -> u32 {\n    debug_assert!(true);\n    v.unwrap_or(0) + v.unwrap_or_else(|| 1) + v.unwrap_or_default()\n}\n",
        )]);
        assert!(run(&w).findings.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let w = ws_of(&[
            ("crates/x/tests/it.rs", "fn t(v: &[u32]) { v[0]; v.first().unwrap(); }\n"),
            (
                "crates/x/src/lib.rs",
                "fn live() {}\n#[cfg(test)]\nmod t {\n    fn u(v: &[u32]) { v.first().unwrap(); }\n}\n",
            ),
        ]);
        assert!(run(&w).findings.is_empty());
    }

    #[test]
    fn allow_moves_a_site_to_allowed_and_bare_allow_is_flagged() {
        let w = ws_of(&[(
            "crates/x/src/lib.rs",
            "fn f(v: &[u32]) -> u32 {\n    // ALLOW(panic): v is non-empty by construction in new().\n    let a = v.first().unwrap();\n    *a + v.last().unwrap() // ALLOW(panic)\n}\n",
        )]);
        let r = run(&w);
        let t = super::super::tally(KEYS, &r.findings);
        assert_eq!(t["crates/x"], vec![1, 0, 0, 0, 0, 1], "bare ALLOW still counts as a site");
        let problems = super::super::check(&SCHEMA, &r, Some(&ledger::render(&SCHEMA, &t)));
        assert_eq!(problems.len(), 1, "the bare ALLOW is the only violation");
        assert!(problems[0].contains("bare ALLOW"));
    }

    #[test]
    fn try_search_zone_attributes_sites_to_the_zone_bucket() {
        let w = ws_of(&[(
            "crates/cagra/src/lib.rs",
            "pub fn try_search(v: &[u32]) -> u32 { kernel(v) }\nfn kernel(v: &[u32]) -> u32 { v[0] }\nfn build_side(v: &[u32]) -> u32 { v[1] }\n",
        )]);
        let r = run(&w);
        let t = super::super::tally(KEYS, &r.findings);
        assert_eq!(t[ZONE], vec![0, 0, 0, 0, 1, 0], "kernel indexing lands in the zone");
        assert_eq!(t["crates/cagra"], vec![0, 0, 0, 0, 1, 0], "build side stays per-crate");
        assert_eq!(r.problems.len(), 1, "un-ALLOWed zone site breaches the pin");
        assert!(r.problems[0].contains("zone:cagra-try-search"));
    }

    #[test]
    fn serve_is_pinned_zero() {
        let w =
            ws_of(&[("crates/serve/src/lib.rs", "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n")]);
        let r = run(&w);
        assert_eq!(r.problems.len(), 1);
        assert!(r.problems[0].contains("crates/serve"));
    }

    #[test]
    fn indexing_counts_once_per_line_and_skips_attributes() {
        let w = ws_of(&[(
            "crates/x/src/lib.rs",
            "#[derive(Clone)]\nstruct S;\nfn f(v: &[u32], m: &[Vec<u32>]) -> u32 {\n    let t: [u32; 2] = [v[0], m[1][2]];\n    t[0]\n}\n",
        )]);
        let r = run(&w);
        let t = super::super::tally(KEYS, &r.findings);
        assert_eq!(t["crates/x"][4], 2, "one finding per line with indexing");
    }
}
