//! The lock-order pass: inventory every `.lock()` acquisition in
//! non-test code, approximate each critical section's extent, build
//! the inter-procedural lock acquisition graph, and enforce two
//! rules:
//!
//! * **no cycles** — if lock A is ever held while acquiring lock B
//!   and (possibly through calls) lock B while acquiring A, two
//!   threads can deadlock. Cycles are hard failures, never budgeted.
//! * **no allocation or I/O under a lock** — the serving layer's
//!   latency contract assumes critical sections are O(queue op);
//!   an allocator stall or syscall under the dispatcher mutex blocks
//!   every submitter. Sites carry `ALLOW(lock): <reason>` when the
//!   path is provably cold.
//!
//! Lock identity is textual: the receiver identifier before `.lock()`
//! (`self.inner.lock()` → `inner`, `self.rows[v].lock()` → `rows`),
//! scoped by crate bucket. Critical sections extend from the
//! acquisition to the end of the enclosing block for `let`-bound
//! guards (truncated at `drop(guard)`), or to the end of the
//! statement for temporary guards.

use super::{live_occurrences, next_nonspace, Finding, PassResult, SCOPES};
use crate::ledger;
use crate::syntax::{find_allow, match_brace, next_token, word_occurrences, Workspace};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

pub const KEYS: &[&str] = &["acquisitions", "nested", "alloc_io", "allowed"];

pub const SCHEMA: ledger::Schema = ledger::Schema {
    file: "lock_budget.toml",
    header: "# Lock-order budget, enforced by `cargo run -p analyze -- audit --pass\n\
             # lock`. Counts every `.lock()` acquisition in non-test code, nested\n\
             # acquisitions (a lock taken while another is held), and alloc/I/O\n\
             # tokens inside critical sections; `ALLOW(lock): <reason>` sites count\n\
             # under `allowed`. Acquisition-order cycles fail the audit outright and\n\
             # are never budgeted. EXACT match required; regenerate with\n\
             # `cargo run -p analyze -- budget-write --pass lock`.\n",
    keys: KEYS,
    pinned_zero: &[],
    grow_hint: "review the new critical section",
    write_cmd: "cargo run -p analyze -- budget-write --pass lock",
};

/// Alloc/I/O method-call words flagged inside critical sections.
const BAD_CALLS: &[&str] =
    &["collect", "clone", "to_vec", "to_owned", "to_string", "channel", "spawn", "read_to_string"];

/// Alloc/I/O macro words flagged inside critical sections.
const BAD_MACROS: &[&str] = &["vec", "format", "println", "eprintln", "print", "write", "writeln"];

/// One acquisition site with its critical-section extent.
struct Acquisition {
    /// `bucket/receiver` lock identity.
    lock: String,
    /// Byte offset of the `lock` word.
    pos: usize,
    /// Critical section byte range (acquisition → release point).
    crit: std::ops::Range<usize>,
}

/// The receiver identifier before `.lock(` at `dot` (the `.`'s
/// offset), skipping one `[..]` index group: `rows[v].lock` → `rows`.
fn receiver(code: &[u8], dot: usize) -> Option<String> {
    let mut i = dot;
    if i == 0 {
        return None;
    }
    if code[i - 1] == b']' {
        let mut depth = 0usize;
        while i > 0 {
            i -= 1;
            match code[i] {
                b']' => depth += 1,
                b'[' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let end = i;
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut start = end;
    while start > 0 && is_word(code[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    Some(String::from_utf8_lossy(&code[start..end]).into_owned())
}

/// End (exclusive) of the innermost `{..}` block containing `pos`.
fn enclosing_block_end(code: &[u8], pos: usize) -> usize {
    let mut stack: Vec<usize> = Vec::new();
    for (i, &b) in code.iter().enumerate().take(pos) {
        match b {
            b'{' => stack.push(i),
            b'}' => {
                stack.pop();
            }
            _ => {}
        }
    }
    match stack.last() {
        Some(&open) => match_brace(code, open),
        None => code.len(),
    }
}

/// Offset just past the `;` ending the statement containing `pos`
/// (depth-aware, so `;` inside nested braces/parens don't end it).
fn statement_end(code: &[u8], pos: usize) -> usize {
    let mut depth = 0i32;
    let mut i = pos;
    while i < code.len() {
        match code[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                if depth == 0 {
                    return i; // statement is the block's tail expression
                }
                depth -= 1;
            }
            b';' if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    code.len()
}

/// Whether the statement containing `pos` is a `let` binding; if so,
/// return the bound name (skipping `mut` and destructuring noise).
fn let_binding(code: &[u8], pos: usize) -> Option<String> {
    let mut start = pos;
    while start > 0 && !matches!(code[start - 1], b';' | b'{' | b'}') {
        start -= 1;
    }
    let (tok, after) = next_token(code, start)?;
    if tok != "let" {
        return None;
    }
    let (mut name, mut at) = next_token(code, after)?;
    if name == "mut" {
        (name, at) = next_token(code, at)?;
    }
    let _ = at;
    name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_').then_some(name)
}

/// Find the matching `)` for the `(` at `open`; returns the offset
/// after it (or `code.len()` when unbalanced).
fn match_paren(code: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &b) in code.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    code.len()
}

/// Whether the call chain starting at the `lock` word at `pos` yields
/// the guard itself as the statement's value: `.lock()` followed only
/// by guard adapters (`unwrap`/`expect`/`unwrap_or_else`) and then
/// `;` or `?`. `let n = q.lock().unwrap().len();` fails this — the
/// guard is a temporary dropped at the statement's end.
fn chain_yields_guard(code: &[u8], pos: usize) -> bool {
    let mut i = pos + 4; // past "lock"
    loop {
        match next_nonspace_at(code, i) {
            Some((j, b'(')) => i = match_paren(code, j),
            _ => return false,
        }
        loop {
            match next_nonspace_at(code, i) {
                Some((_, b';')) => return true,
                Some((j, b'?')) => i = j + 1,
                Some((j, b'.')) => {
                    let Some((word, after)) = next_token(code, j + 1) else { return false };
                    if !matches!(word.as_str(), "unwrap" | "expect" | "unwrap_or_else") {
                        return false;
                    }
                    i = after;
                    break; // expect another paren group
                }
                _ => return false,
            }
        }
    }
}

/// First non-whitespace byte at/after `from`, with its offset.
fn next_nonspace_at(code: &[u8], mut from: usize) -> Option<(usize, u8)> {
    while from < code.len() {
        if !code[from].is_ascii_whitespace() {
            return Some((from, code[from]));
        }
        from += 1;
    }
    None
}

/// Critical-section extent for an acquisition at `pos` (offset of the
/// `lock` word).
fn critical_section(code: &[u8], pos: usize) -> std::ops::Range<usize> {
    let end = match let_binding(code, pos).filter(|_| chain_yields_guard(code, pos)) {
        Some(guard) => {
            let block_end = enclosing_block_end(code, pos);
            // `drop(guard)` releases early — but only when it sits at
            // the same brace depth as the acquisition. A drop inside a
            // nested branch (early-return shed paths) may never run,
            // so it must not shrink the section for the code after it.
            let code_str = std::str::from_utf8(code).unwrap_or("");
            let same_depth = |d: usize| {
                code[pos..d].iter().fold(0i32, |acc, &b| match b {
                    b'{' => acc + 1,
                    b'}' => acc - 1,
                    _ => acc,
                }) == 0
            };
            word_occurrences(code_str, "drop")
                .into_iter()
                .filter(|&d| d > pos && d < block_end && same_depth(d))
                .find(|&d| {
                    next_token(code, d + 4)
                        .filter(|(t, _)| t == "(")
                        .and_then(|(_, after)| next_token(code, after))
                        .is_some_and(|(t, _)| t == guard)
                })
                .unwrap_or(block_end)
        }
        None => statement_end(code, pos),
    };
    pos..end.max(pos)
}

/// Direct lock acquisitions per file: `(fn-or-file scope, sites)`.
fn acquisitions(code: &str, file: &crate::syntax::SourceFile) -> Vec<Acquisition> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (pos, _) in live_occurrences(file, "lock") {
        if next_nonspace(bytes, pos + 4) != Some(b'(') {
            continue;
        }
        if pos == 0 || bytes[pos - 1] != b'.' {
            continue; // `lock(..)` free fn or `lock:` field — not an acquisition
        }
        let Some(recv) = receiver(bytes, pos - 1) else { continue };
        out.push(Acquisition {
            lock: format!("{}/{recv}", file.bucket),
            pos,
            crit: critical_section(bytes, pos),
        });
    }
    out
}

/// Run the pass over a loaded workspace.
pub fn run(ws: &Workspace) -> PassResult {
    let mut findings = Vec::new();
    let mut problems = Vec::new();
    // Phase 1: direct acquisitions everywhere, and per-bucket
    // fn-name → locks-acquired (for inter-procedural edges).
    let mut per_file: Vec<Vec<Acquisition>> = Vec::new();
    let mut fn_locks: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for file in &ws.files {
        let acqs = acquisitions(&file.masks.code, file);
        for a in &acqs {
            if let Some(f) = file.enclosing_fn(a.pos) {
                fn_locks
                    .entry((file.bucket.clone(), f.name.clone()))
                    .or_default()
                    .insert(a.lock.clone());
            }
        }
        per_file.push(acqs);
    }
    // Propagate to a fixed point: a fn "acquires" what its callees
    // (same bucket, name-resolved) acquire.
    let mut call_edges: Vec<((String, String), (String, String))> = Vec::new();
    for file in &ws.files {
        for f in &file.fns {
            if file.in_test_code(f.body.start) {
                continue;
            }
            let body = &file.masks.code[f.body.clone()];
            for callee in fn_locks.keys().map(|(_, n)| n.clone()).collect::<BTreeSet<_>>() {
                if callee != f.name && !word_occurrences(body, &callee).is_empty() {
                    call_edges.push((
                        (file.bucket.clone(), f.name.clone()),
                        (file.bucket.clone(), callee),
                    ));
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for (caller, callee) in &call_edges {
            let Some(callee_locks) = fn_locks.get(callee).cloned() else { continue };
            let caller_locks = fn_locks.entry(caller.clone()).or_default();
            for l in callee_locks {
                changed |= caller_locks.insert(l);
            }
        }
        if !changed {
            break;
        }
    }
    // Phase 2: per critical section — nested acquisitions, call-edges
    // into lock-acquiring fns, and alloc/I/O tokens.
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (file, acqs) in ws.files.iter().zip(&per_file) {
        let code = &file.masks.code;
        let bytes = code.as_bytes();
        for a in acqs {
            let line = file.line_of(a.pos);
            let allow = find_allow("lock", line, &file.code_lines, &file.comment_lines);
            findings.push(Finding {
                path: file.rel.clone(),
                line: line + 1,
                bucket: file.bucket.clone(),
                key: "acquisitions",
                what: format!("lock acquisition `{}`", a.lock),
                allow,
            });
            // Nested direct acquisitions.
            for b in acqs {
                if b.pos > a.pos && a.crit.contains(&b.pos) {
                    edges.entry(a.lock.clone()).or_default().insert(b.lock.clone());
                    let bline = file.line_of(b.pos);
                    let ballow = find_allow("lock", bline, &file.code_lines, &file.comment_lines);
                    findings.push(Finding {
                        path: file.rel.clone(),
                        line: bline + 1,
                        bucket: file.bucket.clone(),
                        key: "nested",
                        what: format!("`{}` acquired while `{}` is held", b.lock, a.lock),
                        allow: ballow,
                    });
                }
            }
            // Inter-procedural: calls (in this bucket) that acquire.
            let crit_code = &code[a.crit.clone()];
            for ((bucket, name), locks) in &fn_locks {
                if *bucket != file.bucket || locks.is_empty() {
                    continue;
                }
                if word_occurrences(crit_code, name).is_empty() {
                    continue;
                }
                for l in locks {
                    if *l != a.lock {
                        edges.entry(a.lock.clone()).or_default().insert(l.clone());
                    }
                }
            }
            // Alloc/I/O tokens under the lock.
            let mut flag = |pos: usize, what: String| {
                let fline = file.line_of(pos);
                let fallow = find_allow("lock", fline, &file.code_lines, &file.comment_lines);
                findings.push(Finding {
                    path: file.rel.clone(),
                    line: fline + 1,
                    bucket: file.bucket.clone(),
                    key: "alloc_io",
                    what,
                    allow: fallow,
                });
            };
            for word in BAD_CALLS {
                for pos in word_occurrences(crit_code, word) {
                    let abs = a.crit.start + pos;
                    if next_nonspace(bytes, abs + word.len()) == Some(b'(') {
                        flag(abs, format!("`{word}(..)` while `{}` is held", a.lock));
                    }
                }
            }
            for word in BAD_MACROS {
                for pos in word_occurrences(crit_code, word) {
                    let abs = a.crit.start + pos;
                    if next_nonspace(bytes, abs + word.len()) == Some(b'!') {
                        flag(abs, format!("`{word}!` while `{}` is held", a.lock));
                    }
                }
            }
        }
    }
    // Cycles in the acquisition graph are deadlocks waiting for the
    // right interleaving: hard failures.
    problems.extend(find_cycles(&edges));
    PassResult { findings, problems }
}

/// DFS cycle detection over the acquisition graph; reports each cycle
/// once, as the lock path that closes it.
fn find_cycles(edges: &BTreeMap<String, BTreeSet<String>>) -> Vec<String> {
    let mut problems = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for start in edges.keys() {
        if done.contains(start.as_str()) {
            continue;
        }
        let mut path: Vec<&str> = Vec::new();
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<(&str, bool)> = vec![(start, false)];
        while let Some((node, leaving)) = stack.pop() {
            if leaving {
                path.pop();
                on_path.remove(node);
                done.insert(node);
                continue;
            }
            if on_path.contains(node) {
                let from = path.iter().position(|n| *n == node).unwrap_or(0);
                problems.push(format!(
                    "lock-order cycle: {} -> {node} — two threads taking these in \
                     opposite orders deadlock",
                    path[from..].join(" -> ")
                ));
                continue;
            }
            if done.contains(node) {
                continue;
            }
            path.push(node);
            on_path.insert(node);
            stack.push((node, true));
            if let Some(nexts) = edges.get(node) {
                for next in nexts {
                    stack.push((next, false));
                }
            }
        }
    }
    problems
}

/// Load the workspace and run (the CLI entry point).
pub fn run_root(root: &Path) -> std::io::Result<PassResult> {
    Ok(run(&Workspace::load(root, SCOPES)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::SourceFile;
    use std::path::Path;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace { files: files.iter().map(|(p, s)| SourceFile::parse(Path::new(p), s)).collect() }
    }

    #[test]
    fn counts_acquisitions_and_alloc_under_lock() {
        let w = ws_of(&[(
            "crates/x/src/lib.rs",
            "fn f(&self) -> Vec<u32> {\n    let g = self.queue.lock().unwrap();\n    g.iter().cloned().collect()\n}\n",
        )]);
        let r = run(&w);
        let t = super::super::tally(KEYS, &r.findings);
        assert_eq!(t["crates/x"], vec![1, 0, 1, 0], "one acquisition, one collect under lock");
    }

    #[test]
    fn drop_releases_the_critical_section() {
        let w = ws_of(&[(
            "crates/x/src/lib.rs",
            "fn f(&self) -> Vec<u32> {\n    let g = self.queue.lock().unwrap();\n    let n = g.len();\n    drop(g);\n    (0..n).collect()\n}\n",
        )]);
        let t = super::super::tally(KEYS, &run(&w).findings);
        assert_eq!(t["crates/x"], vec![1, 0, 0, 0], "collect happens after drop(g)");
    }

    #[test]
    fn nested_acquisition_and_cycle_detection() {
        let w = ws_of(&[(
            "crates/x/src/lib.rs",
            "fn ab(&self) {\n    let a = self.a.lock();\n    let b = self.b.lock();\n}\nfn ba(&self) {\n    let b = self.b.lock();\n    let a = self.a.lock();\n}\n",
        )]);
        let r = run(&w);
        let t = super::super::tally(KEYS, &r.findings);
        assert_eq!(t["crates/x"][1], 2, "one nested acquisition per fn");
        assert_eq!(r.problems.len(), 1, "a->b and b->a is one reported cycle");
        assert!(r.problems[0].contains("cycle"));
    }

    #[test]
    fn interprocedural_edges_close_cycles() {
        let w = ws_of(&[(
            "crates/x/src/lib.rs",
            "fn outer(&self) {\n    let a = self.a.lock();\n    self.inner_b();\n}\nfn inner_b(&self) {\n    let b = self.b.lock();\n    self.take_a();\n}\nfn take_a(&self) {\n    let a = self.a.lock();\n}\n",
        )]);
        let r = run(&w);
        assert!(!r.problems.is_empty(), "a -> b -> a through calls is a cycle");
    }

    #[test]
    fn temporary_guard_critical_section_is_one_statement() {
        let w = ws_of(&[(
            "crates/x/src/lib.rs",
            "fn f(&self) -> usize {\n    let n = self.queue.lock().unwrap().len();\n    (0..n).collect::<Vec<_>>().len()\n}\n",
        )]);
        let t = super::super::tally(KEYS, &run(&w).findings);
        assert_eq!(t["crates/x"], vec![1, 0, 0, 0], "collect is outside the one-statement crit");
    }

    #[test]
    fn allow_lock_exempts_cold_path_allocs() {
        let w = ws_of(&[(
            "crates/x/src/lib.rs",
            "fn f(&self) {\n    let mut g = self.cache.lock().unwrap();\n    // ALLOW(lock): cold path — cache insert happens once per shape.\n    g.push(compute().to_vec());\n}\n",
        )]);
        let t = super::super::tally(KEYS, &run(&w).findings);
        assert_eq!(t["crates/x"], vec![1, 0, 0, 1]);
    }

    #[test]
    fn receiver_sees_through_index_expressions() {
        let w = ws_of(&[(
            "crates/x/src/lib.rs",
            "fn f(&self, v: usize) {\n    let g = self.rows[v].lock();\n}\n",
        )]);
        let r = run(&w);
        assert!(r.findings[0].what.contains("crates/x/rows"));
    }

    #[test]
    fn test_code_locks_are_ignored() {
        let w = ws_of(&[(
            "crates/x/tests/it.rs",
            "fn t(&self) { let g = self.a.lock(); let b = self.b.lock(); }\n",
        )]);
        assert!(run(&w).findings.is_empty());
    }
}
