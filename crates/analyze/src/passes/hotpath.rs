//! The hot-path allocation lint: a committed list of hot functions
//! (`crates/analyze/hot_paths.toml` — search inner loops, ADC gang
//! scoring, batcher dispatch) whose bodies must not allocate.
//!
//! The workspace's perf story is scratch reuse: every per-query
//! allocation was hoisted into `SearchScratch`/arena types in earlier
//! PRs, and this pass keeps them from creeping back. Flagged tokens:
//! `vec![..]`, `<alloc type>::new` / `with_capacity`, `to_vec`,
//! `to_owned`, `to_string`, `format!`, `collect`, `clone`, and
//! `Box::new`. A site that allocates deliberately (e.g. handing a
//! response buffer to the caller) carries `ALLOW(alloc): <reason>`.

use super::{live_occurrences, next_nonspace, Finding, PassResult, SCOPES};
use crate::ledger;
use crate::syntax::{find_allow, Workspace};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

pub const KEYS: &[&str] = &["allocs", "allowed"];

pub const SCHEMA: ledger::Schema = ledger::Schema {
    file: "alloc_budget.toml",
    header: "# Allocation budget for the hot functions listed in hot_paths.toml,\n\
             # enforced by `cargo run -p analyze -- audit --pass alloc`. Counts\n\
             # allocation-family tokens (vec!/new/with_capacity/to_vec/collect/\n\
             # clone/format!/Box::new/..) inside those bodies; sites with an\n\
             # adjacent `ALLOW(alloc): <reason>` count under `allowed`. EXACT\n\
             # match required; regenerate with\n\
             # `cargo run -p analyze -- budget-write --pass alloc`.\n",
    keys: KEYS,
    pinned_zero: &[],
    grow_hint: "hoist the allocation into scratch (or justify it)",
    write_cmd: "cargo run -p analyze -- budget-write --pass alloc",
};

/// Types whose `::new` / `::with_capacity` allocate.
const ALLOC_TYPES: &[&str] =
    &["Vec", "VecDeque", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// Method-call words that allocate.
const ALLOC_CALLS: &[&str] = &["to_vec", "to_owned", "to_string", "collect", "clone"];

/// Macro words that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Parse `hot_paths.toml`: `["crates/<name>"]` sections each holding
/// a `functions = ["a", "b", ..]` array (multi-line allowed).
pub fn parse_hot_paths(text: &str) -> Result<BTreeMap<String, BTreeSet<String>>, String> {
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut section: Option<String> = None;
    let mut in_array = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("hot_paths.toml:{}: {msg}: `{raw}`", idx + 1);
        if !in_array {
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().trim_matches('"').to_string();
                if out.insert(name.clone(), BTreeSet::new()).is_some() {
                    return Err(err("duplicate section"));
                }
                section = Some(name);
                continue;
            }
            let (key, value) =
                line.split_once('=').ok_or_else(|| err("expected `functions = [..]`"))?;
            if key.trim() != "functions" {
                return Err(err("unknown key (expected functions)"));
            }
            let value = value.trim();
            let Some(rest) = value.strip_prefix('[') else {
                return Err(err("expected `[` to open the array"));
            };
            in_array = !consume_names(rest, &mut out, &section, &err)?;
        } else {
            in_array = !consume_names(line, &mut out, &section, &err)?;
        }
    }
    if in_array {
        return Err("hot_paths.toml: unterminated functions array".to_string());
    }
    Ok(out)
}

/// Pull quoted names out of one array-line; returns true when the
/// closing `]` was seen.
fn consume_names(
    line: &str,
    out: &mut BTreeMap<String, BTreeSet<String>>,
    section: &Option<String>,
    err: &dyn Fn(&str) -> String,
) -> Result<bool, String> {
    let section = section.as_ref().ok_or_else(|| err("array outside any [section]"))?;
    let (body, closed) = match line.split_once(']') {
        Some((body, _)) => (body, true),
        None => (line, false),
    };
    for item in body.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let name = item.trim_matches('"');
        if name == item || name.is_empty() {
            return Err(err("expected a quoted function name"));
        }
        out.get_mut(section).ok_or_else(|| err("section vanished"))?.insert(name.to_string());
    }
    Ok(closed)
}

/// Run the pass over a loaded workspace with a parsed hot-fn config.
pub fn run(ws: &Workspace, hot: &BTreeMap<String, BTreeSet<String>>) -> PassResult {
    let mut findings = Vec::new();
    let mut problems = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for file in &ws.files {
        let Some(hot_fns) = hot.get(&file.bucket) else { continue };
        let code = file.masks.code.as_bytes();
        for f in &file.fns {
            if !hot_fns.contains(&f.name) || file.in_test_code(f.body.start) {
                continue;
            }
            seen.insert((file.bucket.clone(), f.name.clone()));
            let in_body = |pos: usize| -> bool { f.body.contains(&pos) };
            let mut push = |line: usize, what: String| {
                let allow = find_allow("alloc", line, &file.code_lines, &file.comment_lines);
                findings.push(Finding {
                    path: file.rel.clone(),
                    line: line + 1,
                    bucket: file.bucket.clone(),
                    key: "allocs",
                    what,
                    allow,
                });
            };
            for word in ALLOC_CALLS {
                for (pos, line) in live_occurrences(file, word) {
                    if in_body(pos) && next_nonspace(code, pos + word.len()) == Some(b'(') {
                        push(line, format!("`.{word}()` in hot fn `{}`", f.name));
                    }
                }
            }
            for word in ALLOC_MACROS {
                for (pos, line) in live_occurrences(file, word) {
                    if in_body(pos) && next_nonspace(code, pos + word.len()) == Some(b'!') {
                        push(line, format!("`{word}!` in hot fn `{}`", f.name));
                    }
                }
            }
            for ctor in ["new", "with_capacity"] {
                for (pos, line) in live_occurrences(file, ctor) {
                    if !in_body(pos) || !file.masks.code[..pos].ends_with("::") {
                        continue;
                    }
                    let before = &file.masks.code[..pos - 2];
                    if ALLOC_TYPES.iter().any(|t| {
                        before.ends_with(t)
                            && !before[..before.len() - t.len()]
                                .ends_with(|c: char| c.is_ascii_alphanumeric() || c == '_')
                    }) {
                        push(line, format!("`::{ctor}` alloc in hot fn `{}`", f.name));
                    }
                }
            }
        }
    }
    // A listed function that no longer exists is config rot: the lint
    // would silently stop covering it.
    for (bucket, fns) in hot {
        for name in fns {
            if !seen.contains(&(bucket.clone(), name.clone())) {
                problems.push(format!(
                    "hot_paths.toml: `{name}` not found in {bucket} non-test code — \
                     remove it or fix the name"
                ));
            }
        }
    }
    PassResult { findings, problems }
}

/// Load workspace + config and run (the CLI entry point).
pub fn run_root(root: &Path) -> std::io::Result<PassResult> {
    let ws = Workspace::load(root, SCOPES)?;
    let path = root.join("crates/analyze/hot_paths.toml");
    let text = std::fs::read_to_string(&path)?;
    match parse_hot_paths(&text) {
        Ok(hot) => Ok(run(&ws, &hot)),
        Err(e) => Ok(PassResult { findings: Vec::new(), problems: vec![e] }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::SourceFile;
    use std::path::Path;

    fn hot(bucket: &str, fns: &[&str]) -> BTreeMap<String, BTreeSet<String>> {
        let mut m = BTreeMap::new();
        m.insert(bucket.to_string(), fns.iter().map(|s| s.to_string()).collect());
        m
    }

    fn ws_of(src: &str) -> Workspace {
        Workspace { files: vec![SourceFile::parse(Path::new("crates/x/src/lib.rs"), src)] }
    }

    #[test]
    fn flags_allocs_only_in_listed_fns() {
        let w = ws_of(
            "fn hot(v: &[u32]) -> Vec<u32> {\n    let mut out = Vec::new();\n    out.extend(v.iter().cloned());\n    let s = v.to_vec();\n    out\n}\nfn cold() -> Vec<u32> { vec![1, 2] }\n",
        );
        let r = run(&w, &hot("crates/x", &["hot"]));
        let t = super::super::tally(KEYS, &r.findings);
        assert_eq!(t["crates/x"], vec![2, 0], "Vec::new + to_vec; cold fn ignored");
        assert!(r.problems.is_empty());
    }

    #[test]
    fn allow_alloc_moves_to_allowed() {
        let w = ws_of(
            "fn hot(v: &[u32]) -> Vec<u32> {\n    // ALLOW(alloc): response buffer is handed to the caller.\n    v.to_vec()\n}\n",
        );
        let t = super::super::tally(KEYS, &run(&w, &hot("crates/x", &["hot"])).findings);
        assert_eq!(t["crates/x"], vec![0, 1]);
    }

    #[test]
    fn unknown_listed_fn_is_config_rot() {
        let w = ws_of("fn hot() {}\n");
        let r = run(&w, &hot("crates/x", &["hot", "gone"]));
        assert_eq!(r.problems.len(), 1);
        assert!(r.problems[0].contains("`gone`"));
    }

    #[test]
    fn hot_paths_config_parses_multiline_arrays() {
        let text = "# hot fns\n[\"crates/x\"]\nfunctions = [\n    \"alpha\", # inner loop\n    \"beta\",\n]\n[\"crates/y\"]\nfunctions = [\"gamma\"]\n";
        let hot = parse_hot_paths(text).unwrap();
        assert_eq!(hot["crates/x"].len(), 2);
        assert!(hot["crates/y"].contains("gamma"));
        assert!(parse_hot_paths("functions = [\"a\"]\n").is_err(), "array needs a section");
        assert!(parse_hot_paths("[\"crates/x\"]\nfunctions = [\n").is_err(), "unterminated");
    }

    #[test]
    fn ctor_detection_requires_alloc_type_prefix() {
        let w = ws_of(
            "fn hot() {\n    let a = Scratch::new();\n    let b = Vec::with_capacity(8);\n    let c = MyVec::new();\n}\n",
        );
        let t = super::super::tally(KEYS, &run(&w, &hot("crates/x", &["hot"])).findings);
        assert_eq!(t["crates/x"], vec![1, 0], "only Vec::with_capacity; MyVec/Scratch are fine");
    }
}
