//! The determinism lint: flag order-sensitive constructs in code
//! reachable from the build/search entry points of the core pipeline
//! crates. The workspace's reproducibility contract (ROADMAP:
//! bit-identical graphs and result lists for a fixed seed) dies
//! quietly when any of these sneak in:
//!
//! * **hash iteration** — `HashMap`/`HashSet` iterate in RandomState
//!   order, which varies per process; anything derived from that
//!   order (neighbor ranks, visit order, result lists) becomes
//!   run-dependent. Sorted structures (`Vec` + `binary_search`,
//!   `BTreeMap`) are the deterministic replacements.
//! * **unseeded RNG** — `thread_rng`/`from_entropy`/`random()` draw
//!   from OS entropy; every RNG on the build path must derive from
//!   the config seed.
//! * **float accumulation outside the canonical 8-lane contract** —
//!   explicitly-typed float `.sum::<f32>()` / `.fold(0.0, ..)`
//!   reductions commit to *some* association order; the distance
//!   crate's canonical kernels define the blessed lane order, and any
//!   other float reduction on the pipeline must either match it or
//!   justify why order cannot matter (`ALLOW(determinism)`).
//!
//! Reachability is the same textual call graph the panic pass uses:
//! per-crate, name-resolved, rooted at functions whose name contains
//! `search`, `build`, or `optimize`.

use super::{live_occurrences, next_nonspace, Finding, PassResult, SCOPES};
use crate::ledger;
use crate::syntax::{find_allow, Workspace};
use std::path::Path;

pub const KEYS: &[&str] = &["hash_iter", "rng", "float_accum", "allowed"];

/// The core pipeline crates the lint covers. Baseline crates (hnsw,
/// song, nssg, ...) are comparison implementations with their own
/// seeds; the reproducibility contract is about this pipeline.
pub const BUCKETS: &[&str] =
    &["crates/cagra", "crates/knn", "crates/distance", "crates/graph", "crates/gpu-sim"];

pub const SCHEMA: ledger::Schema = ledger::Schema {
    file: "determinism_budget.toml",
    header: "# Determinism budget for code reachable from build/search entry points\n\
             # of the core pipeline crates (cagra/knn/distance/graph/gpu-sim),\n\
             # enforced by `cargo run -p analyze -- audit --pass determinism`.\n\
             # Counts HashMap/HashSet use (iteration order varies per process),\n\
             # unseeded RNG, and explicitly-float reductions; sites with an\n\
             # adjacent `ALLOW(determinism): <reason>` count under `allowed`.\n\
             # EXACT match required; regenerate with\n\
             # `cargo run -p analyze -- budget-write --pass determinism`.\n",
    keys: KEYS,
    pinned_zero: &[],
    grow_hint: "make it order-independent (or justify why order cannot matter)",
    write_cmd: "cargo run -p analyze -- budget-write --pass determinism",
};

fn is_root(name: &str) -> bool {
    name.contains("search") || name.contains("build") || name.contains("optimize")
}

/// Float-reduction patterns that commit to an association order.
const FLOAT_ACCUM: &[&str] =
    &[".sum::<f32>", ".sum::<f64>", ".fold(0.0", ".fold(0f32", ".fold(0f64"];

/// Run the pass over a loaded workspace, covering `buckets` (the CLI
/// uses [`BUCKETS`]; tests substitute fixture crates).
pub fn run(ws: &Workspace, buckets: &[&str]) -> PassResult {
    let mut findings = Vec::new();
    for bucket in buckets {
        let reach = super::reachable_fns(ws, bucket, &is_root, &|_| false);
        for file in ws.files.iter().filter(|f| f.bucket == *bucket) {
            let code = file.masks.code.as_bytes();
            let in_reach =
                |pos: usize| file.enclosing_fn(pos).is_some_and(|f| reach.contains(&f.name));
            let mut push = |line: usize, key: &'static str, what: String| {
                let allow = find_allow("determinism", line, &file.code_lines, &file.comment_lines);
                findings.push(Finding {
                    path: file.rel.clone(),
                    line: line + 1,
                    bucket: bucket.to_string(),
                    key,
                    what,
                    allow,
                });
            };
            // Hash containers: one finding per line mentioning them.
            let mut last_line = usize::MAX;
            for word in ["HashMap", "HashSet"] {
                for (pos, line) in live_occurrences(file, word) {
                    if in_reach(pos) && line != last_line {
                        last_line = line;
                        push(line, "hash_iter", format!("`{word}` (iteration order varies)"));
                    }
                }
            }
            // Unseeded RNG.
            for word in ["thread_rng", "from_entropy"] {
                for (pos, line) in live_occurrences(file, word) {
                    if in_reach(pos) {
                        push(line, "rng", format!("unseeded RNG `{word}`"));
                    }
                }
            }
            for (pos, line) in live_occurrences(file, "random") {
                if in_reach(pos) && next_nonspace(code, pos + 6) == Some(b'(') {
                    push(line, "rng", "unseeded RNG `random()`".to_string());
                }
            }
            // Float accumulation.
            if !file.is_test_file {
                for pat in FLOAT_ACCUM {
                    for (pos, _) in file.masks.code.match_indices(pat) {
                        if !file.in_test_code(pos) && in_reach(pos) {
                            let line = file.line_of(pos);
                            push(line, "float_accum", format!("float reduction `{pat}..`"));
                        }
                    }
                }
            }
        }
    }
    PassResult { findings, problems: Vec::new() }
}

/// Load the workspace and run (the CLI entry point).
pub fn run_root(root: &Path) -> std::io::Result<PassResult> {
    Ok(run(&Workspace::load(root, SCOPES)?, BUCKETS))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::SourceFile;
    use std::path::Path;

    fn ws_of(path: &str, src: &str) -> Workspace {
        Workspace { files: vec![SourceFile::parse(Path::new(path), src)] }
    }

    #[test]
    fn flags_hash_iteration_reachable_from_search() {
        let w = ws_of(
            "crates/cagra/src/lib.rs",
            "pub fn search(v: &[u32]) { rank(v); }\nfn rank(v: &[u32]) {\n    let m: std::collections::HashMap<u32, usize> =\n        v.iter().map(|&x| (x, 0)).collect();\n    let _ = m;\n}\nfn unrelated() {\n    let s: std::collections::HashSet<u32> = Default::default();\n    let _ = s;\n}\n",
        );
        let r = run(&w, BUCKETS);
        let t = super::super::tally(KEYS, &r.findings);
        assert_eq!(t["crates/cagra"], vec![1, 0, 0, 0], "only the reachable HashMap counts");
    }

    #[test]
    fn out_of_scope_buckets_are_ignored() {
        let w = ws_of(
            "crates/serve/src/lib.rs",
            "pub fn search_cache() {\n    let m = std::collections::HashMap::<u32, u32>::new();\n    let _ = m;\n}\n",
        );
        assert!(run(&w, BUCKETS).findings.is_empty());
    }

    #[test]
    fn flags_unseeded_rng_and_float_folds() {
        let w = ws_of(
            "crates/knn/src/lib.rs",
            "pub fn build(v: &[f32]) -> f32 {\n    let mut rng = thread_rng();\n    v.iter().copied().fold(0.0, |a, b| a + b)\n}\n",
        );
        let t = super::super::tally(KEYS, &run(&w, BUCKETS).findings);
        assert_eq!(t["crates/knn"], vec![0, 1, 1, 0]);
    }

    #[test]
    fn allow_determinism_exempts_order_independent_reductions() {
        let w = ws_of(
            "crates/gpu-sim/src/lib.rs",
            "pub fn build_cost(v: &[f64]) -> f64 {\n    // ALLOW(determinism): max is order-independent.\n    v.iter().copied().fold(0.0, f64::max)\n}\n",
        );
        let t = super::super::tally(KEYS, &run(&w, BUCKETS).findings);
        assert_eq!(t["crates/gpu-sim"], vec![0, 0, 0, 1]);
    }

    #[test]
    fn test_code_is_exempt() {
        let w = ws_of(
            "crates/cagra/src/lib.rs",
            "pub fn search() {}\n#[cfg(test)]\nmod t {\n    fn search_check() {\n        let s = std::collections::HashSet::<u32>::new();\n        let _ = s;\n    }\n}\n",
        );
        assert!(run(&w, BUCKETS).findings.is_empty());
    }
}
