//! The generic budget engine behind every pass's committed ledger.
//!
//! A budget file is a ratchet: per-bucket integer counts that the
//! audit requires to match **exactly** in both directions. Counts
//! above budget mean new debt landed without review; counts below
//! budget mean debt was paid down and the ratchet must be tightened
//! so it cannot silently creep back. The unsafe audit proved the
//! pattern (`unsafe_budget.toml`); this module generalizes it so the
//! panic-path, hot-path-allocation, lock-order, and determinism
//! passes each get the same file format, exact-match diffing, and
//! canonical (deterministically sorted) rendering for the price of a
//! [`Schema`].
//!
//! The format is the same small TOML subset the unsafe budget uses
//! (quoted-key sections, integer values, `#` comments), parsed here
//! without any dependency since the workspace builds offline.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// What a pass's budget file looks like and how its diffs read.
pub struct Schema {
    /// Budget file name under `crates/analyze/` (used in errors).
    pub file: &'static str,
    /// Header comment block, written verbatim at the top of the file.
    pub header: &'static str,
    /// Count keys, in render order (e.g. `["unwraps", "expects"]`).
    pub keys: &'static [&'static str],
    /// Buckets whose budget is an explicit commitment to ZERO, with a
    /// rationale comment: always rendered even when they tally no
    /// sites, so the first violation shows up in review as a budget
    /// diff rather than a brand-new, easy-to-wave-through section.
    pub pinned_zero: &'static [(&'static str, &'static str)],
    /// What growing a count means ("review the new unsafe").
    pub grow_hint: &'static str,
    /// Command that regenerates the file.
    pub write_cmd: &'static str,
}

/// Per-bucket counts, parallel to [`Schema::keys`]. The `BTreeMap`
/// keeps every consumer — render, diff, JSON report — deterministically
/// sorted by bucket name.
pub type Tallies = BTreeMap<String, Vec<usize>>;

/// Parse a budget file against `schema`. Returns bucket → counts, or
/// a human-readable error naming the offending line.
pub fn parse(schema: &Schema, text: &str) -> Result<Tallies, String> {
    let mut out = Tallies::new();
    let mut section: Option<String> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("{}:{}: {msg}: `{raw}`", schema.file, idx + 1);
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim().trim_matches('"').to_string();
            if out.insert(name.clone(), vec![0; schema.keys.len()]).is_some() {
                return Err(err("duplicate section"));
            }
            section = Some(name);
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| err("expected `key = value`"))?;
        let value: usize =
            value.trim().parse().map_err(|_| err("expected a non-negative integer"))?;
        let section = section.as_ref().ok_or_else(|| err("key outside any [section]"))?;
        let counts = out.get_mut(section).ok_or_else(|| err("section vanished"))?;
        match schema.keys.iter().position(|k| *k == key.trim()) {
            Some(slot) => counts[slot] = value,
            None => {
                return Err(err(&format!("unknown key (expected {})", schema.keys.join("/"))));
            }
        }
    }
    Ok(out)
}

/// Render the canonical budget file: header, then each bucket sorted
/// by name (zero-count buckets omitted unless pinned), each key on
/// its own line in schema order. Byte-stable for a given tally.
pub fn render(schema: &Schema, tallies: &Tallies) -> String {
    let mut s = String::from(schema.header);
    let mut buckets: BTreeMap<&str, &[usize]> = tallies
        .iter()
        .filter(|(_, c)| c.iter().sum::<usize>() > 0)
        .map(|(name, c)| (name.as_str(), c.as_slice()))
        .collect();
    let zeros = vec![0usize; schema.keys.len()];
    for (name, _) in schema.pinned_zero {
        buckets.entry(name).or_insert(&zeros);
    }
    for (bucket, c) in buckets {
        s.push('\n');
        if let Some((_, rationale)) = schema.pinned_zero.iter().find(|(name, _)| *name == bucket) {
            s.push_str(rationale);
        }
        let _ = writeln!(s, "[\"{bucket}\"]");
        for (key, v) in schema.keys.iter().zip(c) {
            let _ = writeln!(s, "{key} = {v}");
        }
    }
    s
}

/// Compare actual tallies against the committed budget. Returns a
/// list of violations (empty = pass), sorted by bucket.
pub fn diff(schema: &Schema, actual: &Tallies, budget: &Tallies) -> Vec<String> {
    let mut problems = Vec::new();
    let zeros = vec![0usize; schema.keys.len()];
    let buckets: BTreeSet<&String> = actual.keys().chain(budget.keys()).collect();
    for bucket in buckets {
        let a = actual.get(bucket.as_str()).unwrap_or(&zeros);
        let b = budget.get(bucket.as_str()).unwrap_or(&zeros);
        for (key, (&av, &bv)) in schema.keys.iter().zip(a.iter().zip(b)) {
            if av > bv {
                problems.push(format!(
                    "{bucket}: {key} grew to {av} (budget {bv}) — {}, then `{}`",
                    schema.grow_hint, schema.write_cmd
                ));
            } else if av < bv {
                problems.push(format!(
                    "{bucket}: {key} shrank to {av} (budget {bv}) — ratchet the budget \
                     down with `{}`",
                    schema.write_cmd
                ));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Schema = Schema {
        file: "demo_budget.toml",
        header: "# demo header\n",
        keys: &["alphas", "betas"],
        pinned_zero: &[("crates/pinned", "# pinned rationale\n")],
        grow_hint: "review the new debt",
        write_cmd: "cargo run -p analyze -- budget-write --pass demo",
    };

    #[test]
    fn render_parse_roundtrip_is_exact() {
        let mut t = Tallies::new();
        t.insert("crates/b".into(), vec![2, 0]);
        t.insert("crates/a".into(), vec![0, 3]);
        t.insert("crates/empty".into(), vec![0, 0]); // omitted
        let parsed = parse(&S, &render(&S, &t)).unwrap();
        t.remove("crates/empty");
        t.insert("crates/pinned".into(), vec![0, 0]);
        assert_eq!(parsed, t);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut t = Tallies::new();
        t.insert("crates/z".into(), vec![1, 0]);
        t.insert("crates/a".into(), vec![1, 0]);
        let r = render(&S, &t);
        let a = r.find("crates/a").unwrap();
        let p = r.find("crates/pinned").unwrap();
        let z = r.find("crates/z").unwrap();
        assert!(a < p && p < z, "sections must sort by bucket name");
        assert_eq!(r, render(&S, &t), "render must be deterministic");
        assert!(r.contains("# pinned rationale"));
    }

    #[test]
    fn diff_flags_growth_shrinkage_and_missing_buckets() {
        let mut actual = Tallies::new();
        actual.insert("crates/x".into(), vec![5, 0]);
        let mut budget = Tallies::new();
        budget.insert("crates/x".into(), vec![4, 1]);
        let problems = diff(&S, &actual, &budget);
        assert_eq!(problems.len(), 2);
        assert!(problems[0].contains("alphas grew to 5"));
        assert!(problems[0].contains("review the new debt"));
        assert!(problems[1].contains("betas shrank to 0"));
        assert_eq!(diff(&S, &actual, &Tallies::new()).len(), 1, "unbudgeted bucket fails");
        assert_eq!(diff(&S, &Tallies::new(), &actual).len(), 1, "vanished bucket fails");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse(&S, "alphas = 1\n").is_err(), "key before any section");
        assert!(parse(&S, "[\"a\"]\nalphas = -1\n").is_err(), "negative count");
        assert!(parse(&S, "[\"a\"]\nwat = 3\n").is_err(), "unknown key");
        assert!(parse(&S, "[\"a\"]\n[\"a\"]\n").is_err(), "duplicate section");
    }
}
