//! Static-analysis suite for the workspace's soundness and quality
//! story (DESIGN.md "Soundness & analysis" / "Static analysis").
//!
//! Five passes, all driven by the same comment/string-aware lexer
//! ([`lexer`]) and budget engine ([`ledger`]):
//!
//! * `unsafe` — every `unsafe` site needs adjacent `SAFETY:` docs and
//!   the per-crate counts must match `unsafe_budget.toml` exactly;
//! * `panic` — unwrap/expect/panic!/assert!/indexing inventory with
//!   `panic_budget.toml`, pinned to zero un-ALLOWed sites for
//!   `crates/serve` and the `try_search*` call graph;
//! * `alloc` — allocation tokens inside the hot functions listed in
//!   `hot_paths.toml`, budgeted by `alloc_budget.toml`;
//! * `lock` — lock acquisitions, nesting, alloc/I/O under locks
//!   (`lock_budget.toml`); acquisition-order cycles fail outright;
//! * `determinism` — hash iteration, unseeded RNG, float reductions
//!   reachable from build/search (`determinism_budget.toml`).
//!
//! The binary front-end is `cargo run -p analyze -- <audit|list|`
//! `budget-write> [--pass <name|all>]`; `audit --json <path>` also
//! writes a `cagra-metrics-v1` report ([`report`]).
//!
//! Being textual, the passes see *all* sources — including targets'
//! `cfg`'d-out kernels (NEON on an x86 host) that `clippy::`
//! `undocumented_unsafe_blocks` cannot reach. The two checks are
//! deliberately redundant where they overlap.

pub mod audit;
pub mod budget;
pub mod ledger;
pub mod lexer;
pub mod passes;
pub mod report;
pub mod syntax;

use std::path::{Path, PathBuf};

pub use audit::{audit_workspace, Counts, Kind, Site};

/// The workspace root, resolved relative to this crate so the tool
/// works from any cwd (`cargo run -p analyze` sets the manifest dir).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Location of the committed budget file under `root`.
pub fn budget_path(root: &Path) -> PathBuf {
    root.join("crates/analyze/unsafe_budget.toml")
}

/// Run the full unsafe audit (documentation + budget) over the
/// workspace at `root`. Returns the inventory on success, or the
/// list of violations on failure.
pub fn run_audit(root: &Path) -> Result<Vec<Site>, Vec<String>> {
    let sites = audit_workspace(root).map_err(|e| vec![format!("walking sources: {e}")])?;
    let mut problems: Vec<String> = sites
        .iter()
        .filter(|s| !s.documented)
        .map(|s| {
            format!(
                "{}:{}: undocumented `unsafe {}` (needs an adjacent {} per DESIGN.md)",
                s.path.display(),
                s.line,
                s.kind,
                if s.kind == Kind::Fn { "`# Safety` doc section" } else { "`SAFETY:` comment" },
            )
        })
        .collect();
    let budget_text = std::fs::read_to_string(budget_path(root)).map_err(|e| {
        vec![format!(
            "reading {}: {e} (run `cargo run -p analyze -- budget-write` to create it)",
            budget_path(root).display()
        )]
    })?;
    match budget::parse(&budget_text) {
        Ok(budget) => problems.extend(budget::diff(&budget::tally(&sites), &budget)),
        Err(e) => problems.push(e),
    }
    if problems.is_empty() {
        Ok(sites)
    } else {
        Err(problems)
    }
}

/// Every pass the suite knows, in run order.
pub const PASSES: &[&str] = &["unsafe", "panic", "alloc", "lock", "determinism"];

/// The quality passes' schemas by CLI name (`unsafe` lives in
/// [`budget::SCHEMA`] and predates the generic driver).
pub fn pass_schema(name: &str) -> Option<&'static ledger::Schema> {
    match name {
        "unsafe" => Some(&budget::SCHEMA),
        "panic" => Some(&passes::panics::SCHEMA),
        "alloc" => Some(&passes::hotpath::SCHEMA),
        "lock" => Some(&passes::locks::SCHEMA),
        "determinism" => Some(&passes::determinism::SCHEMA),
        _ => None,
    }
}

/// Location of a pass's committed budget file under `root`.
pub fn pass_budget_path(root: &Path, schema: &ledger::Schema) -> PathBuf {
    root.join("crates/analyze").join(schema.file)
}

/// Everything one pass produced, ready for printing/reporting.
pub struct PassOutcome {
    /// CLI name of the pass.
    pub pass: &'static str,
    /// Count keys (parallel to each tally row).
    pub keys: &'static [&'static str],
    /// Per-bucket counts.
    pub tallies: ledger::Tallies,
    /// Human-readable inventory lines (`path:line  what  [status]`).
    pub inventory: Vec<String>,
    /// Violations (empty = pass).
    pub problems: Vec<String>,
}

/// Run one pass by name and check it against its committed budget.
pub fn audit_pass(root: &Path, name: &str) -> std::io::Result<PassOutcome> {
    if name == "unsafe" {
        let sites = audit_workspace(root)?;
        let tallies: ledger::Tallies = budget::tally(&sites)
            .into_iter()
            .map(|(k, c)| (k, vec![c.blocks, c.fns, c.impls, c.traits]))
            .collect();
        let inventory = sites
            .iter()
            .map(|s| {
                format!(
                    "{}:{}\t{}\t{}",
                    s.path.display(),
                    s.line,
                    s.kind,
                    if s.documented { "documented" } else { "UNDOCUMENTED" }
                )
            })
            .collect();
        let problems = match run_audit(root) {
            Ok(_) => Vec::new(),
            Err(problems) => problems,
        };
        return Ok(PassOutcome {
            pass: "unsafe",
            keys: budget::SCHEMA.keys,
            tallies,
            inventory,
            problems,
        });
    }
    let (result, pass): (passes::PassResult, &'static str) = match name {
        "panic" => (passes::panics::run_root(root)?, "panic"),
        "alloc" => (passes::hotpath::run_root(root)?, "alloc"),
        "lock" => (passes::locks::run_root(root)?, "lock"),
        "determinism" => (passes::determinism::run_root(root)?, "determinism"),
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("unknown pass `{other}` (expected {})", PASSES.join("/")),
            ))
        }
    };
    let schema = pass_schema(pass).expect("every quality pass has a schema");
    let budget_text = std::fs::read_to_string(pass_budget_path(root, schema)).ok();
    let problems = passes::check(schema, &result, budget_text.as_deref());
    let tallies = passes::tally(schema.keys, &result.findings);
    let inventory = result
        .findings
        .iter()
        .map(|f| {
            format!(
                "{}:{}\t{}\t{}\t{}",
                f.path.display(),
                f.line,
                f.key,
                f.what,
                match f.allow {
                    syntax::Allow::None => "",
                    syntax::Allow::Reasoned => "ALLOW",
                    syntax::Allow::Bare => "BARE-ALLOW",
                }
            )
        })
        .collect();
    Ok(PassOutcome { pass, keys: schema.keys, tallies, inventory, problems })
}

/// Regenerate one pass's budget file from current counts; returns the
/// path written and the number of sites tallied.
pub fn write_pass_budget(root: &Path, name: &str) -> std::io::Result<(PathBuf, usize)> {
    let schema = pass_schema(name).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("unknown pass `{name}` (expected {})", PASSES.join("/")),
        )
    })?;
    let outcome = audit_pass(root, name)?;
    let path = pass_budget_path(root, schema);
    std::fs::write(&path, ledger::render(schema, &outcome.tallies))?;
    let sites = outcome.tallies.values().map(|v| v.iter().sum::<usize>()).sum();
    Ok((path, sites))
}
