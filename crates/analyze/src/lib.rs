//! Static-analysis driver for the workspace's soundness story
//! (DESIGN.md "Soundness & analysis").
//!
//! The binary front-end is `cargo run -p analyze -- <check>`:
//!
//! * `audit` — inventory every `unsafe` block/fn/impl/trait in the
//!   workspace, fail on any missing `SAFETY:` / `# Safety`
//!   documentation, and fail unless the per-crate counts exactly
//!   match the committed budget in `crates/analyze/unsafe_budget.toml`;
//! * `list` — print the full inventory (path:line, kind, doc status);
//! * `budget-write` — regenerate the budget file from current counts.
//!
//! Being textual, the audit sees *all* sources — including targets'
//! `cfg`'d-out kernels (NEON on an x86 host) that `clippy::`
//! `undocumented_unsafe_blocks` cannot reach. The two checks are
//! deliberately redundant where they overlap.

pub mod audit;
pub mod budget;
pub mod lexer;

use std::path::{Path, PathBuf};

pub use audit::{audit_workspace, Counts, Kind, Site};

/// The workspace root, resolved relative to this crate so the tool
/// works from any cwd (`cargo run -p analyze` sets the manifest dir).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Location of the committed budget file under `root`.
pub fn budget_path(root: &Path) -> PathBuf {
    root.join("crates/analyze/unsafe_budget.toml")
}

/// Run the full audit (documentation + budget) over the workspace at
/// `root`. Returns the inventory on success, or the list of
/// violations on failure.
pub fn run_audit(root: &Path) -> Result<Vec<Site>, Vec<String>> {
    let sites = audit_workspace(root).map_err(|e| vec![format!("walking sources: {e}")])?;
    let mut problems: Vec<String> = sites
        .iter()
        .filter(|s| !s.documented)
        .map(|s| {
            format!(
                "{}:{}: undocumented `unsafe {}` (needs an adjacent {} per DESIGN.md)",
                s.path.display(),
                s.line,
                s.kind,
                if s.kind == Kind::Fn { "`# Safety` doc section" } else { "`SAFETY:` comment" },
            )
        })
        .collect();
    let budget_text = std::fs::read_to_string(budget_path(root)).map_err(|e| {
        vec![format!(
            "reading {}: {e} (run `cargo run -p analyze -- budget-write` to create it)",
            budget_path(root).display()
        )]
    })?;
    match budget::parse(&budget_text) {
        Ok(budget) => problems.extend(budget::diff(&budget::tally(&sites), &budget)),
        Err(e) => problems.push(e),
    }
    if problems.is_empty() {
        Ok(sites)
    } else {
        Err(problems)
    }
}
