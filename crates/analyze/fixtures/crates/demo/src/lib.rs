//! Deliberate static-analysis violations — at least one per pass — so
//! the analyze test-suite can prove every lint actually fires.
//!
//! This tree is *not* a cargo workspace member and is never compiled;
//! the workspace scanner skips any directory named `fixtures`, and the
//! tests load it explicitly as an out-of-tree root. Keep each
//! violation minimal and labeled: tests assert on exact counts.

use std::collections::HashMap;
use std::sync::Mutex;

pub struct Demo {
    pub items: Mutex<Vec<u32>>,
    pub names: Mutex<Vec<String>>,
}

/// panic pass: an un-ALLOWed unwrap in non-test code.
pub fn panic_site(v: Option<u32>) -> u32 {
    v.unwrap()
}

/// panic pass: a bare ALLOW (no reason) is itself a violation.
pub fn bare_allow_site(v: &[u32]) -> u32 {
    // ALLOW(panic)
    v[0]
}

/// panic pass: a reasoned ALLOW counts under `allowed`.
pub fn reasoned_allow_site(v: &[u32]) -> u32 {
    // ALLOW(panic): fixture exercising the reasoned-exemption path.
    v[1]
}

/// alloc pass: allocation inside a function listed as hot.
pub fn hot_alloc(v: &[u32]) -> Vec<u32> {
    v.to_vec()
}

/// lock pass: allocation under a held lock, plus a nested acquisition.
pub fn lock_trouble(d: &Demo) -> usize {
    let items = d.items.lock().unwrap();
    let copy: Vec<u32> = items.iter().copied().collect();
    let names = d.names.lock().unwrap();
    copy.len() + names.len()
}

/// determinism pass: a hash container reachable from a search entry.
pub fn search_demo(keys: &[u32]) -> usize {
    let m: HashMap<u32, u32> = keys.iter().map(|&k| (k, k)).collect();
    m.len()
}

#[cfg(test)]
mod tests {
    /// Test code is exempt from every pass; this unwrap must never be
    /// counted.
    #[test]
    fn exempt() {
        assert_eq!(super::panic_site(Some(3)), 3);
        let invisible: Option<u32> = Some(1);
        invisible.unwrap();
    }
}
