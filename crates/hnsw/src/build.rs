//! HNSW index construction.

use crate::search::{greedy_descend, search_layer, Candidate};
use dataset::{PermutableStore, VectorStore};
use distance::{DistanceOracle, Metric};
use graph::relabel::{self, IdMap, RelabelStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Construction parameters (hnswlib naming).
#[derive(Clone, Copy, Debug)]
pub struct HnswParams {
    /// Max links per node on layers > 0 (`M`); layer 0 allows `2M`.
    pub m: usize,
    /// Beam width during construction (`efConstruction`).
    pub ef_construction: usize,
    /// Level-sampling seed.
    pub seed: u64,
}

impl HnswParams {
    /// Library defaults comparable to hnswlib's (`M = 16`,
    /// `efConstruction = 200`).
    pub fn new(m: usize) -> Self {
        HnswParams { m, ef_construction: 200, seed: 0x45af }
    }
}

/// Per-node adjacency for all of the node's layers.
#[derive(Clone, Debug, Default)]
pub(crate) struct NodeLinks {
    /// `links[l]` = neighbor ids on layer `l` (0 = bottom).
    pub links: Vec<Vec<u32>>,
}

/// A built HNSW index owning its vector store.
pub struct Hnsw<S> {
    pub(crate) store: S,
    pub(crate) metric: Metric,
    pub(crate) nodes: Vec<NodeLinks>,
    pub(crate) entry: u32,
    pub(crate) max_level: usize,
    pub(crate) params: HnswParams,
    pub(crate) id_map: Option<IdMap>,
}

impl<S: VectorStore + PermutableStore> Hnsw<S> {
    /// Renumber vertices for memory locality (same contract as
    /// `CagraIndex::relabel`). The order is computed from the bottom
    /// layer — where nearly all search time is spent — and applied to
    /// every layer's links, the entry point, and the vector rows;
    /// searches keep returning original ids.
    pub fn relabel(&mut self, strategy: RelabelStrategy) {
        let bottom: Vec<Vec<u32>> =
            self.nodes.iter().map(|n| n.links.first().cloned().unwrap_or_default()).collect();
        let perm = relabel::compute_lists(&bottom, strategy);
        if perm.is_identity() {
            return;
        }
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for new in 0..self.nodes.len() {
            let mut node = self.nodes[perm.old_of_new(new as u32) as usize].clone();
            for layer in &mut node.links {
                for u in layer.iter_mut() {
                    *u = perm.new_of_old(*u);
                }
            }
            nodes.push(node);
        }
        self.nodes = nodes;
        self.entry = perm.new_of_old(self.entry);
        self.store = self.store.permuted(perm.old_of_new_slice());
        self.id_map = Some(match self.id_map.take() {
            Some(prev) => IdMap { perm: prev.perm.then(&perm), strategy },
            None => IdMap { perm, strategy },
        });
    }
}

impl<S: VectorStore> Hnsw<S> {
    /// Build by sequential insertion (the canonical algorithm; batch
    /// *search* is thread-parallel, matching how the paper runs HNSW).
    pub fn build(store: S, metric: Metric, params: HnswParams) -> Self {
        assert!(params.m >= 2, "M must be at least 2");
        assert!(params.ef_construction >= params.m, "efConstruction must be >= M");
        let n = store.len();
        let mut index = Hnsw {
            store,
            metric,
            nodes: Vec::with_capacity(n),
            entry: 0,
            max_level: 0,
            params,
            id_map: None,
        };
        let mut rng = StdRng::seed_from_u64(params.seed);
        let ml = 1.0 / (params.m as f64).ln();
        for i in 0..n {
            let level = sample_level(&mut rng, ml);
            index.insert(i as u32, level);
        }
        index
    }

    /// Average out-degree on the bottom layer (used to match degrees
    /// across methods in the experiments, as the paper does).
    pub fn average_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let total: usize = self.nodes.iter().map(|n| n.links[0].len()).sum();
        total as f64 / self.nodes.len() as f64
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The owned store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Highest populated layer.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// The active relabel map, if [`Hnsw::relabel`] reordered the index.
    pub fn id_map(&self) -> Option<&IdMap> {
        self.id_map.as_ref()
    }

    fn insert(&mut self, id: u32, level: usize) {
        let mut node = NodeLinks::default();
        node.links.resize(level + 1, Vec::new());
        self.nodes.push(node);
        if id == 0 {
            self.entry = 0;
            self.max_level = level;
            return;
        }

        let oracle = DistanceOracle::new(&self.store, self.metric);
        let mut q = vec![0.0f32; self.store.dim()];
        self.store.get_into(id as usize, &mut q);

        // Phase 1: greedy descent through layers above `level`.
        let mut ep = self.entry;
        for l in (level + 1..=self.max_level).rev() {
            ep = greedy_descend(&self.nodes, &oracle, &q, ep, l);
        }

        // Phase 2: ef-search + heuristic selection per layer.
        let top = level.min(self.max_level);
        let m = self.params.m;
        let mut eps = vec![ep];
        for l in (0..=top).rev() {
            let found =
                search_layer(&self.nodes, &oracle, &q, &eps, l, self.params.ef_construction);
            let m_l = if l == 0 { m * 2 } else { m };
            let selected = select_heuristic(&oracle, &found, m_l);
            for &Candidate { id: nb, .. } in &selected {
                self.nodes[id as usize].links[l].push(nb);
                link_back(&mut self.nodes, nb, id, l, m_l, &oracle);
            }
            eps = found.iter().map(|c| c.id).collect();
            if eps.is_empty() {
                eps = vec![ep];
            }
        }

        if level > self.max_level {
            self.max_level = level;
            self.entry = id;
        }
    }

    /// `2M` on the bottom layer, `M` above — as in the paper and
    /// hnswlib. (Exercised by the degree-bound tests.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn layer_capacity(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }
}

/// Add the reverse link `nb -> id`, shrinking `nb`'s list with the
/// selection heuristic when it overflows the layer capacity.
fn link_back<T: VectorStore + ?Sized>(
    nodes: &mut [NodeLinks],
    nb: u32,
    id: u32,
    layer: usize,
    cap: usize,
    oracle: &DistanceOracle<'_, T>,
) {
    let links = &mut nodes[nb as usize].links[layer];
    links.push(id);
    if links.len() <= cap {
        return;
    }
    // Re-select among current links by distance to `nb`.
    let mut cands: Vec<Candidate> = links
        .iter()
        .map(|&u| Candidate { id: u, dist: oracle.between_rows(nb as usize, u as usize) })
        .collect();
    cands.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.id.cmp(&b.id)));
    let selected = select_heuristic(oracle, &cands, cap);
    nodes[nb as usize].links[layer] = selected.into_iter().map(|c| c.id).collect();
}

/// Exponential level sampling: `floor(-ln(U) * mL)`.
fn sample_level(rng: &mut StdRng, ml: f64) -> usize {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    ((-u.ln()) * ml) as usize
}

/// Algorithm 4 of the HNSW paper (keepPrunedConnections variant):
/// accept a candidate only if it is closer to the query point than to
/// every already-selected neighbor — this spreads edges directionally
/// — then backfill with the nearest pruned candidates.
pub(crate) fn select_heuristic<T: VectorStore + ?Sized>(
    oracle: &DistanceOracle<'_, T>,
    candidates: &[Candidate],
    m: usize,
) -> Vec<Candidate> {
    let mut selected: Vec<Candidate> = Vec::with_capacity(m);
    let mut pruned: Vec<Candidate> = Vec::new();
    for &c in candidates {
        if selected.len() == m {
            break;
        }
        let keep =
            selected.iter().all(|s| oracle.between_rows(c.id as usize, s.id as usize) > c.dist);
        if keep {
            selected.push(c);
        } else {
            pruned.push(c);
        }
    }
    for c in pruned {
        if selected.len() == m {
            break;
        }
        selected.push(c);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::synth::{Family, SynthSpec};

    fn gaussian(n: usize, dim: usize, seed: u64) -> dataset::Dataset {
        let (base, _) = SynthSpec { dim, n, queries: 0, family: Family::Gaussian, seed }.generate();
        base
    }

    #[test]
    fn builds_with_bounded_degrees() {
        let base = gaussian(500, 8, 1);
        let h = Hnsw::build(base, Metric::SquaredL2, HnswParams::new(8));
        assert_eq!(h.len(), 500);
        for (i, node) in h.nodes.iter().enumerate() {
            for (l, links) in node.links.iter().enumerate() {
                let cap = h.layer_capacity(l);
                assert!(links.len() <= cap, "node {i} layer {l}: {} > {cap}", links.len());
                assert!(links.iter().all(|&u| u as usize != i), "self link at {i}");
            }
        }
    }

    #[test]
    fn upper_layers_shrink_exponentially() {
        let base = gaussian(2000, 4, 2);
        let h = Hnsw::build(base, Metric::SquaredL2, HnswParams::new(16));
        let mut counts = vec![0usize; h.max_level() + 1];
        for node in &h.nodes {
            for c in counts.iter_mut().take(node.links.len()) {
                *c += 1;
            }
        }
        assert_eq!(counts[0], 2000);
        // Each level keeps roughly 1/M of the previous one; just check
        // strict monotone decrease.
        for w in counts.windows(2) {
            assert!(w[1] < w[0], "layer populations must shrink: {counts:?}");
        }
    }

    #[test]
    fn level_sampling_is_geometric() {
        // Levels follow floor(-ln(U) * 1/ln(M)): P(level >= l) = M^-l.
        // With M = 16 and 4000 nodes, ~250 nodes should reach level 1
        // (within generous statistical slack).
        let base = gaussian(4000, 2, 7);
        let h = Hnsw::build(base, Metric::SquaredL2, HnswParams::new(16));
        let at_least_1 = h.nodes.iter().filter(|n| n.links.len() >= 2).count();
        let expected = 4000.0 / 16.0;
        assert!(
            (at_least_1 as f64) > expected * 0.5 && (at_least_1 as f64) < expected * 2.0,
            "level>=1 population {at_least_1}, expected ~{expected}"
        );
    }

    #[test]
    fn entry_point_lives_on_max_level() {
        let base = gaussian(800, 4, 3);
        let h = Hnsw::build(base, Metric::SquaredL2, HnswParams::new(8));
        assert_eq!(h.nodes[h.entry as usize].links.len(), h.max_level() + 1);
    }

    #[test]
    fn heuristic_prefers_spread_neighbors() {
        // Points: query-adjacent cluster 1,2 nearly colinear, plus a
        // far point 3 in the other direction. With m=2 the heuristic
        // must pick one of the cluster and the far point rather than
        // both cluster members.
        let d = dataset::Dataset::from_flat(
            vec![
                0.0, 0.0, // 0: the new point
                1.0, 0.0, // 1: close
                1.2, 0.0, // 2: nearly behind 1
                -1.5, 0.0, // 3: opposite side
            ],
            2,
        );
        let oracle = DistanceOracle::new(&d, Metric::SquaredL2);
        let cands = vec![
            Candidate { id: 1, dist: 1.0 },
            Candidate { id: 2, dist: 1.44 },
            Candidate { id: 3, dist: 2.25 },
        ];
        let sel = select_heuristic(&oracle, &cands, 2);
        let ids: Vec<u32> = sel.iter().map(|c| c.id).collect();
        // 2 is closer to 1 (0.04) than to the query (1.44) -> pruned.
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Hnsw::build(gaussian(300, 4, 5), Metric::SquaredL2, HnswParams::new(8));
        let b = Hnsw::build(gaussian(300, 4, 5), Metric::SquaredL2, HnswParams::new(8));
        assert_eq!(a.max_level(), b.max_level());
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.links, y.links);
        }
    }

    #[test]
    #[should_panic(expected = "M must be at least 2")]
    fn tiny_m_rejected() {
        Hnsw::build(
            gaussian(10, 4, 1),
            Metric::SquaredL2,
            HnswParams { m: 1, ef_construction: 10, seed: 0 },
        );
    }

    #[test]
    fn single_point_index() {
        let h = Hnsw::build(gaussian(1, 4, 1), Metric::SquaredL2, HnswParams::new(4));
        assert_eq!(h.len(), 1);
        assert_eq!(h.average_degree(), 0.0);
    }
}
