//! HNSW search: greedy upper-layer descent plus `ef`-bounded beam
//! search on the bottom layer.

use crate::build::{Hnsw, NodeLinks};
use dataset::VectorStore;
use distance::DistanceOracle;
use knn::parallel::{default_threads, parallel_map};
use knn::topk::Neighbor;
use std::collections::{BinaryHeap, HashSet};

/// A (node, distance) pair ordered for use in heaps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Candidate {
    pub id: u32,
    pub dist: f32,
}

impl Eq for Candidate {}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order; NaN sorts last (largest).
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or_else(|| self.dist.is_nan().cmp(&other.dist.is_nan()))
            .then(self.id.cmp(&other.id))
    }
}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Greedy hill climb on one layer: follow the best neighbor until no
/// improvement (used above the insertion/search level).
pub(crate) fn greedy_descend<T: VectorStore + ?Sized>(
    nodes: &[NodeLinks],
    oracle: &DistanceOracle<'_, T>,
    q: &[f32],
    mut ep: u32,
    layer: usize,
) -> u32 {
    let mut best = oracle.to_row(q, ep as usize);
    loop {
        let mut improved = false;
        for &nb in &nodes[ep as usize].links[layer] {
            let d = oracle.to_row(q, nb as usize);
            if d < best {
                best = d;
                ep = nb;
                improved = true;
            }
        }
        if !improved {
            return ep;
        }
    }
}

/// `ef`-bounded best-first search on one layer (Algorithm 2). Returns
/// up to `ef` candidates sorted ascending by distance.
pub(crate) fn search_layer<T: VectorStore + ?Sized>(
    nodes: &[NodeLinks],
    oracle: &DistanceOracle<'_, T>,
    q: &[f32],
    entry_points: &[u32],
    layer: usize,
    ef: usize,
) -> Vec<Candidate> {
    let mut visited: HashSet<u32> = HashSet::with_capacity(ef * 4);
    // Min-heap of frontier candidates (Reverse via negated compare).
    let mut frontier: BinaryHeap<std::cmp::Reverse<Candidate>> = BinaryHeap::new();
    // Max-heap of the current best `ef` results.
    let mut results: BinaryHeap<Candidate> = BinaryHeap::new();

    for &ep in entry_points {
        if visited.insert(ep) {
            let c = Candidate { id: ep, dist: oracle.to_row(q, ep as usize) };
            frontier.push(std::cmp::Reverse(c));
            results.push(c);
        }
    }
    while results.len() > ef {
        results.pop();
    }

    while let Some(std::cmp::Reverse(cur)) = frontier.pop() {
        let worst = results.peek().map(|c| c.dist).unwrap_or(f32::INFINITY);
        if cur.dist > worst && results.len() >= ef {
            break;
        }
        for &nb in &nodes[cur.id as usize].links[layer] {
            if !visited.insert(nb) {
                continue;
            }
            let d = oracle.to_row(q, nb as usize);
            let worst = results.peek().map(|c| c.dist).unwrap_or(f32::INFINITY);
            if results.len() < ef || d < worst {
                let c = Candidate { id: nb, dist: d };
                frontier.push(std::cmp::Reverse(c));
                results.push(c);
                if results.len() > ef {
                    results.pop();
                }
            }
        }
    }

    let mut out: Vec<Candidate> = results.into_vec();
    out.sort();
    out
}

impl<S: VectorStore> Hnsw<S> {
    /// k-NN search with beam width `ef` (`ef >= k` recommended).
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.store.dim(), "query dimension mismatch");
        if self.nodes.is_empty() {
            return Vec::new();
        }
        let oracle = DistanceOracle::new(&self.store, self.metric);
        let mut ep = self.entry;
        for l in (1..=self.max_level).rev() {
            ep = greedy_descend(&self.nodes, &oracle, query, ep, l);
        }
        let found = search_layer(&self.nodes, &oracle, query, &[ep], 0, ef.max(k));
        found
            .into_iter()
            .take(k)
            .map(|c| {
                let id = match &self.id_map {
                    Some(m) => m.original_of_internal(c.id),
                    None => c.id,
                };
                Neighbor::new(id, c.dist)
            })
            .collect()
    }

    /// Thread-parallel batch search (the paper's OpenMP-style HNSW
    /// batching).
    pub fn search_batch<Q: VectorStore>(
        &self,
        queries: &Q,
        k: usize,
        ef: usize,
    ) -> Vec<Vec<Neighbor>> {
        assert_eq!(queries.dim(), self.store.dim(), "query dimension mismatch");
        let dim = queries.dim();
        parallel_map(queries.len(), default_threads(), |qi| {
            let mut q = vec![0.0f32; dim];
            queries.get_into(qi, &mut q);
            self.search(&q, k, ef)
        })
    }

    /// Distance computations performed for one search (cost probe for
    /// experiments).
    pub fn count_search_distances(&self, query: &[f32], k: usize, ef: usize) -> u64 {
        let oracle = DistanceOracle::new(&self.store, self.metric);
        let mut ep = self.entry;
        for l in (1..=self.max_level).rev() {
            ep = greedy_descend(&self.nodes, &oracle, query, ep, l);
        }
        let _ = search_layer(&self.nodes, &oracle, query, &[ep], 0, ef.max(k));
        oracle.computed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::HnswParams;
    use dataset::synth::{Family, SynthSpec};
    use distance::Metric;
    use knn::brute::ground_truth;

    fn setup(n: usize) -> (Hnsw<dataset::Dataset>, dataset::Dataset) {
        let spec = SynthSpec { dim: 8, n, queries: 50, family: Family::Gaussian, seed: 11 };
        let (base, queries) = spec.generate();
        (Hnsw::build(base, Metric::SquaredL2, HnswParams::new(12)), queries)
    }

    fn recall(h: &Hnsw<dataset::Dataset>, queries: &dataset::Dataset, k: usize, ef: usize) -> f64 {
        let got = h.search_batch(queries, k, ef);
        let gt = ground_truth(h.store(), Metric::SquaredL2, queries, k);
        let mut hits = 0usize;
        for (g, t) in got.iter().zip(&gt) {
            let ts: std::collections::HashSet<u32> = t.iter().copied().collect();
            hits += g.iter().filter(|n| ts.contains(&n.id)).count();
        }
        hits as f64 / (gt.len() * k) as f64
    }

    #[test]
    fn reaches_high_recall() {
        let (h, queries) = setup(2000);
        let r = recall(&h, &queries, 10, 128);
        assert!(r > 0.95, "recall@10 = {r}");
    }

    #[test]
    fn recall_grows_with_ef() {
        let (h, queries) = setup(2000);
        let lo = recall(&h, &queries, 10, 10);
        let hi = recall(&h, &queries, 10, 200);
        assert!(hi >= lo, "ef=200 ({hi}) must be >= ef=10 ({lo})");
        assert!(hi > 0.9);
    }

    #[test]
    fn results_sorted_unique_and_exactish_for_indexed_point() {
        let (h, _) = setup(500);
        let q = h.store().row(42).to_vec();
        let got = h.search(&q, 5, 64);
        assert_eq!(got[0].id, 42);
        assert_eq!(got[0].dist, 0.0);
        assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
        let mut ids: Vec<u32> = got.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), got.len());
    }

    #[test]
    fn relabel_preserves_results_in_original_ids() {
        let (mut h, queries) = setup(1200);
        let baseline = h.search_batch(&queries, 10, 128);
        h.relabel(graph::relabel::RelabelStrategy::Degree);
        assert!(h.id_map().is_some(), "degree order on a real graph is not identity");
        // Entry point and links were renumbered together, so the
        // deterministic traversal visits the same nodes: identical
        // results, reported in original ids.
        assert_eq!(h.search_batch(&queries, 10, 128), baseline);
    }

    #[test]
    fn k_larger_than_ef_is_padded_by_ef_max() {
        let (h, queries) = setup(300);
        let got = h.search(queries.row(0), 20, 5);
        assert!(got.len() <= 20 && got.len() >= 5);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let base = dataset::Dataset::empty(4);
        let h = Hnsw::build(base, Metric::SquaredL2, HnswParams::new(4));
        assert!(h.search(&[0.0; 4], 3, 10).is_empty());
    }

    #[test]
    fn search_distance_counter_is_positive_and_bounded() {
        let (h, queries) = setup(400);
        let c = h.count_search_distances(queries.row(0), 10, 64);
        assert!(c > 0);
        assert!(c <= 400, "cannot exceed dataset size by much: {c}");
    }
}
