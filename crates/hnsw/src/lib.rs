//! HNSW baseline — the paper's CPU state-of-the-art comparator.
//!
//! A from-scratch implementation of Hierarchical Navigable Small World
//! graphs (Malkov & Yashunin, 2018): exponentially sampled layer
//! levels, greedy descent through the upper layers, `ef`-bounded beam
//! search on the bottom layer, and Algorithm-4 heuristic neighbor
//! selection during insertion. CAGRA's Figs. 11 and 13–16 compare
//! against exactly these mechanisms.

pub mod build;
pub mod search;

pub use build::{Hnsw, HnswParams};
