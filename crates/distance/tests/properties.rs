//! Metric axioms over arbitrary vectors.

use distance::{cosine_distance, dot, squared_l2, Metric};
use proptest::prelude::*;

fn vecs(dim: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    let elem = -1000.0f32..1000.0f32;
    (proptest::collection::vec(elem.clone(), dim), proptest::collection::vec(elem, dim))
}

proptest! {
    #[test]
    fn l2_is_nonnegative_symmetric_and_zero_on_identity((a, b) in vecs(13)) {
        let ab = squared_l2(&a, &b);
        prop_assert!(ab >= 0.0);
        prop_assert_eq!(ab, squared_l2(&b, &a));
        prop_assert_eq!(squared_l2(&a, &a), 0.0);
    }

    #[test]
    fn l2_matches_naive((a, b) in vecs(31)) {
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let got = squared_l2(&a, &b);
        // Different summation orders: allow relative slack.
        let tol = 1e-4f32.max(naive.abs() * 1e-4);
        prop_assert!((got - naive).abs() <= tol, "{got} vs {naive}");
    }

    #[test]
    fn dot_is_bilinear_in_scaling((a, b) in vecs(16), s in -8.0f32..8.0) {
        let scaled: Vec<f32> = a.iter().map(|x| x * s).collect();
        let lhs = dot(&scaled, &b);
        let rhs = s * dot(&a, &b);
        // Error scales with the magnitude of the summed terms (which
        // may cancel), not with the result.
        let magnitude: f32 = a.iter().zip(&b).map(|(x, y)| (x * s * y).abs()).sum();
        let tol = 1e-2f32.max(magnitude * 1e-5);
        prop_assert!((lhs - rhs).abs() <= tol, "{lhs} vs {rhs} (tol {tol})");
    }

    #[test]
    fn cosine_is_bounded_and_scale_invariant((a, b) in vecs(8), s in 0.1f32..50.0) {
        let c = cosine_distance(&a, &b);
        prop_assert!((-1e-3..=2.0 + 1e-3).contains(&c), "cosine distance {c} out of [0,2]");
        let scaled: Vec<f32> = a.iter().map(|x| x * s).collect();
        let c2 = cosine_distance(&scaled, &b);
        prop_assert!((c - c2).abs() < 2e-2, "scale invariance violated: {c} vs {c2}");
    }

    #[test]
    fn metric_dispatch_agrees_with_free_functions((a, b) in vecs(12)) {
        prop_assert_eq!(Metric::SquaredL2.distance(&a, &b), squared_l2(&a, &b));
        prop_assert_eq!(Metric::InnerProduct.distance(&a, &b), -dot(&a, &b));
        prop_assert_eq!(Metric::Cosine.distance(&a, &b), cosine_distance(&a, &b));
    }

    #[test]
    fn l2_triangle_inequality_after_sqrt((a, b) in vecs(6), c in proptest::collection::vec(-1000.0f32..1000.0, 6)) {
        let ab = squared_l2(&a, &b).sqrt();
        let bc = squared_l2(&b, &c).sqrt();
        let ac = squared_l2(&a, &c).sqrt();
        prop_assert!(ac <= ab + bc + 1e-2, "triangle violated: {ac} > {ab} + {bc}");
    }
}
