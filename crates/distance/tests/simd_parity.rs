//! SIMD-vs-scalar bit-exactness: the contract that lets recall numbers
//! and search results be independent of the host CPU.
//!
//! Every backend entry must match the canonical scalar kernel *bit for
//! bit* across all remainder-lane shapes (dims 1..=67 cover every
//! `len % 8` plus multi-chunk cases), all three metrics, and all three
//! element types; and the batched `to_rows` gang kernel must equal
//! repeated `to_row` calls exactly.

use dataset::{f16, Dataset, DatasetF16, DatasetI8, VectorStore};
use distance::kernels::{self, Kernels};
use distance::{DistanceOracle, Metric};
use proptest::prelude::*;

/// Deterministic pseudo-random f32s in roughly [-8, 8) with plenty of
/// fractional bits, so summation-order differences would actually show
/// up in the low mantissa bits if a backend strayed from the contract.
fn lcg_vec(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 16.0
        })
        .collect()
}

fn assert_pair_bits(tag: &str, dim: usize, a: f32, b: f32) {
    assert_eq!(a.to_bits(), b.to_bits(), "{tag} diverged at dim {dim}: {a} vs {b}");
}

/// Exhaustive sweep: every kernel table entry, every dim 1..=67, every
/// element type, scalar vs detected backend, bit for bit.
#[test]
fn all_kernels_match_scalar_bitwise_for_all_remainder_lanes() {
    let s: &Kernels = kernels::scalar();
    let v: &Kernels = kernels::detected();
    for dim in 1..=67usize {
        let q = lcg_vec(dim as u64, dim);
        let r = lcg_vec(dim as u64 + 1000, dim);
        let r16 = f16::narrow_slice(&r);
        let quant = Dataset::from_flat(r.clone(), dim).to_i8();
        let (codes, scales) = quant.flat_i8().unwrap();

        assert_pair_bits("l2 f32", dim, (s.l2)(&q, &r), (v.l2)(&q, &r));
        assert_pair_bits("dot f32", dim, (s.dot)(&q, &r), (v.dot)(&q, &r));
        let (sab, sbb) = (s.dot_norm)(&q, &r);
        let (vab, vbb) = (v.dot_norm)(&q, &r);
        assert_pair_bits("dot_norm.ab f32", dim, sab, vab);
        assert_pair_bits("dot_norm.bb f32", dim, sbb, vbb);

        assert_pair_bits("l2 f16", dim, (s.l2_f16)(&q, &r16), (v.l2_f16)(&q, &r16));
        assert_pair_bits("dot f16", dim, (s.dot_f16)(&q, &r16), (v.dot_f16)(&q, &r16));
        let (sab, sbb) = (s.dot_norm_f16)(&q, &r16);
        let (vab, vbb) = (v.dot_norm_f16)(&q, &r16);
        assert_pair_bits("dot_norm.ab f16", dim, sab, vab);
        assert_pair_bits("dot_norm.bb f16", dim, sbb, vbb);

        assert_pair_bits("l2 i8", dim, (s.l2_i8)(&q, codes, scales), (v.l2_i8)(&q, codes, scales));
        assert_pair_bits(
            "dot i8",
            dim,
            (s.dot_i8)(&q, codes, scales),
            (v.dot_i8)(&q, codes, scales),
        );
        let (sab, sbb) = (s.dot_norm_i8)(&q, codes, scales);
        let (vab, vbb) = (v.dot_norm_i8)(&q, codes, scales);
        assert_pair_bits("dot_norm.ab i8", dim, sab, vab);
        assert_pair_bits("dot_norm.bb i8", dim, sbb, vbb);
    }
}

/// The typed (in-loop widening) kernels must equal "widen the whole
/// row first, then run the f32 kernel" — this is what makes dropping
/// the `get_into` copies a pure optimization.
#[test]
fn typed_kernels_equal_widen_then_f32() {
    for table in [kernels::scalar(), kernels::detected()] {
        for dim in 1..=67usize {
            let q = lcg_vec(dim as u64 + 7, dim);
            let r = lcg_vec(dim as u64 + 2000, dim);
            let r16 = f16::narrow_slice(&r);
            let mut widened = vec![0.0f32; dim];
            f16::widen_into(&r16, &mut widened);
            assert_pair_bits(table.name, dim, (table.l2_f16)(&q, &r16), (table.l2)(&q, &widened));

            let quant = Dataset::from_flat(r.clone(), dim).to_i8();
            let (codes, scales) = quant.flat_i8().unwrap();
            let mut dq = vec![0.0f32; dim];
            quant.get_into(0, &mut dq);
            assert_pair_bits(
                table.name,
                dim,
                (table.l2_i8)(&q, codes, scales),
                (table.l2)(&q, &dq),
            );
            assert_pair_bits(
                table.name,
                dim,
                (table.dot_i8)(&q, codes, scales),
                (table.dot)(&q, &dq),
            );
        }
    }
}

fn store_oracles<'a, S: VectorStore + ?Sized>(
    store: &'a S,
    metric: Metric,
) -> (DistanceOracle<'a, S>, DistanceOracle<'a, S>) {
    (
        DistanceOracle::with_kernels(store, metric, kernels::scalar()),
        DistanceOracle::with_kernels(store, metric, kernels::detected()),
    )
}

fn check_oracle_parity<S: VectorStore + ?Sized>(store: &S, n: usize, dim: usize) {
    let query = lcg_vec(99, dim);
    let ids: Vec<u32> = (0..n as u32).rev().chain(0..n as u32 / 2).collect();
    for metric in [Metric::SquaredL2, Metric::InnerProduct, Metric::Cosine] {
        let (scalar_o, simd_o) = store_oracles(store, metric);
        let pq_s = scalar_o.prepare(&query);
        let pq_v = simd_o.prepare(&query);
        assert_eq!(pq_s.norm().to_bits(), pq_v.norm().to_bits());

        let mut out_s = vec![0.0f32; ids.len()];
        let mut out_v = vec![0.0f32; ids.len()];
        scalar_o.to_rows(&pq_s, &ids, &mut out_s);
        simd_o.to_rows(&pq_v, &ids, &mut out_v);
        for (j, (a, b)) in out_s.iter().zip(&out_v).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{metric:?} to_rows[{j}]");
            // Batched == one-at-a-time, on both backends.
            let one = simd_o.to_row(&query, ids[j] as usize);
            assert_eq!(b.to_bits(), one.to_bits(), "{metric:?} gang vs to_row[{j}]");
        }

        for i in 0..n.min(6) {
            for j in 0..n.min(6) {
                assert_eq!(
                    scalar_o.between_rows(i, j).to_bits(),
                    simd_o.between_rows(i, j).to_bits(),
                    "{metric:?} between_rows({i},{j})"
                );
            }
        }
    }
}

#[test]
fn oracle_parity_across_stores_and_metrics() {
    let (n, dim) = (40, 33);
    let base = Dataset::from_flat(lcg_vec(5, n * dim), dim);
    check_oracle_parity(&base, n, dim);
    let h: DatasetF16 = base.to_f16();
    check_oracle_parity(&h, n, dim);
    let q: DatasetI8 = base.to_i8();
    check_oracle_parity(&q, n, dim);
}

proptest! {
    /// Random dims and data: f32 kernel entries agree bitwise between
    /// scalar and the detected backend.
    #[test]
    fn f32_kernels_bitwise_equal(dim in 1usize..=67, seed in 0u64..1_000_000) {
        let q = lcg_vec(seed, dim);
        let r = lcg_vec(seed ^ 0xABCD, dim);
        let s = kernels::scalar();
        let v = kernels::detected();
        prop_assert_eq!((s.l2)(&q, &r).to_bits(), (v.l2)(&q, &r).to_bits());
        prop_assert_eq!((s.dot)(&q, &r).to_bits(), (v.dot)(&q, &r).to_bits());
        let (sab, sbb) = (s.dot_norm)(&q, &r);
        let (vab, vbb) = (v.dot_norm)(&q, &r);
        prop_assert_eq!(sab.to_bits(), vab.to_bits());
        prop_assert_eq!(sbb.to_bits(), vbb.to_bits());
    }

    /// `dot_norm` is a fusion, not a reassociation: its two halves
    /// must equal independent `dot` calls bit for bit.
    #[test]
    fn dot_norm_fusion_is_exact(dim in 1usize..=67, seed in 0u64..1_000_000) {
        let q = lcg_vec(seed, dim);
        let r = lcg_vec(seed ^ 0x1234, dim);
        for table in [kernels::scalar(), kernels::detected()] {
            let (ab, bb) = (table.dot_norm)(&q, &r);
            prop_assert_eq!(ab.to_bits(), (table.dot)(&q, &r).to_bits());
            prop_assert_eq!(bb.to_bits(), (table.dot)(&r, &r).to_bits());
        }
    }

    /// `to_rows` equals repeated `to_row` on random id sequences
    /// (with repeats), for every metric.
    #[test]
    fn to_rows_equals_repeated_to_row(seed in 0u64..1_000_000, picks in proptest::collection::vec(0usize..24, 1..40)) {
        let dim = 19;
        let base = Dataset::from_flat(lcg_vec(seed, 24 * dim), dim);
        let query = lcg_vec(seed ^ 0x77, dim);
        let ids: Vec<u32> = picks.iter().map(|&p| p as u32).collect();
        for metric in [Metric::SquaredL2, Metric::InnerProduct, Metric::Cosine] {
            let o = DistanceOracle::new(&base, metric);
            let pq = o.prepare(&query);
            let mut out = vec![0.0f32; ids.len()];
            o.to_rows(&pq, &ids, &mut out);
            for (&id, &got) in ids.iter().zip(&out) {
                prop_assert_eq!(got.to_bits(), o.to_row(&query, id as usize).to_bits());
            }
        }
    }
}
