//! Asymmetric distance computation (ADC) over product-quantized rows.
//!
//! A PQ-encoded row is `m` one-byte centroid indices. Instead of
//! decoding and running a full-dimension kernel, ADC builds one lookup
//! table per query — `m × 256` f32 entries, entry `(s, c)` holding the
//! metric contribution of subspace `s` under centroid `c` — and scores
//! a row with `m` table lookups. The table is built once per
//! [`crate::PreparedQuery`] (inside [`crate::DistanceOracle::prepare`]
//! when the store is PQ-backed), so the per-row cost in the search hot
//! loop drops from `O(dim)` multiplies to `O(m)` gathers.
//!
//! **Bit-exactness.** ADC follows the same contract as the dense
//! kernels (`kernels::scalar` module docs), transposed to subspaces:
//!
//! 1. Table entries are computed with the oracle's kernel table on
//!    per-subspace slices — bit-identical across backends by the dense
//!    contract.
//! 2. Row scores accumulate the `m` looked-up entries in 8-lane order
//!    (lane `l` sums subspaces `≡ l (mod 8)` in chunk order), reduce
//!    with the shared [`hsum8`] tree, and finish the tail
//!    sequentially. The AVX2 gather path mirrors this lane assignment
//!    exactly, so `CAGRA_FORCE_SCALAR=0/1` produce the same bits.
//! 3. Cosine uses a paired table (`q·c` and `c·c` halves) reduced as
//!    two parallel sums, then the same `cosine_from_parts` epilogue as
//!    the dense path.
//!
//! For squared L2 the ADC score equals the exact distance to the
//! *reconstructed* row (subspaces partition the dimensions), so
//! two-phase search degrades only by quantization error, never by the
//! scoring shortcut itself.

use crate::kernels::scalar::hsum8;
use crate::kernels::Kernels;
use crate::{cosine_from_parts, Metric};
use dataset::PqView;

/// Per-query ADC lookup table over one codebook.
///
/// Layout: squared L2 and inner product use a single `m * 256` table;
/// cosine stores two halves (`q·c` at `[0, m*256)`, `c·c` at
/// `[m*256, 2*m*256)`) sharing one gather index stream.
pub struct AdcTable {
    data: Vec<f32>,
    m: usize,
    metric: Metric,
    /// Score rows with the AVX2 gather kernel (set when the building
    /// oracle runs the `avx2` backend; scalar otherwise — NEON has no
    /// gather, so it shares the canonical scalar path).
    use_avx2: bool,
}

impl AdcTable {
    /// Build the table for `query` against a PQ view, computing the
    /// per-subspace entries with `kern` (the building oracle's
    /// backend). Rotated codebooks rotate the query here, once.
    pub fn build(
        view: &PqView<'_>,
        metric: Metric,
        query: &[f32],
        kern: &'static Kernels,
    ) -> AdcTable {
        let cb = view.codebook;
        let (m, ksub) = (cb.m(), cb.ksub());
        assert_eq!(query.len(), cb.dim(), "query/codebook dim mismatch");
        let rotated;
        let q: &[f32] = match cb.rotation() {
            Some(_) => {
                let mut r = vec![0.0f32; cb.dim()];
                cb.rotate_into(query, &mut r);
                rotated = r;
                &rotated
            }
            None => query,
        };
        let paired = metric == Metric::Cosine;
        let mut data = vec![0.0f32; m * 256 * if paired { 2 } else { 1 }];
        for s in 0..m {
            let (lo, hi) = cb.subspace(s);
            let qs = &q[lo..hi];
            let dsub = hi - lo;
            let cents = cb.centroids(s);
            for c in 0..ksub {
                let cent = &cents[c * dsub..(c + 1) * dsub];
                match metric {
                    Metric::SquaredL2 => data[s * 256 + c] = (kern.l2)(qs, cent),
                    Metric::InnerProduct => data[s * 256 + c] = (kern.dot)(qs, cent),
                    Metric::Cosine => {
                        let (ab, bb) = (kern.dot_norm)(qs, cent);
                        data[s * 256 + c] = ab;
                        data[m * 256 + s * 256 + c] = bb;
                    }
                }
            }
            // Entries past ksub stay 0.0; valid codes never reach them
            // (the encoder emits codes < ksub).
        }
        let use_avx2 = cfg!(target_arch = "x86_64") && kern.name == "avx2";
        AdcTable { data, m, metric, use_avx2 }
    }

    /// Bytes per encoded vector this table scores.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Score one code row (`codes.len() == m`). `qnorm` is the hoisted
    /// query norm, used only under cosine.
    ///
    /// # Panics
    /// Panics if `codes.len() != m`.
    #[inline]
    pub fn score(&self, codes: &[u8], qnorm: f32) -> f32 {
        assert_eq!(codes.len(), self.m, "code row length");
        match self.metric {
            Metric::SquaredL2 => self.sum(&self.data, codes),
            Metric::InnerProduct => -self.sum(&self.data, codes),
            Metric::Cosine => {
                let (ab, bb) = self.sum2(codes);
                cosine_from_parts(qnorm, (ab, bb))
            }
        }
    }

    #[inline]
    fn sum(&self, lut: &[f32], codes: &[u8]) -> f32 {
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2 {
            debug_assert!(lut.len() >= codes.len() * 256);
            // SAFETY: `use_avx2` is set only when the building kernel
            // table is the avx2 backend, which `detect()` installs
            // only after the runtime feature probe succeeded. The
            // constructor sizes `lut` to `m * 256` (per half) and
            // `score` asserts `codes.len() == m`, so every gather
            // index `s * 256 + code` with `code < 256` is in bounds.
            return unsafe { x86::sum_avx2(lut, codes) };
        }
        sum_scalar(lut, codes)
    }

    #[inline]
    fn sum2(&self, codes: &[u8]) -> (f32, f32) {
        let (ab, bb) = self.data.split_at(self.m * 256);
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2 {
            // SAFETY: same argument as `sum` — feature probed at
            // detect time, both halves sized `m * 256`, and all
            // gather indices bounded by `m * 256` by construction.
            return unsafe { x86::sum2_avx2(ab, bb, codes) };
        }
        sum2_scalar(ab, bb, codes)
    }
}

/// Canonical scalar reduction: 8-lane accumulation over subspaces in
/// chunk order, [`hsum8`] tree, sequential tail — the subspace
/// transposition of `kernels::scalar`'s element-wise contract.
fn sum_scalar(lut: &[f32], codes: &[u8]) -> f32 {
    let m = codes.len();
    let chunks = m / 8;
    let mut acc = [0.0f32; 8];
    for c in 0..chunks {
        for (l, a) in acc.iter_mut().enumerate() {
            let s = c * 8 + l;
            *a += lut[s * 256 + codes[s] as usize];
        }
    }
    let mut sum = hsum8(&acc);
    for s in chunks * 8..m {
        sum += lut[s * 256 + codes[s] as usize];
    }
    sum
}

/// Paired variant: two sums (cosine `q·c` / `c·c` halves) sharing one
/// pass over the codes.
fn sum2_scalar(lut_ab: &[f32], lut_bb: &[f32], codes: &[u8]) -> (f32, f32) {
    let m = codes.len();
    let chunks = m / 8;
    let mut ab = [0.0f32; 8];
    let mut bb = [0.0f32; 8];
    for c in 0..chunks {
        for l in 0..8 {
            let s = c * 8 + l;
            let at = s * 256 + codes[s] as usize;
            ab[l] += lut_ab[at];
            bb[l] += lut_bb[at];
        }
    }
    let mut sab = hsum8(&ab);
    let mut sbb = hsum8(&bb);
    for (s, &code) in codes.iter().enumerate().skip(chunks * 8) {
        let at = s * 256 + code as usize;
        sab += lut_ab[at];
        sbb += lut_bb[at];
    }
    (sab, sbb)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX2 gather kernels for the ADC row score. Lane `l` of the
    //! accumulator sees exactly the subspaces lane `l` of the scalar
    //! accumulator sees, and the reduction reuses [`hsum8`], so the
    //! output bits match `sum_scalar`/`sum2_scalar` exactly.

    use super::hsum8;
    use core::arch::x86_64::*;

    /// Widened gather indices for the 8 codes of chunk `c`: subspace
    /// `c*8 + l` maps to `c*2048 + l*256 + code`.
    ///
    /// # Safety
    /// Requires AVX2, and `codes` must have at least `(c + 1) * 8`
    /// readable bytes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn chunk_indices(codes: &[u8], c: usize, offs: __m256i) -> __m256i {
        // SAFETY: caller guarantees 8 bytes at `c * 8` are in bounds;
        // an unaligned 8-byte read of initialized `u8` data is valid.
        let raw = unsafe { (codes.as_ptr().add(c * 8) as *const i64).read_unaligned() };
        _mm256_add_epi32(
            _mm256_cvtepu8_epi32(_mm_cvtsi64_si128(raw)),
            _mm256_add_epi32(offs, _mm256_set1_epi32((c * 2048) as i32)),
        )
    }

    /// # Safety
    /// Requires AVX2 and `lut.len() >= codes.len() * 256` (every
    /// gather index `s * 256 + codes[s]` must be in bounds).
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_avx2(lut: &[f32], codes: &[u8]) -> f32 {
        let m = codes.len();
        let chunks = m / 8;
        let offs = _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            // SAFETY: `c < chunks` keeps the 8-byte code read in
            // bounds; the caller's `lut` length contract bounds every
            // gathered index (codes are u8, so `< m * 256`).
            unsafe {
                let idx = chunk_indices(codes, c, offs);
                acc = _mm256_add_ps(acc, _mm256_i32gather_ps::<4>(lut.as_ptr(), idx));
            }
        }
        let mut lanes = [0.0f32; 8];
        // SAFETY: `lanes` is 8 f32s, exactly one __m256 store.
        unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), acc) };
        let mut sum = hsum8(&lanes);
        for s in chunks * 8..m {
            sum += lut[s * 256 + codes[s] as usize];
        }
        sum
    }

    /// # Safety
    /// Requires AVX2; both halves must satisfy
    /// `len >= codes.len() * 256`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum2_avx2(lut_ab: &[f32], lut_bb: &[f32], codes: &[u8]) -> (f32, f32) {
        let m = codes.len();
        let chunks = m / 8;
        let offs = _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
        let mut acc_ab = _mm256_setzero_ps();
        let mut acc_bb = _mm256_setzero_ps();
        for c in 0..chunks {
            // SAFETY: as in `sum_avx2`, for both table halves (one
            // shared index vector, two gathers).
            unsafe {
                let idx = chunk_indices(codes, c, offs);
                acc_ab = _mm256_add_ps(acc_ab, _mm256_i32gather_ps::<4>(lut_ab.as_ptr(), idx));
                acc_bb = _mm256_add_ps(acc_bb, _mm256_i32gather_ps::<4>(lut_bb.as_ptr(), idx));
            }
        }
        let mut lanes_ab = [0.0f32; 8];
        let mut lanes_bb = [0.0f32; 8];
        // SAFETY: each array is 8 f32s, exactly one __m256 store.
        unsafe {
            _mm256_storeu_ps(lanes_ab.as_mut_ptr(), acc_ab);
            _mm256_storeu_ps(lanes_bb.as_mut_ptr(), acc_bb);
        }
        let mut sab = hsum8(&lanes_ab);
        let mut sbb = hsum8(&lanes_bb);
        for (s, &code) in codes.iter().enumerate().skip(chunks * 8) {
            let at = s * 256 + code as usize;
            sab += lut_ab[at];
            sbb += lut_bb[at];
        }
        (sab, sbb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use dataset::synth::{Family, SynthSpec};
    use dataset::{pq, Dataset, PqConfig, VectorStore};

    fn synth(n: usize, dim: usize, seed: u64) -> Dataset {
        let spec = SynthSpec { dim, n, queries: 0, family: Family::Gaussian, seed };
        spec.generate().0
    }

    /// Independent canonical reduction (the scalar contract restated),
    /// used as the naive reference the LUT kernels must match bitwise.
    fn canonical_sum(vals: &[f32]) -> f32 {
        let chunks = vals.len() / 8;
        let mut acc = [0.0f32; 8];
        for c in 0..chunks {
            for (l, a) in acc.iter_mut().enumerate() {
                *a += vals[c * 8 + l];
            }
        }
        let mut sum = hsum8(&acc);
        for &v in &vals[chunks * 8..] {
            sum += v;
        }
        sum
    }

    /// Naive ADC: per-subspace metric parts computed directly from the
    /// row's centroids (no table, no gather), reduced canonically.
    fn naive_adc(
        store: &dataset::PqStore,
        row: usize,
        metric: Metric,
        q: &[f32],
        kern: &'static Kernels,
    ) -> f32 {
        let cb = store.codebook();
        let codes = store.row_codes(row);
        let m = cb.m();
        let mut parts = vec![0.0f32; m];
        let mut parts2 = vec![0.0f32; m];
        for s in 0..m {
            let (lo, hi) = cb.subspace(s);
            let dsub = hi - lo;
            let c = codes[s] as usize;
            let cent = &cb.centroids(s)[c * dsub..(c + 1) * dsub];
            let qs = &q[lo..hi];
            match metric {
                Metric::SquaredL2 => parts[s] = (kern.l2)(qs, cent),
                Metric::InnerProduct => parts[s] = (kern.dot)(qs, cent),
                Metric::Cosine => {
                    let (ab, bb) = (kern.dot_norm)(qs, cent);
                    parts[s] = ab;
                    parts2[s] = bb;
                }
            }
        }
        match metric {
            Metric::SquaredL2 => canonical_sum(&parts),
            Metric::InnerProduct => -canonical_sum(&parts),
            Metric::Cosine => {
                let qnorm = (kern.dot)(q, q).sqrt();
                cosine_from_parts(qnorm, (canonical_sum(&parts), canonical_sum(&parts2)))
            }
        }
    }

    #[test]
    fn lut_matches_naive_bitwise_across_dims_and_metrics() {
        // Satellite coverage: dims 1..=67 x 3 metrics, m varying with
        // dim so both the 8-lane body and the tail are exercised, on
        // the scalar AND the detected backend.
        let metrics = [Metric::SquaredL2, Metric::InnerProduct, Metric::Cosine];
        for dim in 1usize..=67 {
            let m = ((dim - 1) % 11 + 1).min(dim);
            let d = synth(24, dim, dim as u64);
            let store = pq::build(&d, &PqConfig { sample: 24, iters: 2, ..PqConfig::new(m) });
            let view = store.flat_pq().unwrap();
            let q = d.row(0).to_vec();
            for metric in metrics {
                for kern in [kernels::scalar(), kernels::detected()] {
                    let table = AdcTable::build(&view, metric, &q, kern);
                    let qnorm = (kern.dot)(&q, &q).sqrt();
                    for row in 0..store.len() {
                        let lut = table.score(store.row_codes(row), qnorm);
                        let naive = naive_adc(&store, row, metric, &q, kern);
                        assert_eq!(
                            lut.to_bits(),
                            naive.to_bits(),
                            "dim {dim} m {m} {metric:?} {} row {row}: {lut} vs {naive}",
                            kern.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scalar_and_detected_backends_agree_bitwise() {
        let d = synth(40, 33, 9);
        let store = pq::build(&d, &PqConfig { sample: 40, iters: 3, ..PqConfig::new(9) });
        let view = store.flat_pq().unwrap();
        let q = d.row(1).to_vec();
        for metric in [Metric::SquaredL2, Metric::InnerProduct, Metric::Cosine] {
            let ts = AdcTable::build(&view, metric, &q, kernels::scalar());
            let td = AdcTable::build(&view, metric, &q, kernels::detected());
            let qnorm = crate::dot(&q, &q).sqrt();
            for row in 0..store.len() {
                let a = ts.score(store.row_codes(row), qnorm);
                let b = td.score(store.row_codes(row), qnorm);
                assert_eq!(a.to_bits(), b.to_bits(), "{metric:?} row {row}");
            }
        }
    }

    #[test]
    fn l2_adc_equals_distance_to_reconstruction() {
        // Subspaces partition the dims, so the ADC L2 score *is* the
        // L2 distance to the decoded row (up to f32 associativity).
        let d = synth(30, 16, 4);
        let store = pq::build(&d, &PqConfig { sample: 30, iters: 4, ..PqConfig::new(4) });
        let view = store.flat_pq().unwrap();
        let q = d.row(2).to_vec();
        let table = AdcTable::build(&view, Metric::SquaredL2, &q, kernels::scalar());
        let mut rec = vec![0.0f32; 16];
        for row in 0..store.len() {
            store.get_into(row, &mut rec);
            let adc = table.score(store.row_codes(row), 0.0);
            let exact = crate::squared_l2(&q, &rec);
            assert!((adc - exact).abs() <= 1e-4 * exact.max(1.0), "row {row}: {adc} vs {exact}");
        }
    }

    #[test]
    fn rotated_codebook_scores_match_rotated_space_distance() {
        let d = synth(25, 12, 6);
        let cfg = PqConfig { sample: 25, iters: 3, rotate: true, ..PqConfig::new(4) };
        let store = pq::build(&d, &cfg);
        let view = store.flat_pq().unwrap();
        let q = d.row(3).to_vec();
        let table = AdcTable::build(&view, Metric::SquaredL2, &q, kernels::scalar());
        // Distance in rotated space to the rotated-space reconstruction
        // == distance in original space to the decoded row (R is
        // orthonormal); check against the decode path.
        let mut rec = vec![0.0f32; 12];
        for row in 0..store.len() {
            store.get_into(row, &mut rec);
            let adc = table.score(store.row_codes(row), 0.0);
            let exact = crate::squared_l2(&q, &rec);
            assert!((adc - exact).abs() <= 1e-3 * exact.max(1.0), "row {row}: {adc} vs {exact}");
        }
    }

    #[test]
    #[should_panic(expected = "code row length")]
    fn wrong_code_length_panics() {
        let d = synth(10, 8, 1);
        let store = pq::build(&d, &PqConfig { sample: 10, ..PqConfig::new(4) });
        let view = store.flat_pq().unwrap();
        let table = AdcTable::build(&view, Metric::SquaredL2, d.row(0), kernels::scalar());
        table.score(&[0u8; 3], 0.0);
    }
}
