//! Distance kernels for the CAGRA reproduction.
//!
//! Every index in the workspace measures similarity through
//! [`Metric`], covering the paper's distance options: squared L2 (the
//! default for SIFT/GIST/DEEP), inner product, and cosine (angular
//! datasets such as GloVe). Kernels are written as 4-way unrolled
//! loops over slices so LLVM can vectorize them — the CPU analogue of
//! the paper's team-based 128-bit loads.
//!
//! A [`DistanceOracle`] wraps a [`VectorStore`] and hands out
//! query-to-row distances, widening FP16 rows through a scratch buffer
//! exactly once per call.

use dataset::VectorStore;
use serde::{Deserialize, Serialize};

/// Distance (or similarity converted to a distance) between vectors.
///
/// All variants are *smaller-is-closer* so search code can be metric
/// agnostic: inner product is negated, cosine is `1 - cos`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Squared Euclidean distance. Monotone with L2, so top-k results
    /// are identical while avoiding the square root (as CUDA ANN
    /// kernels do).
    SquaredL2,
    /// Negated inner product.
    InnerProduct,
    /// Cosine distance `1 - cos(a, b)`.
    Cosine,
}

impl Metric {
    /// Distance between two raw slices.
    ///
    /// # Panics
    /// Panics (debug) if lengths differ.
    #[inline]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::SquaredL2 => squared_l2(a, b),
            Metric::InnerProduct => -dot(a, b),
            Metric::Cosine => cosine_distance(a, b),
        }
    }
}

/// Squared L2 distance, 4-way unrolled.
#[inline]
pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            let d = a[base + lane] - b[base + lane];
            acc[lane] += d * d;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Dot product, 4-way unrolled.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            acc[lane] += a[base + lane] * b[base + lane];
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Cosine distance `1 - cos`; zero vectors are treated as maximally far.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let ab = dot(a, b);
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - ab / (na * nb)
}

/// Query-to-dataset distance evaluator over any [`VectorStore`].
///
/// Owns a scratch row buffer so FP16 stores pay one widening copy per
/// distance and zero heap allocations. Construct one per worker thread
/// (it is `!Sync` by design — the scratch is interior state).
pub struct DistanceOracle<'a, S: VectorStore + ?Sized> {
    store: &'a S,
    metric: Metric,
    scratch: std::cell::RefCell<Vec<f32>>,
    /// Number of distance computations issued (the paper's pruning
    /// analyses count these; `gpu-sim` also uses it for cost).
    count: std::cell::Cell<u64>,
}

impl<'a, S: VectorStore + ?Sized> DistanceOracle<'a, S> {
    /// Create an oracle over `store` with the given metric.
    pub fn new(store: &'a S, metric: Metric) -> Self {
        DistanceOracle {
            store,
            metric,
            scratch: std::cell::RefCell::new(vec![0.0; store.dim()]),
            count: std::cell::Cell::new(0),
        }
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The underlying store.
    pub fn store(&self) -> &'a S {
        self.store
    }

    /// Distance between `query` and dataset row `i`.
    #[inline]
    pub fn to_row(&self, query: &[f32], i: usize) -> f32 {
        self.count.set(self.count.get() + 1);
        if let Some(row) = self.store.row_f32(i) {
            return self.metric.distance(query, row);
        }
        let mut scratch = self.scratch.borrow_mut();
        self.store.get_into(i, &mut scratch);
        self.metric.distance(query, &scratch)
    }

    /// Distance between dataset rows `i` and `j`.
    #[inline]
    pub fn between_rows(&self, i: usize, j: usize) -> f32 {
        if let (Some(a), Some(b)) = (self.store.row_f32(i), self.store.row_f32(j)) {
            self.count.set(self.count.get() + 1);
            return self.metric.distance(a, b);
        }
        let mut scratch = self.scratch.borrow_mut();
        self.store.get_into(i, &mut scratch);
        let a = scratch.clone();
        self.store.get_into(j, &mut scratch);
        self.count.set(self.count.get() + 1);
        self.metric.distance(&a, &scratch)
    }

    /// How many distances have been computed through this oracle.
    pub fn computed(&self) -> u64 {
        self.count.get()
    }

    /// Reset the distance counter.
    pub fn reset_count(&self) {
        self.count.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::Dataset;

    #[test]
    fn squared_l2_matches_naive() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert_eq!(squared_l2(&a, &b), naive);
    }

    #[test]
    fn l2_of_identical_is_zero() {
        let a = [0.25f32; 131]; // non-multiple-of-4 length exercises the tail
        assert_eq!(squared_l2(&a, &a), 0.0);
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..17).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..17).map(|i| (i * 2) as f32).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot(&a, &b), naive);
    }

    #[test]
    fn cosine_basics() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((cosine_distance(&a, &a)).abs() < 1e-6);
        assert!((cosine_distance(&a, &b) - 1.0).abs() < 1e-6);
        let c = [-1.0, 0.0];
        assert!((cosine_distance(&a, &c) - 2.0).abs() < 1e-6);
        // Zero vector convention.
        assert_eq!(cosine_distance(&a, &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn inner_product_is_negated() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        assert_eq!(Metric::InnerProduct.distance(&a, &b), -11.0);
    }

    #[test]
    fn oracle_counts_and_computes() {
        let d = Dataset::from_flat(vec![0.0, 0.0, 3.0, 4.0], 2);
        let o = DistanceOracle::new(&d, Metric::SquaredL2);
        assert_eq!(o.to_row(&[0.0, 0.0], 1), 25.0);
        assert_eq!(o.between_rows(0, 1), 25.0);
        assert_eq!(o.computed(), 2);
        o.reset_count();
        assert_eq!(o.computed(), 0);
    }

    #[test]
    fn oracle_widens_f16_store() {
        let d = Dataset::from_flat(vec![0.0, 0.0, 3.0, 4.0], 2);
        let h = d.to_f16();
        let o = DistanceOracle::new(&h, Metric::SquaredL2);
        assert_eq!(o.to_row(&[0.0, 0.0], 1), 25.0);
        assert_eq!(o.between_rows(0, 1), 25.0);
    }
}
