//! Distance kernels for the CAGRA reproduction.
//!
//! Every index in the workspace measures similarity through
//! [`Metric`], covering the paper's distance options: squared L2 (the
//! default for SIFT/GIST/DEEP), inner product, and cosine (angular
//! datasets such as GloVe). The arithmetic lives in [`kernels`]: a
//! SIMD engine (AVX2 on x86_64, NEON on aarch64, scalar everywhere)
//! selected once at startup through a function-pointer table — the CPU
//! analogue of the paper's team-based 128-bit loads — with every
//! backend bit-identical to the canonical scalar order, so recall
//! numbers do not depend on the host CPU.
//!
//! A [`DistanceOracle`] wraps a [`VectorStore`] and hands out
//! query-to-row distances. It resolves the store's native layout once
//! (f32 / binary16 / int8 flat matrices) so FP16 and Int8 rows widen
//! *inside* the SIMD loop instead of through a per-row `get_into`
//! copy, hoists per-query invariants into a [`PreparedQuery`], and
//! exposes the batched [`DistanceOracle::to_rows`] gang kernel that
//! the search hot loops use to score a parent's whole adjacency list
//! in one call.

// See the workspace soundness policy (DESIGN.md "Soundness & analysis"):
// unsafe ops inside `unsafe fn` need their own `unsafe {}` + SAFETY.
#![deny(unsafe_op_in_unsafe_fn)]

use dataset::VectorStore;
use serde::{Deserialize, Serialize};

pub mod adc;
pub mod kernels;

pub use adc::AdcTable;
pub use kernels::Kernels;

/// Distance (or similarity converted to a distance) between vectors.
///
/// All variants are *smaller-is-closer* so search code can be metric
/// agnostic: inner product is negated, cosine is `1 - cos`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Squared Euclidean distance. Monotone with L2, so top-k results
    /// are identical while avoiding the square root (as CUDA ANN
    /// kernels do).
    SquaredL2,
    /// Negated inner product.
    InnerProduct,
    /// Cosine distance `1 - cos(a, b)`.
    Cosine,
}

impl Metric {
    /// Distance between two raw slices.
    ///
    /// # Panics
    /// Panics (debug) if lengths differ.
    #[inline]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let k = kernels::active();
        match self {
            Metric::SquaredL2 => (k.l2)(a, b),
            Metric::InnerProduct => -(k.dot)(a, b),
            Metric::Cosine => {
                let qnorm = (k.dot)(a, a).sqrt();
                cosine_from_parts(qnorm, (k.dot_norm)(a, b))
            }
        }
    }
}

/// `1 - cos` from the hoisted query norm and a fused `(a·b, b·b)`
/// pair; zero vectors are maximally far by convention. Public so the
/// two-phase rerank path can hoist the query norm once and reuse the
/// exact cosine epilogue the oracle uses.
#[inline]
pub fn cosine_from_parts(qnorm: f32, (ab, bb): (f32, f32)) -> f32 {
    let nb = bb.sqrt();
    if qnorm == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - ab / (qnorm * nb)
}

/// Squared L2 distance via the active SIMD backend.
#[inline]
pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    (kernels::active().l2)(a, b)
}

/// Dot product via the active SIMD backend.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    (kernels::active().dot)(a, b)
}

/// Fused `(a · b, b · b)` via the active SIMD backend — the cosine
/// building block ([`cosine_from_parts`] turns it into a distance).
#[inline]
pub fn dot_norm(a: &[f32], b: &[f32]) -> (f32, f32) {
    (kernels::active().dot_norm)(a, b)
}

/// Cosine distance `1 - cos`; zero vectors are treated as maximally
/// far. One-shot form — search loops instead hoist the query norm via
/// [`DistanceOracle::prepare`] so `dot(a, a)` is not recomputed per
/// pair.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    Metric::Cosine.distance(a, b)
}

/// A query with its per-query invariants hoisted: for cosine, the
/// query L2 norm (previously recomputed from `dot(a, a)` on every
/// pair), and for PQ-backed stores the per-query ADC lookup table.
/// Borrowed by the batched oracle entry points.
pub struct PreparedQuery<'q> {
    query: &'q [f32],
    /// `‖q‖₂` under [`Metric::Cosine`]; 0.0 (unused) otherwise.
    norm: f32,
    /// The `m × 256` ADC table when the oracle's store is PQ-backed
    /// (built once here — the only per-query allocation on that path).
    adc: Option<AdcTable>,
}

impl<'q> PreparedQuery<'q> {
    /// The raw query slice.
    pub fn query(&self) -> &'q [f32] {
        self.query
    }

    /// The hoisted cosine query norm (0.0 for other metrics).
    pub fn norm(&self) -> f32 {
        self.norm
    }
}

/// The store's native row layout, resolved once per oracle so the hot
/// path dispatches on it without virtual calls or copies.
enum Rows<'a> {
    F32(&'a [f32]),
    F16(&'a [dataset::F16]),
    I8(&'a [i8], &'a [f32]),
    /// Product-quantized codes; scored via a per-query ADC table.
    Pq(dataset::PqView<'a>),
    /// No flat view available: widen per row through `get_into`.
    Opaque,
}

/// Query-to-dataset distance evaluator over any [`VectorStore`].
///
/// Captures the active [`Kernels`] table at construction, owns two
/// scratch rows (so even row-to-row distances on widening stores
/// allocate nothing per call), and counts every distance computed (the
/// paper's pruning analyses count these; `gpu-sim` also uses it for
/// cost). Construct one per worker thread (it is `!Sync` by design —
/// the scratch is interior state).
pub struct DistanceOracle<'a, S: VectorStore + ?Sized> {
    store: &'a S,
    metric: Metric,
    rows: Rows<'a>,
    kern: &'static Kernels,
    dim: usize,
    scratch: std::cell::RefCell<Vec<f32>>,
    scratch2: std::cell::RefCell<Vec<f32>>,
    count: std::cell::Cell<u64>,
}

impl<'a, S: VectorStore + ?Sized> DistanceOracle<'a, S> {
    /// Create an oracle over `store` with the given metric, using the
    /// currently active kernel backend.
    pub fn new(store: &'a S, metric: Metric) -> Self {
        Self::with_kernels(store, metric, kernels::active())
    }

    /// Create an oracle pinned to a specific kernel backend (benches
    /// and parity tests compare backends side by side this way).
    pub fn with_kernels(store: &'a S, metric: Metric, kern: &'static Kernels) -> Self {
        let rows = if let Some(flat) = store.flat_f32() {
            Rows::F32(flat)
        } else if let Some(flat) = store.flat_f16() {
            Rows::F16(flat)
        } else if let Some((codes, scales)) = store.flat_i8() {
            Rows::I8(codes, scales)
        } else if let Some(view) = store.flat_pq() {
            Rows::Pq(view)
        } else {
            Rows::Opaque
        };
        DistanceOracle {
            store,
            metric,
            rows,
            kern,
            dim: store.dim(),
            scratch: std::cell::RefCell::new(vec![0.0; store.dim()]),
            scratch2: std::cell::RefCell::new(vec![0.0; store.dim()]),
            count: std::cell::Cell::new(0),
        }
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The underlying store.
    pub fn store(&self) -> &'a S {
        self.store
    }

    /// The kernel backend this oracle dispatches to.
    pub fn kernels(&self) -> &'static Kernels {
        self.kern
    }

    /// Hoist the per-query invariants once: the cosine query norm,
    /// and — on PQ-backed stores — the full `m × 256` ADC lookup
    /// table, so every subsequent row score is `m` table lookups. The
    /// result feeds [`Self::to_row_prepared`] and [`Self::to_rows`].
    #[inline]
    pub fn prepare<'q>(&self, query: &'q [f32]) -> PreparedQuery<'q> {
        let norm = match self.metric {
            Metric::Cosine => (self.kern.dot)(query, query).sqrt(),
            _ => 0.0,
        };
        let adc = match &self.rows {
            Rows::Pq(view) => Some(AdcTable::build(view, self.metric, query, self.kern)),
            _ => None,
        };
        PreparedQuery { query, norm, adc }
    }

    /// Distance between `query` and dataset row `i` (one-shot form;
    /// prefer [`Self::prepare`] + the prepared entry points in loops).
    #[inline]
    pub fn to_row(&self, query: &[f32], i: usize) -> f32 {
        let pq = self.prepare(query);
        self.to_row_prepared(&pq, i)
    }

    /// Distance between a prepared query and dataset row `i`.
    #[inline]
    pub fn to_row_prepared(&self, pq: &PreparedQuery<'_>, i: usize) -> f32 {
        self.count.set(self.count.get() + 1);
        self.row_distance(pq.query, pq.norm, pq.adc.as_ref(), i)
    }

    /// Batched gang kernel: distances from a prepared query to every
    /// row in `ids`, written to `out` in order. Metric and row-layout
    /// dispatch happen once per call, not once per row, and upcoming
    /// neighbor rows are prefetched while the current one computes —
    /// this is the CPU analogue of the paper scoring all `d` neighbors
    /// of a parent in one warp-wide pass.
    ///
    /// Equivalent to `to_row` per id, bit for bit.
    ///
    /// # Panics
    /// Panics if `ids.len() != out.len()`.
    pub fn to_rows(&self, pq: &PreparedQuery<'_>, ids: &[u32], out: &mut [f32]) {
        assert_eq!(ids.len(), out.len(), "to_rows: ids/out length mismatch");
        self.count.set(self.count.get() + ids.len() as u64);
        let k = self.kern;
        let q = pq.query;
        let dim = self.dim;
        match self.rows {
            Rows::F32(flat) => self.gang_metric(
                pq,
                ids,
                out,
                |i| (k.l2)(q, &flat[i * dim..(i + 1) * dim]),
                |i| (k.dot)(q, &flat[i * dim..(i + 1) * dim]),
                |i| (k.dot_norm)(q, &flat[i * dim..(i + 1) * dim]),
                |i| kernels::prefetch(flat[i * dim..].as_ptr()),
            ),
            Rows::F16(flat) => self.gang_metric(
                pq,
                ids,
                out,
                |i| (k.l2_f16)(q, &flat[i * dim..(i + 1) * dim]),
                |i| (k.dot_f16)(q, &flat[i * dim..(i + 1) * dim]),
                |i| (k.dot_norm_f16)(q, &flat[i * dim..(i + 1) * dim]),
                |i| kernels::prefetch(flat[i * dim..].as_ptr()),
            ),
            Rows::I8(codes, scales) => self.gang_metric(
                pq,
                ids,
                out,
                |i| (k.l2_i8)(q, &codes[i * dim..(i + 1) * dim], scales),
                |i| (k.dot_i8)(q, &codes[i * dim..(i + 1) * dim], scales),
                |i| (k.dot_norm_i8)(q, &codes[i * dim..(i + 1) * dim], scales),
                |i| kernels::prefetch(codes[i * dim..].as_ptr()),
            ),
            Rows::Pq(view) => {
                // Metric dispatch lives inside the table (entries were
                // built for this oracle's metric); the gang loop only
                // streams code rows through it with the usual two-ahead
                // prefetch.
                let t = pq
                    .adc
                    .as_ref()
                    .expect("PQ-backed oracle requires a query prepared on this oracle");
                let m = view.codebook.m();
                let codes = view.codes;
                let qnorm = pq.norm;
                gang(
                    ids,
                    out,
                    |i| t.score(&codes[i * m..(i + 1) * m], qnorm),
                    |i| kernels::prefetch(codes[i * m..].as_ptr()),
                );
            }
            Rows::Opaque => {
                for (o, &id) in out.iter_mut().zip(ids) {
                    let mut s = self.scratch.borrow_mut();
                    self.store.get_into(id as usize, &mut s);
                    *o = self.f32_pair_distance(q, pq.norm, &s);
                }
            }
        }
    }

    /// Shared gang loop: pick the per-row closure for this metric once,
    /// then stream the ids with a two-ahead row prefetch.
    #[allow(clippy::too_many_arguments)]
    fn gang_metric(
        &self,
        pq: &PreparedQuery<'_>,
        ids: &[u32],
        out: &mut [f32],
        l2: impl Fn(usize) -> f32,
        dotk: impl Fn(usize) -> f32,
        dot_norm: impl Fn(usize) -> (f32, f32),
        pf: impl Fn(usize),
    ) {
        match self.metric {
            Metric::SquaredL2 => gang(ids, out, l2, pf),
            Metric::InnerProduct => gang(ids, out, |i| -dotk(i), pf),
            Metric::Cosine => {
                let qnorm = pq.norm;
                gang(ids, out, |i| cosine_from_parts(qnorm, dot_norm(i)), pf)
            }
        }
    }

    /// Dispatch one query-to-row distance on the resolved row layout.
    /// `adc` must be `Some` when the layout is [`Rows::Pq`] (callers
    /// pass the prepared query's table; `between_rows` never routes
    /// PQ rows here).
    #[inline]
    fn row_distance(&self, q: &[f32], qnorm: f32, adc: Option<&AdcTable>, i: usize) -> f32 {
        let k = self.kern;
        let dim = self.dim;
        match self.rows {
            Rows::F32(flat) => {
                let r = &flat[i * dim..(i + 1) * dim];
                match self.metric {
                    Metric::SquaredL2 => (k.l2)(q, r),
                    Metric::InnerProduct => -(k.dot)(q, r),
                    Metric::Cosine => cosine_from_parts(qnorm, (k.dot_norm)(q, r)),
                }
            }
            Rows::F16(flat) => {
                let r = &flat[i * dim..(i + 1) * dim];
                match self.metric {
                    Metric::SquaredL2 => (k.l2_f16)(q, r),
                    Metric::InnerProduct => -(k.dot_f16)(q, r),
                    Metric::Cosine => cosine_from_parts(qnorm, (k.dot_norm_f16)(q, r)),
                }
            }
            Rows::I8(codes, scales) => {
                let r = &codes[i * dim..(i + 1) * dim];
                match self.metric {
                    Metric::SquaredL2 => (k.l2_i8)(q, r, scales),
                    Metric::InnerProduct => -(k.dot_i8)(q, r, scales),
                    Metric::Cosine => cosine_from_parts(qnorm, (k.dot_norm_i8)(q, r, scales)),
                }
            }
            Rows::Pq(view) => {
                let t = adc.expect("PQ-backed oracle requires a query prepared on this oracle");
                let m = view.codebook.m();
                t.score(&view.codes[i * m..(i + 1) * m], qnorm)
            }
            Rows::Opaque => {
                let mut s = self.scratch.borrow_mut();
                self.store.get_into(i, &mut s);
                self.f32_pair_distance(q, qnorm, &s)
            }
        }
    }

    /// Metric on two f32 slices with an already-hoisted query norm.
    #[inline]
    fn f32_pair_distance(&self, q: &[f32], qnorm: f32, r: &[f32]) -> f32 {
        let k = self.kern;
        match self.metric {
            Metric::SquaredL2 => (k.l2)(q, r),
            Metric::InnerProduct => -(k.dot)(q, r),
            Metric::Cosine => cosine_from_parts(qnorm, (k.dot_norm)(q, r)),
        }
    }

    /// Distance between dataset rows `i` and `j`.
    ///
    /// Widening stores pay one `get_into` for row `i` into a
    /// persistent scratch row — row `j` runs through the typed kernel
    /// directly — so no call allocates.
    #[inline]
    pub fn between_rows(&self, i: usize, j: usize) -> f32 {
        self.count.set(self.count.get() + 1);
        match self.rows {
            Rows::F32(flat) => {
                let dim = self.dim;
                let a = &flat[i * dim..(i + 1) * dim];
                let qnorm = self.hoist_norm(a);
                self.row_distance(a, qnorm, None, j)
            }
            Rows::F16(..) | Rows::I8(..) => {
                let mut a = self.scratch.borrow_mut();
                self.store.get_into(i, &mut a);
                let qnorm = self.hoist_norm(&a);
                self.row_distance(&a, qnorm, None, j)
            }
            // PQ rows decode through `get_into` for row-to-row work
            // (graph build); per-row ADC tables would cost more than
            // they save when the "query" changes every call.
            Rows::Pq(..) | Rows::Opaque => {
                let mut a = self.scratch.borrow_mut();
                let mut b = self.scratch2.borrow_mut();
                self.store.get_into(i, &mut a);
                self.store.get_into(j, &mut b);
                let qnorm = self.hoist_norm(&a);
                self.f32_pair_distance(&a, qnorm, &b)
            }
        }
    }

    #[inline]
    fn hoist_norm(&self, q: &[f32]) -> f32 {
        match self.metric {
            Metric::Cosine => (self.kern.dot)(q, q).sqrt(),
            _ => 0.0,
        }
    }

    /// How many distances have been computed through this oracle.
    pub fn computed(&self) -> u64 {
        self.count.get()
    }

    /// Reset the distance counter.
    pub fn reset_count(&self) {
        self.count.set(0);
    }
}

/// Stream `ids` through a per-row distance closure with a two-ahead
/// prefetch: while row `j` computes, the cache line of row `j + 2`
/// starts moving.
#[inline(always)]
fn gang(ids: &[u32], out: &mut [f32], f: impl Fn(usize) -> f32, pf: impl Fn(usize)) {
    for (j, (o, &id)) in out.iter_mut().zip(ids).enumerate() {
        if let Some(&ahead) = ids.get(j + 2) {
            pf(ahead as usize);
        }
        *o = f(id as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::Dataset;

    #[test]
    fn squared_l2_matches_naive() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert_eq!(squared_l2(&a, &b), naive);
    }

    #[test]
    fn l2_of_identical_is_zero() {
        let a = [0.25f32; 131]; // non-multiple-of-8 length exercises the tail
        assert_eq!(squared_l2(&a, &a), 0.0);
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..17).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..17).map(|i| (i * 2) as f32).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot(&a, &b), naive);
    }

    #[test]
    fn cosine_basics() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((cosine_distance(&a, &a)).abs() < 1e-6);
        assert!((cosine_distance(&a, &b) - 1.0).abs() < 1e-6);
        let c = [-1.0, 0.0];
        assert!((cosine_distance(&a, &c) - 2.0).abs() < 1e-6);
        // Zero vector convention.
        assert_eq!(cosine_distance(&a, &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn inner_product_is_negated() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        assert_eq!(Metric::InnerProduct.distance(&a, &b), -11.0);
    }

    #[test]
    fn oracle_counts_and_computes() {
        let d = Dataset::from_flat(vec![0.0, 0.0, 3.0, 4.0], 2);
        let o = DistanceOracle::new(&d, Metric::SquaredL2);
        assert_eq!(o.to_row(&[0.0, 0.0], 1), 25.0);
        assert_eq!(o.between_rows(0, 1), 25.0);
        assert_eq!(o.computed(), 2);
        o.reset_count();
        assert_eq!(o.computed(), 0);
    }

    #[test]
    fn oracle_widens_f16_store() {
        let d = Dataset::from_flat(vec![0.0, 0.0, 3.0, 4.0], 2);
        let h = d.to_f16();
        let o = DistanceOracle::new(&h, Metric::SquaredL2);
        assert_eq!(o.to_row(&[0.0, 0.0], 1), 25.0);
        assert_eq!(o.between_rows(0, 1), 25.0);
    }

    #[test]
    fn oracle_dequantizes_i8_store() {
        let d = Dataset::from_flat(vec![0.0, 0.0, 3.0, 4.0], 2);
        let q = d.to_i8();
        let o = DistanceOracle::new(&q, Metric::SquaredL2);
        assert_eq!(o.to_row(&[0.0, 0.0], 1), 25.0);
        assert_eq!(o.between_rows(0, 1), 25.0);
    }

    #[test]
    fn to_rows_counts_batch_and_matches_to_row() {
        let d = Dataset::from_flat((0..24).map(|x| x as f32).collect(), 3);
        let o = DistanceOracle::new(&d, Metric::SquaredL2);
        let query = [1.0, 0.5, -2.0];
        let pq = o.prepare(&query);
        let ids = [7u32, 0, 3, 3, 5];
        let mut out = [0.0f32; 5];
        o.to_rows(&pq, &ids, &mut out);
        assert_eq!(o.computed(), 5);
        for (&id, &got) in ids.iter().zip(&out) {
            assert_eq!(got.to_bits(), o.to_row(&query, id as usize).to_bits());
        }
    }

    #[test]
    fn oracle_scores_pq_store_via_adc() {
        use dataset::synth::{Family, SynthSpec};
        let spec = SynthSpec { dim: 12, n: 50, queries: 0, family: Family::Gaussian, seed: 21 };
        let (d, _) = spec.generate();
        let store =
            dataset::pq::build(&d, &dataset::PqConfig { sample: 50, ..dataset::PqConfig::new(4) });
        for metric in [Metric::SquaredL2, Metric::InnerProduct, Metric::Cosine] {
            let o = DistanceOracle::new(&store, metric);
            let q = d.row(0);
            let pq = o.prepare(q);
            let ids: Vec<u32> = (0..50).collect();
            let mut out = vec![0.0f32; 50];
            o.to_rows(&pq, &ids, &mut out);
            // Gang path == per-row prepared path, bit for bit.
            for (&id, &got) in ids.iter().zip(&out) {
                assert_eq!(got.to_bits(), o.to_row_prepared(&pq, id as usize).to_bits());
            }
            // ADC scores track the decoded rows (approximate store,
            // exact scoring of it).
            let mut rec = vec![0.0f32; 12];
            for (i, &got) in out.iter().enumerate().take(store.len()) {
                store.get_into(i, &mut rec);
                let exact = metric.distance(q, &rec);
                assert!(
                    (got - exact).abs() <= 1e-3 * exact.abs().max(1.0),
                    "{metric:?} row {i}: {got} vs {exact}"
                );
            }
            // between_rows decodes (no prepared table needed).
            let _ = o.between_rows(0, 1);
        }
    }

    #[test]
    fn prepared_cosine_norm_is_hoisted() {
        let d = Dataset::from_flat(vec![1.0, 0.0, 0.0, 1.0, -3.0, 4.0], 2);
        let o = DistanceOracle::new(&d, Metric::Cosine);
        let query = [3.0, 4.0];
        let pq = o.prepare(&query);
        assert_eq!(pq.norm(), 5.0);
        for i in 0..3 {
            assert_eq!(
                o.to_row_prepared(&pq, i).to_bits(),
                cosine_distance(&query, d.row(i)).to_bits()
            );
        }
    }
}
