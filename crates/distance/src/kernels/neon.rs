//! NEON backend (aarch64) — two `float32x4` accumulators form the
//! canonical 8-lane shape of [`super::scalar`].
//!
//! Lanes 0..4 of a chunk live in the low register, lanes 4..8 in the
//! high one, so `vaddq_f32(lo, hi)` computes exactly the
//! `s_l = acc[l] + acc[l+4]` fold of the scalar `hsum8`, and the four
//! folded lanes combine with the same `(s0+s1)+(s2+s3)` tree. As on
//! AVX2 there is deliberately no fused multiply-add (`vfmaq_f32`
//! rounds once; the contract requires `mul` then `add`). Int8 rows
//! sign-extend through `vmovl_s8`/`vmovl_s16` and convert exactly;
//! binary16 rows stay on the scalar kernels (the dispatch table never
//! installs a NEON f16 entry) because widening via the fp16 extension
//! is not universally available and the scalar path is already exact.

#![cfg(target_arch = "aarch64")]

use core::arch::aarch64::*;

/// Canonical reduction of an 8-lane accumulator held as two quads.
///
/// # Safety
/// NEON must be available (always true for the aarch64 targets we
/// build, but the dispatch table still runtime-checks it).
#[inline(always)]
unsafe fn hsum8(lo: float32x4_t, hi: float32x4_t) -> f32 {
    // SAFETY: caller contract guarantees NEON; register-only ops plus
    // a store that exactly fills the 4-lane local.
    unsafe {
        let s = vaddq_f32(lo, hi);
        let mut lanes = [0.0f32; 4];
        vst1q_f32(lanes.as_mut_ptr(), s);
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }
}

/// # Safety
/// Requires NEON and `base + 8 <= r.len()`.
#[inline(always)]
unsafe fn load_f32(r: &[f32], base: usize) -> (float32x4_t, float32x4_t) {
    debug_assert!(base + 8 <= r.len());
    // SAFETY: caller contract — NEON available and `base + 8 <=
    // r.len()`, so both quad loads stay inside `r`.
    unsafe {
        let p = r.as_ptr().add(base);
        (vld1q_f32(p), vld1q_f32(p.add(4)))
    }
}

/// # Safety
/// Requires NEON and `base + 8` in bounds of both `codes` and
/// `scales`.
#[inline(always)]
unsafe fn load_i8(codes: &[i8], scales: &[f32], base: usize) -> (float32x4_t, float32x4_t) {
    debug_assert!(base + 8 <= codes.len() && base + 8 <= scales.len());
    // SAFETY: caller contract — NEON available and `base + 8` within
    // both `codes` (64-bit load) and `scales` (two quad loads).
    unsafe {
        let raw = vld1_s8(codes.as_ptr().add(base)); // 8 x i8
        let w16 = vmovl_s8(raw); // 8 x i16
        let lo = vcvtq_f32_s32(vmovl_s16(vget_low_s16(w16))); // exact
        let hi = vcvtq_f32_s32(vmovl_s16(vget_high_s16(w16)));
        let sp = scales.as_ptr().add(base);
        // One rounding per element, same as scalar `code as f32 * scale`.
        (vmulq_f32(lo, vld1q_f32(sp)), vmulq_f32(hi, vld1q_f32(sp.add(4))))
    }
}

/// # Safety
/// Requires NEON; `load(base)`/`at(j)` must be in bounds for every
/// `base + 8 <= q.len()` and `j < q.len()` (row length >= `q.len()`).
#[inline(always)]
unsafe fn l2_body(
    q: &[f32],
    load: impl Fn(usize) -> (float32x4_t, float32x4_t),
    at: impl Fn(usize) -> f32,
) -> f32 {
    let n = q.len();
    let chunks = n / 8;
    // SAFETY: caller contract — NEON available and the row behind
    // `load`/`at` is at least `q.len()` long, so every `base = c*8`
    // with `base + 8 <= n` keeps the query loads in bounds and the
    // loaders' own preconditions hold.
    unsafe {
        let mut acc_lo = vdupq_n_f32(0.0);
        let mut acc_hi = vdupq_n_f32(0.0);
        for c in 0..chunks {
            let base = c * 8;
            let qp = q.as_ptr().add(base);
            let (w_lo, w_hi) = load(base);
            let d_lo = vsubq_f32(vld1q_f32(qp), w_lo);
            let d_hi = vsubq_f32(vld1q_f32(qp.add(4)), w_hi);
            acc_lo = vaddq_f32(acc_lo, vmulq_f32(d_lo, d_lo));
            acc_hi = vaddq_f32(acc_hi, vmulq_f32(d_hi, d_hi));
        }
        let mut sum = hsum8(acc_lo, acc_hi);
        for j in chunks * 8..n {
            let d = q[j] - at(j);
            sum += d * d;
        }
        sum
    }
}

/// # Safety
/// As for [`l2_body`].
#[inline(always)]
unsafe fn dot_body(
    q: &[f32],
    load: impl Fn(usize) -> (float32x4_t, float32x4_t),
    at: impl Fn(usize) -> f32,
) -> f32 {
    let n = q.len();
    let chunks = n / 8;
    // SAFETY: as in `l2_body` — caller guarantees NEON and row
    // length >= `q.len()`.
    unsafe {
        let mut acc_lo = vdupq_n_f32(0.0);
        let mut acc_hi = vdupq_n_f32(0.0);
        for c in 0..chunks {
            let base = c * 8;
            let qp = q.as_ptr().add(base);
            let (w_lo, w_hi) = load(base);
            acc_lo = vaddq_f32(acc_lo, vmulq_f32(vld1q_f32(qp), w_lo));
            acc_hi = vaddq_f32(acc_hi, vmulq_f32(vld1q_f32(qp.add(4)), w_hi));
        }
        let mut sum = hsum8(acc_lo, acc_hi);
        for j in chunks * 8..n {
            sum += q[j] * at(j);
        }
        sum
    }
}

/// # Safety
/// As for [`l2_body`].
#[inline(always)]
unsafe fn dot_norm_body(
    q: &[f32],
    load: impl Fn(usize) -> (float32x4_t, float32x4_t),
    at: impl Fn(usize) -> f32,
) -> (f32, f32) {
    let n = q.len();
    let chunks = n / 8;
    // SAFETY: as in `l2_body` — caller guarantees NEON and row
    // length >= `q.len()`.
    unsafe {
        let mut ab_lo = vdupq_n_f32(0.0);
        let mut ab_hi = vdupq_n_f32(0.0);
        let mut bb_lo = vdupq_n_f32(0.0);
        let mut bb_hi = vdupq_n_f32(0.0);
        for c in 0..chunks {
            let base = c * 8;
            let qp = q.as_ptr().add(base);
            let (w_lo, w_hi) = load(base);
            ab_lo = vaddq_f32(ab_lo, vmulq_f32(vld1q_f32(qp), w_lo));
            ab_hi = vaddq_f32(ab_hi, vmulq_f32(vld1q_f32(qp.add(4)), w_hi));
            bb_lo = vaddq_f32(bb_lo, vmulq_f32(w_lo, w_lo));
            bb_hi = vaddq_f32(bb_hi, vmulq_f32(w_hi, w_hi));
        }
        let mut sab = hsum8(ab_lo, ab_hi);
        let mut sbb = hsum8(bb_lo, bb_hi);
        for j in chunks * 8..n {
            let w = at(j);
            sab += q[j] * w;
            sbb += w * w;
        }
        (sab, sbb)
    }
}

/// # Safety
/// Requires NEON; `q.len() == r.len()`.
pub unsafe fn l2_f32(q: &[f32], r: &[f32]) -> f32 {
    // SAFETY: `load_f32` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. NEON is this fn's own contract.
    let load = |base| unsafe { load_f32(r, base) };
    // SAFETY: forwarded caller contract (NEON + equal lengths).
    unsafe { l2_body(q, load, |j| r[j]) }
}

/// # Safety
/// Requires NEON; `q.len() == r.len()`.
pub unsafe fn dot_f32(q: &[f32], r: &[f32]) -> f32 {
    // SAFETY: `load_f32` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. NEON is this fn's own contract.
    let load = |base| unsafe { load_f32(r, base) };
    // SAFETY: forwarded caller contract (NEON + equal lengths).
    unsafe { dot_body(q, load, |j| r[j]) }
}

/// # Safety
/// Requires NEON; `q.len() == r.len()`.
pub unsafe fn dot_norm_f32(q: &[f32], r: &[f32]) -> (f32, f32) {
    // SAFETY: `load_f32` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. NEON is this fn's own contract.
    let load = |base| unsafe { load_f32(r, base) };
    // SAFETY: forwarded caller contract (NEON + equal lengths).
    unsafe { dot_norm_body(q, load, |j| r[j]) }
}

/// # Safety
/// Requires NEON; `q`, `codes`, `scales` all of equal length.
pub unsafe fn l2_i8(q: &[f32], codes: &[i8], scales: &[f32]) -> f32 {
    // SAFETY: `load_i8` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. NEON is this fn's own contract.
    let load = |base| unsafe { load_i8(codes, scales, base) };
    // SAFETY: forwarded caller contract (NEON + equal lengths).
    unsafe { l2_body(q, load, |j| codes[j] as f32 * scales[j]) }
}

/// # Safety
/// Requires NEON; `q`, `codes`, `scales` all of equal length.
pub unsafe fn dot_i8(q: &[f32], codes: &[i8], scales: &[f32]) -> f32 {
    // SAFETY: `load_i8` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. NEON is this fn's own contract.
    let load = |base| unsafe { load_i8(codes, scales, base) };
    // SAFETY: forwarded caller contract (NEON + equal lengths).
    unsafe { dot_body(q, load, |j| codes[j] as f32 * scales[j]) }
}

/// # Safety
/// Requires NEON; `q`, `codes`, `scales` all of equal length.
pub unsafe fn dot_norm_i8(q: &[f32], codes: &[i8], scales: &[f32]) -> (f32, f32) {
    // SAFETY: `load_i8` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees codes and
    // scales are `q.len()` long. NEON is this fn's own contract.
    let load = |base| unsafe { load_i8(codes, scales, base) };
    // SAFETY: forwarded caller contract (NEON + equal lengths).
    unsafe { dot_norm_body(q, load, |j| codes[j] as f32 * scales[j]) }
}
