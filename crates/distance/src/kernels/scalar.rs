//! Canonical scalar kernels — the bit-exactness reference.
//!
//! Every backend (AVX2, NEON, this one) must reproduce these results
//! *bit for bit*. The contract that makes that possible:
//!
//! 1. **8-lane accumulation.** The vector is consumed in chunks of 8;
//!    lane `l` of the accumulator only ever sees elements with index
//!    `≡ l (mod 8)`, in chunk order. An AVX2 `f32x8` register (or a
//!    NEON `float32x4` pair) accumulates the same partial sums in the
//!    same order.
//! 2. **Fixed horizontal reduction.** [`hsum8`] collapses the 8 lanes
//!    as `s_l = acc[l] + acc[l+4]` (the natural 256→128-bit fold),
//!    then `(s0 + s1) + (s2 + s3)`. All backends use this tree.
//! 3. **Sequential tail.** The `len % 8` remainder is added one
//!    element at a time *after* the horizontal sum, identically
//!    everywhere.
//! 4. **No FMA.** A fused multiply-add rounds once where `mul` then
//!    `add` rounds twice, so FMA in one backend but not another would
//!    break bit-identity. These kernels are memory-bound; the lost
//!    FLOPs are not measurable.
//!
//! Widening is exact in both directions — binary16 → f32 is lossless
//! and `i8 as f32` is lossless — and the int8 dequant `code * scale`
//! is a single f32 rounding in every backend, so the typed kernels
//! match "widen the whole row, then run the f32 kernel" bit for bit.

use dataset::F16;

/// Fold an 8-lane accumulator with the canonical reduction tree.
#[inline(always)]
pub(crate) fn hsum8(acc: &[f32; 8]) -> f32 {
    let s0 = acc[0] + acc[4];
    let s1 = acc[1] + acc[5];
    let s2 = acc[2] + acc[6];
    let s3 = acc[3] + acc[7];
    (s0 + s1) + (s2 + s3)
}

/// Row-element accessor: how to widen element `j` of a stored row.
///
/// The three implementations (f32 pass-through, binary16 widen, int8
/// dequant) are `#[inline(always)]` so each kernel monomorphizes to a
/// tight loop with the conversion fused in — the scalar analogue of
/// the SIMD backends widening inside the vector loop.
pub(crate) trait RowSrc {
    fn at(&self, j: usize) -> f32;
}

pub(crate) struct SrcF32<'a>(pub &'a [f32]);
impl RowSrc for SrcF32<'_> {
    #[inline(always)]
    fn at(&self, j: usize) -> f32 {
        self.0[j]
    }
}

pub(crate) struct SrcF16<'a>(pub &'a [F16]);
impl RowSrc for SrcF16<'_> {
    #[inline(always)]
    fn at(&self, j: usize) -> f32 {
        self.0[j].to_f32()
    }
}

pub(crate) struct SrcI8<'a> {
    pub codes: &'a [i8],
    pub scales: &'a [f32],
}
impl RowSrc for SrcI8<'_> {
    #[inline(always)]
    fn at(&self, j: usize) -> f32 {
        self.codes[j] as f32 * self.scales[j]
    }
}

#[inline(always)]
fn l2_generic<R: RowSrc>(q: &[f32], r: &R) -> f32 {
    let n = q.len();
    let chunks = n / 8;
    let mut acc = [0.0f32; 8];
    for c in 0..chunks {
        let base = c * 8;
        for (lane, a) in acc.iter_mut().enumerate() {
            let d = q[base + lane] - r.at(base + lane);
            *a += d * d;
        }
    }
    let mut sum = hsum8(&acc);
    for (j, &qj) in q.iter().enumerate().skip(chunks * 8) {
        let d = qj - r.at(j);
        sum += d * d;
    }
    sum
}

#[inline(always)]
fn dot_generic<R: RowSrc>(q: &[f32], r: &R) -> f32 {
    let n = q.len();
    let chunks = n / 8;
    let mut acc = [0.0f32; 8];
    for c in 0..chunks {
        let base = c * 8;
        for (lane, a) in acc.iter_mut().enumerate() {
            *a += q[base + lane] * r.at(base + lane);
        }
    }
    let mut sum = hsum8(&acc);
    for (j, &qj) in q.iter().enumerate().skip(chunks * 8) {
        sum += qj * r.at(j);
    }
    sum
}

/// One-pass `(q · r, r · r)` — the cosine kernel. Two independent
/// accumulator sets, each following the canonical order, so the pair
/// equals separate `dot(q, r)` / `dot(r, r)` calls bit for bit.
#[inline(always)]
fn dot_norm_generic<R: RowSrc>(q: &[f32], r: &R) -> (f32, f32) {
    let n = q.len();
    let chunks = n / 8;
    let mut ab = [0.0f32; 8];
    let mut bb = [0.0f32; 8];
    for c in 0..chunks {
        let base = c * 8;
        for lane in 0..8 {
            let w = r.at(base + lane);
            ab[lane] += q[base + lane] * w;
            bb[lane] += w * w;
        }
    }
    let mut sab = hsum8(&ab);
    let mut sbb = hsum8(&bb);
    for (j, &qj) in q.iter().enumerate().skip(chunks * 8) {
        let w = r.at(j);
        sab += qj * w;
        sbb += w * w;
    }
    (sab, sbb)
}

pub fn l2_f32(q: &[f32], r: &[f32]) -> f32 {
    l2_generic(q, &SrcF32(r))
}
pub fn dot_f32(q: &[f32], r: &[f32]) -> f32 {
    dot_generic(q, &SrcF32(r))
}
pub fn dot_norm_f32(q: &[f32], r: &[f32]) -> (f32, f32) {
    dot_norm_generic(q, &SrcF32(r))
}

pub fn l2_f16(q: &[f32], r: &[F16]) -> f32 {
    l2_generic(q, &SrcF16(r))
}
pub fn dot_f16(q: &[f32], r: &[F16]) -> f32 {
    dot_generic(q, &SrcF16(r))
}
pub fn dot_norm_f16(q: &[f32], r: &[F16]) -> (f32, f32) {
    dot_norm_generic(q, &SrcF16(r))
}

pub fn l2_i8(q: &[f32], codes: &[i8], scales: &[f32]) -> f32 {
    l2_generic(q, &SrcI8 { codes, scales })
}
pub fn dot_i8(q: &[f32], codes: &[i8], scales: &[f32]) -> f32 {
    dot_generic(q, &SrcI8 { codes, scales })
}
pub fn dot_norm_i8(q: &[f32], codes: &[i8], scales: &[f32]) -> (f32, f32) {
    dot_norm_generic(q, &SrcI8 { codes, scales })
}
