//! Runtime-dispatched SIMD distance kernels.
//!
//! The engine is a function-pointer table ([`Kernels`]) selected once
//! per process: [`detected`] probes the CPU (`avx2`/`f16c` on x86_64,
//! `neon` on aarch64) and caches the best available backend;
//! [`scalar`] is the always-available canonical reference; and
//! [`active`] is what the rest of the workspace calls — it returns the
//! detected table unless scalar has been forced.
//!
//! **Bit-exactness contract.** All backends implement the *same*
//! floating-point computation: 8-lane accumulation in a fixed order, a
//! fixed horizontal-reduction tree, a sequential tail, and no FMA (see
//! [`scalar`]'s module docs for the full statement). Search results —
//! neighbor ids *and* f32 distance bit patterns — are therefore
//! identical whichever backend runs, which is what lets the CI matrix
//! run the whole suite under `CAGRA_FORCE_SCALAR=1` and expect
//! byte-for-byte the same output.
//!
//! **Forcing scalar.** Set the environment variable
//! `CAGRA_FORCE_SCALAR=1` before the first distance computation (read
//! once, cached), or call [`force_scalar`] from tests to flip the
//! backend at runtime. Oracles capture the active table when they are
//! constructed, so a flip affects oracles built after it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use dataset::F16;

/// `fn(query, f32 row) -> distance`.
pub type KernF32 = fn(&[f32], &[f32]) -> f32;
/// `fn(query, f32 row) -> (q · r, r · r)` — the fused cosine pass.
pub type KernNormF32 = fn(&[f32], &[f32]) -> (f32, f32);
/// `fn(query, f16 row) -> distance` (widening in-kernel).
pub type KernF16 = fn(&[f32], &[F16]) -> f32;
/// `fn(query, f16 row) -> (q · r, r · r)`.
pub type KernNormF16 = fn(&[f32], &[F16]) -> (f32, f32);
/// `fn(query, i8 codes, per-component scales) -> distance`.
pub type KernI8 = fn(&[f32], &[i8], &[f32]) -> f32;
/// `fn(query, i8 codes, per-component scales) -> (q · r, r · r)`.
pub type KernNormI8 = fn(&[f32], &[i8], &[f32]) -> (f32, f32);

/// A complete distance-kernel backend: one entry per (operation,
/// element type). `dot_norm` fuses `(q · r, r · r)` for cosine so the
/// row streams through memory once.
///
/// All entries require `q.len() == row length` (and `== scales.len()`
/// for int8); they panic or return garbage otherwise, exactly like the
/// free functions in the crate root.
#[derive(Clone, Copy)]
pub struct Kernels {
    /// Backend name for logs/benches: `"scalar"`, `"avx2"`, `"neon"`.
    pub name: &'static str,
    pub l2: KernF32,
    pub dot: KernF32,
    pub dot_norm: KernNormF32,
    pub l2_f16: KernF16,
    pub dot_f16: KernF16,
    pub dot_norm_f16: KernNormF16,
    pub l2_i8: KernI8,
    pub dot_i8: KernI8,
    pub dot_norm_i8: KernNormI8,
}

pub mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

const SCALAR: Kernels = Kernels {
    name: "scalar",
    l2: scalar::l2_f32,
    dot: scalar::dot_f32,
    dot_norm: scalar::dot_norm_f32,
    l2_f16: scalar::l2_f16,
    dot_f16: scalar::dot_f16,
    dot_norm_f16: scalar::dot_norm_f16,
    l2_i8: scalar::l2_i8,
    dot_i8: scalar::dot_i8,
    dot_norm_i8: scalar::dot_norm_i8,
};

/// The canonical scalar backend (always available).
pub fn scalar() -> &'static Kernels {
    &SCALAR
}

// Safe fn-pointer shims over the `unsafe fn` SIMD kernels. Soundness:
// `detect()` only installs them after the runtime feature check, and
// the table is the only way they escape this module.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use dataset::F16;

    macro_rules! shim {
        ($name:ident, f32pair, $imp:path) => {
            pub fn $name(q: &[f32], r: &[f32]) -> f32 {
                // SAFETY: `detect()` installs this shim in the dispatch
                // table only after the runtime feature probe succeeded,
                // and equal slice lengths are the table's documented
                // caller contract (upheld by `DistanceOracle`).
                unsafe { $imp(q, r) }
            }
        };
        ($name:ident, f32pair2, $imp:path) => {
            pub fn $name(q: &[f32], r: &[f32]) -> (f32, f32) {
                // SAFETY: `detect()` installs this shim in the dispatch
                // table only after the runtime feature probe succeeded,
                // and equal slice lengths are the table's documented
                // caller contract (upheld by `DistanceOracle`).
                unsafe { $imp(q, r) }
            }
        };
        ($name:ident, f16pair, $imp:path) => {
            pub fn $name(q: &[f32], r: &[F16]) -> f32 {
                // SAFETY: `detect()` installs this shim in the dispatch
                // table only after the runtime feature probe succeeded,
                // and equal slice lengths are the table's documented
                // caller contract (upheld by `DistanceOracle`).
                unsafe { $imp(q, r) }
            }
        };
        ($name:ident, f16pair2, $imp:path) => {
            pub fn $name(q: &[f32], r: &[F16]) -> (f32, f32) {
                // SAFETY: `detect()` installs this shim in the dispatch
                // table only after the runtime feature probe succeeded,
                // and equal slice lengths are the table's documented
                // caller contract (upheld by `DistanceOracle`).
                unsafe { $imp(q, r) }
            }
        };
        ($name:ident, i8triple, $imp:path) => {
            pub fn $name(q: &[f32], c: &[i8], s: &[f32]) -> f32 {
                // SAFETY: `detect()` installs this shim in the dispatch
                // table only after the runtime feature probe succeeded,
                // and equal slice lengths are the table's documented
                // caller contract (upheld by `DistanceOracle`).
                unsafe { $imp(q, c, s) }
            }
        };
        ($name:ident, i8triple2, $imp:path) => {
            pub fn $name(q: &[f32], c: &[i8], s: &[f32]) -> (f32, f32) {
                // SAFETY: `detect()` installs this shim in the dispatch
                // table only after the runtime feature probe succeeded,
                // and equal slice lengths are the table's documented
                // caller contract (upheld by `DistanceOracle`).
                unsafe { $imp(q, c, s) }
            }
        };
    }

    shim!(l2, f32pair, super::avx2::l2_f32);
    shim!(dot, f32pair, super::avx2::dot_f32);
    shim!(dot_norm, f32pair2, super::avx2::dot_norm_f32);
    shim!(l2_f16, f16pair, super::avx2::l2_f16);
    shim!(dot_f16, f16pair, super::avx2::dot_f16);
    shim!(dot_norm_f16, f16pair2, super::avx2::dot_norm_f16);
    shim!(l2_i8, i8triple, super::avx2::l2_i8);
    shim!(dot_i8, i8triple, super::avx2::dot_i8);
    shim!(dot_norm_i8, i8triple2, super::avx2::dot_norm_i8);
}

#[cfg(target_arch = "aarch64")]
mod arm {
    macro_rules! shim {
        ($name:ident, f32pair, $imp:path) => {
            pub fn $name(q: &[f32], r: &[f32]) -> f32 {
                // SAFETY: `detect()` installs this shim in the dispatch
                // table only after the runtime feature probe succeeded,
                // and equal slice lengths are the table's documented
                // caller contract (upheld by `DistanceOracle`).
                unsafe { $imp(q, r) }
            }
        };
        ($name:ident, f32pair2, $imp:path) => {
            pub fn $name(q: &[f32], r: &[f32]) -> (f32, f32) {
                // SAFETY: `detect()` installs this shim in the dispatch
                // table only after the runtime feature probe succeeded,
                // and equal slice lengths are the table's documented
                // caller contract (upheld by `DistanceOracle`).
                unsafe { $imp(q, r) }
            }
        };
        ($name:ident, i8triple, $imp:path) => {
            pub fn $name(q: &[f32], c: &[i8], s: &[f32]) -> f32 {
                // SAFETY: `detect()` installs this shim in the dispatch
                // table only after the runtime feature probe succeeded,
                // and equal slice lengths are the table's documented
                // caller contract (upheld by `DistanceOracle`).
                unsafe { $imp(q, c, s) }
            }
        };
        ($name:ident, i8triple2, $imp:path) => {
            pub fn $name(q: &[f32], c: &[i8], s: &[f32]) -> (f32, f32) {
                // SAFETY: `detect()` installs this shim in the dispatch
                // table only after the runtime feature probe succeeded,
                // and equal slice lengths are the table's documented
                // caller contract (upheld by `DistanceOracle`).
                unsafe { $imp(q, c, s) }
            }
        };
    }

    shim!(l2, f32pair, super::neon::l2_f32);
    shim!(dot, f32pair, super::neon::dot_f32);
    shim!(dot_norm, f32pair2, super::neon::dot_norm_f32);
    shim!(l2_i8, i8triple, super::neon::l2_i8);
    shim!(dot_i8, i8triple, super::neon::dot_i8);
    shim!(dot_norm_i8, i8triple2, super::neon::dot_norm_i8);
}

fn detect() -> Kernels {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            let mut k = Kernels {
                name: "avx2",
                l2: x86::l2,
                dot: x86::dot,
                dot_norm: x86::dot_norm,
                l2_i8: x86::l2_i8,
                dot_i8: x86::dot_i8,
                dot_norm_i8: x86::dot_norm_i8,
                ..SCALAR
            };
            // f16c ships with every AVX2 part in practice, but select
            // the FP16 entries independently to stay correct on the
            // exceptions (the scalar f16 kernels are bit-identical).
            if std::arch::is_x86_feature_detected!("f16c") {
                k.l2_f16 = x86::l2_f16;
                k.dot_f16 = x86::dot_f16;
                k.dot_norm_f16 = x86::dot_norm_f16;
            }
            return k;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            // FP16 entries stay scalar on NEON (see neon.rs docs).
            return Kernels {
                name: "neon",
                l2: arm::l2,
                dot: arm::dot,
                dot_norm: arm::dot_norm,
                l2_i8: arm::l2_i8,
                dot_i8: arm::dot_i8,
                dot_norm_i8: arm::dot_norm_i8,
                ..SCALAR
            };
        }
    }
    SCALAR
}

/// The best backend this CPU supports (probed once, then cached).
pub fn detected() -> &'static Kernels {
    static DETECTED: OnceLock<Kernels> = OnceLock::new();
    DETECTED.get_or_init(detect)
}

fn force_flag() -> &'static AtomicBool {
    static FORCE: OnceLock<AtomicBool> = OnceLock::new();
    FORCE.get_or_init(|| {
        let env = std::env::var("CAGRA_FORCE_SCALAR").is_ok_and(|v| v == "1");
        AtomicBool::new(env)
    })
}

/// Force (or un-force) the scalar backend at runtime. Test hook behind
/// the same switch as `CAGRA_FORCE_SCALAR`; affects oracles and
/// [`active`] calls from this point on.
pub fn force_scalar(on: bool) {
    force_flag().store(on, Ordering::SeqCst);
}

/// True when the scalar backend is currently forced (env or hook).
pub fn forcing_scalar() -> bool {
    force_flag().load(Ordering::SeqCst)
}

/// The backend the workspace should use right now: [`detected`],
/// unless scalar is forced via `CAGRA_FORCE_SCALAR=1` or
/// [`force_scalar`].
#[inline]
pub fn active() -> &'static Kernels {
    if forcing_scalar() {
        &SCALAR
    } else {
        detected()
    }
}

/// Best-effort prefetch of the cache line at `p` (no-op off x86_64).
/// The gang kernels use it to start pulling neighbor row `j + 2` while
/// row `j` computes.
#[inline(always)]
pub(crate) fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch never faults, even on invalid addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_table_is_always_available() {
        let k = scalar();
        assert_eq!(k.name, "scalar");
        assert_eq!((k.l2)(&[1.0, 2.0], &[2.0, 4.0]), 5.0);
    }

    #[test]
    fn force_scalar_switches_active_table() {
        let was = forcing_scalar();
        force_scalar(true);
        assert_eq!(active().name, "scalar");
        force_scalar(false);
        assert_eq!(active().name, detected().name);
        force_scalar(was);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_detected_on_capable_hosts() {
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_eq!(detected().name, "avx2");
        } else {
            assert_eq!(detected().name, "scalar");
        }
    }
}
