//! AVX2 backend — 8 f32 lanes per iteration, matching the canonical
//! scalar order in [`super::scalar`] bit for bit.
//!
//! Per the bit-exactness contract there is deliberately **no FMA**
//! (`_mm256_fmadd_ps` rounds once; `mul` + `add` rounds twice like the
//! scalar reference) and the horizontal sum folds 256→128 bits then
//! combines the four 128-bit lanes in the fixed `(s0+s1)+(s2+s3)`
//! tree. FP16 rows widen with `vcvtph2ps` (requires `f16c`; the
//! conversion is exact, identical to [`dataset::F16::to_f32`]) and
//! int8 rows widen with sign extension + `cvtdq2ps`, both inside the
//! vector loop — no row is ever copied.
//!
//! Everything here is `unsafe fn` gated on runtime detection in
//! [`super::detect`]; the public dispatch table only installs these
//! entries when `avx2` (and `f16c` for the FP16 kernels) is present.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::*;
use dataset::F16;

/// Canonical 8-lane horizontal sum: fold the high 128-bit half onto
/// the low half (`s_l = acc[l] + acc[l+4]`), then `(s0+s1)+(s2+s3)`.
///
/// # Safety
/// Requires `avx2`.
#[inline(always)]
unsafe fn hsum8(acc: __m256) -> f32 {
    // SAFETY: caller contract guarantees `avx2`; every intrinsic here
    // is register-only except the store into the 4-lane local, which
    // exactly fills `lanes`.
    unsafe {
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps::<1>(acc);
        let s = _mm_add_ps(lo, hi);
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), s);
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }
}

// --- 8-wide row loaders -------------------------------------------------
// Each widens 8 stored elements starting at `base` into an f32x8.
// Callers guarantee `base + 8 <= row length`.

/// # Safety
/// Requires `avx2` and `base + 8 <= r.len()`.
#[inline(always)]
unsafe fn load8_f32(r: &[f32], base: usize) -> __m256 {
    debug_assert!(base + 8 <= r.len());
    // SAFETY: caller contract — `avx2` available and `base + 8 <=
    // r.len()`, so the unaligned 8-lane load stays inside `r`.
    unsafe { _mm256_loadu_ps(r.as_ptr().add(base)) }
}

/// # Safety
/// Requires `avx2` + `f16c` and `base + 8 <= r.len()`.
#[inline(always)]
unsafe fn load8_f16(r: &[F16], base: usize) -> __m256 {
    debug_assert!(base + 8 <= r.len());
    // SAFETY: caller contract — `avx2`+`f16c` available and `base + 8
    // <= r.len()`; eight binary16 values = 128 bits read in bounds,
    // and vcvtph2ps widens them exactly.
    unsafe {
        let raw = _mm_loadu_si128(r.as_ptr().add(base) as *const __m128i);
        _mm256_cvtph_ps(raw)
    }
}

/// # Safety
/// Requires `avx2` and `base + 8` in bounds of both `codes` and
/// `scales`.
#[inline(always)]
unsafe fn load8_i8(codes: &[i8], scales: &[f32], base: usize) -> __m256 {
    debug_assert!(base + 8 <= codes.len() && base + 8 <= scales.len());
    // SAFETY: caller contract — `avx2` available and `base + 8` within
    // both `codes` (64-bit load) and `scales` (256-bit load).
    // Sign-extend to i32, convert (exact), then one multiply by the
    // per-dimension scales (one rounding, same as the scalar
    // `code as f32 * scale`).
    unsafe {
        let raw = _mm_loadl_epi64(codes.as_ptr().add(base) as *const __m128i);
        let wide = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
        _mm256_mul_ps(wide, _mm256_loadu_ps(scales.as_ptr().add(base)))
    }
}

// --- generic kernel bodies ----------------------------------------------
// `load8` widens a vector chunk, `at` widens one tail element. The
// bodies are `#[inline(always)]` and only ever called from the
// `#[target_feature]` wrappers below, so they compile with AVX2
// enabled. Closures do not inherit the caller's unsafe context, hence
// the explicit `unsafe` blocks at each call site.

/// # Safety
/// Requires `avx2`; `load8(base)`/`at(j)` must be in bounds for every
/// `base + 8 <= q.len()` and `j < q.len()` (row length >= `q.len()`).
#[inline(always)]
unsafe fn l2_body(q: &[f32], load8: impl Fn(usize) -> __m256, at: impl Fn(usize) -> f32) -> f32 {
    let n = q.len();
    let chunks = n / 8;
    // SAFETY: caller contract — `avx2` available and the row behind
    // `load8`/`at` is at least `q.len()` long, so every `base = c*8`
    // with `base + 8 <= n` keeps the query load in bounds and the
    // loaders' own preconditions hold.
    unsafe {
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let base = c * 8;
            let d = _mm256_sub_ps(_mm256_loadu_ps(q.as_ptr().add(base)), load8(base));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
        }
        let mut sum = hsum8(acc);
        for (j, &qj) in q.iter().enumerate().skip(chunks * 8) {
            let d = qj - at(j);
            sum += d * d;
        }
        sum
    }
}

/// # Safety
/// As for [`l2_body`].
#[inline(always)]
unsafe fn dot_body(q: &[f32], load8: impl Fn(usize) -> __m256, at: impl Fn(usize) -> f32) -> f32 {
    let n = q.len();
    let chunks = n / 8;
    // SAFETY: as in `l2_body` — caller guarantees `avx2` and row
    // length >= `q.len()`.
    unsafe {
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let base = c * 8;
            let qv = _mm256_loadu_ps(q.as_ptr().add(base));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(qv, load8(base)));
        }
        let mut sum = hsum8(acc);
        for (j, &qj) in q.iter().enumerate().skip(chunks * 8) {
            sum += qj * at(j);
        }
        sum
    }
}

/// # Safety
/// As for [`l2_body`].
#[inline(always)]
unsafe fn dot_norm_body(
    q: &[f32],
    load8: impl Fn(usize) -> __m256,
    at: impl Fn(usize) -> f32,
) -> (f32, f32) {
    let n = q.len();
    let chunks = n / 8;
    // SAFETY: as in `l2_body` — caller guarantees `avx2` and row
    // length >= `q.len()`.
    unsafe {
        let mut ab = _mm256_setzero_ps();
        let mut bb = _mm256_setzero_ps();
        for c in 0..chunks {
            let base = c * 8;
            let qv = _mm256_loadu_ps(q.as_ptr().add(base));
            let w = load8(base);
            ab = _mm256_add_ps(ab, _mm256_mul_ps(qv, w));
            bb = _mm256_add_ps(bb, _mm256_mul_ps(w, w));
        }
        let mut sab = hsum8(ab);
        let mut sbb = hsum8(bb);
        for (j, &qj) in q.iter().enumerate().skip(chunks * 8) {
            let w = at(j);
            sab += qj * w;
            sbb += w * w;
        }
        (sab, sbb)
    }
}

// --- public kernels -----------------------------------------------------
// Safety for all: the caller must have verified the named target
// features at runtime and pass equal-length query/row slices.

/// # Safety
/// Requires `avx2`; `q.len() == r.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn l2_f32(q: &[f32], r: &[f32]) -> f32 {
    // SAFETY: `load8_f32` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. Features are this fn's own contract.
    let load8 = |base| unsafe { load8_f32(r, base) };
    // SAFETY: forwarded caller contract (target features + lengths).
    unsafe { l2_body(q, load8, |j| r[j]) }
}

/// # Safety
/// Requires `avx2`; `q.len() == r.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn dot_f32(q: &[f32], r: &[f32]) -> f32 {
    // SAFETY: `load8_f32` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. Features are this fn's own contract.
    let load8 = |base| unsafe { load8_f32(r, base) };
    // SAFETY: forwarded caller contract (target features + lengths).
    unsafe { dot_body(q, load8, |j| r[j]) }
}

/// # Safety
/// Requires `avx2`; `q.len() == r.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn dot_norm_f32(q: &[f32], r: &[f32]) -> (f32, f32) {
    // SAFETY: `load8_f32` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. Features are this fn's own contract.
    let load8 = |base| unsafe { load8_f32(r, base) };
    // SAFETY: forwarded caller contract (target features + lengths).
    unsafe { dot_norm_body(q, load8, |j| r[j]) }
}

/// # Safety
/// Requires `avx2` and `f16c`; `q.len() == r.len()`.
#[target_feature(enable = "avx2,f16c")]
pub unsafe fn l2_f16(q: &[f32], r: &[F16]) -> f32 {
    // SAFETY: `load8_f16` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. Features are this fn's own contract.
    let load8 = |base| unsafe { load8_f16(r, base) };
    // SAFETY: forwarded caller contract (target features + lengths).
    unsafe { l2_body(q, load8, |j| r[j].to_f32()) }
}

/// # Safety
/// Requires `avx2` and `f16c`; `q.len() == r.len()`.
#[target_feature(enable = "avx2,f16c")]
pub unsafe fn dot_f16(q: &[f32], r: &[F16]) -> f32 {
    // SAFETY: `load8_f16` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. Features are this fn's own contract.
    let load8 = |base| unsafe { load8_f16(r, base) };
    // SAFETY: forwarded caller contract (target features + lengths).
    unsafe { dot_body(q, load8, |j| r[j].to_f32()) }
}

/// # Safety
/// Requires `avx2` and `f16c`; `q.len() == r.len()`.
#[target_feature(enable = "avx2,f16c")]
pub unsafe fn dot_norm_f16(q: &[f32], r: &[F16]) -> (f32, f32) {
    // SAFETY: `load8_f16` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. Features are this fn's own contract.
    let load8 = |base| unsafe { load8_f16(r, base) };
    // SAFETY: forwarded caller contract (target features + lengths).
    unsafe { dot_norm_body(q, load8, |j| r[j].to_f32()) }
}

/// # Safety
/// Requires `avx2`; `q`, `codes`, `scales` all of equal length.
#[target_feature(enable = "avx2")]
pub unsafe fn l2_i8(q: &[f32], codes: &[i8], scales: &[f32]) -> f32 {
    // SAFETY: `load8_i8` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. Features are this fn's own contract.
    let load8 = |base| unsafe { load8_i8(codes, scales, base) };
    // SAFETY: forwarded caller contract (target features + lengths).
    unsafe { l2_body(q, load8, |j| codes[j] as f32 * scales[j]) }
}

/// # Safety
/// Requires `avx2`; `q`, `codes`, `scales` all of equal length.
#[target_feature(enable = "avx2")]
pub unsafe fn dot_i8(q: &[f32], codes: &[i8], scales: &[f32]) -> f32 {
    // SAFETY: `load8_i8` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees the row
    // is `q.len()` long. Features are this fn's own contract.
    let load8 = |base| unsafe { load8_i8(codes, scales, base) };
    // SAFETY: forwarded caller contract (target features + lengths).
    unsafe { dot_body(q, load8, |j| codes[j] as f32 * scales[j]) }
}

/// # Safety
/// Requires `avx2`; `q`, `codes`, `scales` all of equal length.
#[target_feature(enable = "avx2")]
pub unsafe fn dot_norm_i8(q: &[f32], codes: &[i8], scales: &[f32]) -> (f32, f32) {
    // SAFETY: `load8_i8` needs `base + 8 <= row len`; the body only
    // passes `base + 8 <= q.len()` and the caller guarantees codes and
    // scales are `q.len()` long. Features are this fn's own contract.
    let load8 = |base| unsafe { load8_i8(codes, scales, base) };
    // SAFETY: forwarded caller contract (target features + lengths).
    unsafe { dot_norm_body(q, load8, |j| codes[j] as f32 * scales[j]) }
}
