//! Vertex relabeling for memory locality.
//!
//! CAGRA's search loop is memory-bound: each expansion gathers one
//! fixed-degree adjacency row and then the neighbor vectors, so the
//! *numbering* of the nodes decides how many 128-bit transactions (and
//! CPU cache lines) every iteration costs. Renumbering the vertices so
//! that nodes visited together sit at nearby ids turns those gathers
//! into (partially) coalesced streams without changing the graph's
//! topology or the search results.
//!
//! Three classic orderings are provided:
//!
//! * [`RelabelStrategy::Degree`] — hub-first: sort by in-degree
//!   descending. Hubs are touched by almost every query, so packing
//!   them into a small id prefix keeps their adjacency rows and
//!   vectors resident in cache.
//! * [`RelabelStrategy::Rcm`] — reverse Cuthill–McKee: BFS over the
//!   symmetrized graph from a low-degree seed, visiting neighbors in
//!   increasing-degree order, then reversing. Minimizes bandwidth
//!   (max edge span), so a row's neighbors cluster near the row.
//! * [`RelabelStrategy::Gorder`] — greedy neighborhood packing: place
//!   nodes one at a time, always picking the candidate sharing the
//!   most adjacency with a sliding window of recently placed nodes
//!   (the priority score of the Gorder paper, computed over out- and
//!   in-edges).
//!
//! A relabel must be applied *jointly* — adjacency arrays, vector
//! rows, and entry points all move together — and search results must
//! come back in the original external ids. [`Permutation`] holds both
//! directions of the mapping; [`IdMap`] pairs it with the strategy tag
//! for persistence, and sits at the search boundary translating ids
//! with one array lookup (zero per-hop overhead).

use crate::fixed::FixedDegreeGraph;
use serde::{Deserialize, Serialize};

/// Which vertex ordering to compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelabelStrategy {
    /// Keep the original numbering (the no-op baseline).
    Identity,
    /// Hub-first: in-degree descending, ties by original id.
    Degree,
    /// Reverse Cuthill–McKee bandwidth reduction.
    Rcm,
    /// Gorder-style greedy sliding-window neighborhood packing.
    Gorder,
}

impl RelabelStrategy {
    /// All strategies, identity first.
    pub const ALL: [RelabelStrategy; 4] = [
        RelabelStrategy::Identity,
        RelabelStrategy::Degree,
        RelabelStrategy::Rcm,
        RelabelStrategy::Gorder,
    ];

    /// Short lowercase label used by the CLI and reports.
    pub fn label(self) -> &'static str {
        match self {
            RelabelStrategy::Identity => "identity",
            RelabelStrategy::Degree => "degree",
            RelabelStrategy::Rcm => "rcm",
            RelabelStrategy::Gorder => "gorder",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<RelabelStrategy> {
        Self::ALL.into_iter().find(|x| x.label() == s)
    }

    /// Stable one-byte tag for serialization (0 = identity).
    pub fn tag(self) -> u8 {
        match self {
            RelabelStrategy::Identity => 0,
            RelabelStrategy::Degree => 1,
            RelabelStrategy::Rcm => 2,
            RelabelStrategy::Gorder => 3,
        }
    }

    /// Inverse of [`RelabelStrategy::tag`].
    pub fn from_tag(t: u8) -> Option<RelabelStrategy> {
        Self::ALL.into_iter().find(|x| x.tag() == t)
    }
}

/// A bijection between the *old* (original/external) numbering and the
/// *new* (relabeled/internal) numbering, stored in both directions so
/// either lookup is one array access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    /// `new_of_old[old] = new`.
    new_of_old: Vec<u32>,
    /// `old_of_new[new] = old`.
    old_of_new: Vec<u32>,
}

impl Permutation {
    /// The identity permutation over `n` nodes.
    pub fn identity(n: usize) -> Permutation {
        let v: Vec<u32> = (0..n as u32).collect();
        Permutation { new_of_old: v.clone(), old_of_new: v }
    }

    /// Build from the `old_of_new` direction (the order in which old
    /// ids are laid out), validating that it is a bijection.
    ///
    /// # Panics
    /// Panics if `old_of_new` is not a permutation of `0..n`.
    pub fn from_old_of_new(old_of_new: Vec<u32>) -> Permutation {
        let n = old_of_new.len();
        let mut new_of_old = vec![u32::MAX; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            assert!((old as usize) < n, "id {old} out of range (n = {n})");
            assert!(new_of_old[old as usize] == u32::MAX, "id {old} appears twice");
            new_of_old[old as usize] = new as u32;
        }
        Permutation { new_of_old, old_of_new }
    }

    /// Build from the `new_of_old` direction, validating a bijection.
    ///
    /// # Panics
    /// Panics if `new_of_old` is not a permutation of `0..n`.
    pub fn from_new_of_old(new_of_old: Vec<u32>) -> Permutation {
        let inv = Permutation::from_old_of_new(new_of_old);
        Permutation { new_of_old: inv.old_of_new, old_of_new: inv.new_of_old }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// True for the zero-node permutation.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New (internal) id of an old (original) id.
    #[inline]
    pub fn new_of_old(&self, old: u32) -> u32 {
        self.new_of_old[old as usize]
    }

    /// Old (original) id of a new (internal) id.
    #[inline]
    pub fn old_of_new(&self, new: u32) -> u32 {
        self.old_of_new[new as usize]
    }

    /// The full `old_of_new` array (row `new` holds old id).
    pub fn old_of_new_slice(&self) -> &[u32] {
        &self.old_of_new
    }

    /// The full `new_of_old` array.
    pub fn new_of_old_slice(&self) -> &[u32] {
        &self.new_of_old
    }

    /// True when the permutation maps every id to itself.
    pub fn is_identity(&self) -> bool {
        self.new_of_old.iter().enumerate().all(|(i, &v)| i as u32 == v)
    }

    /// The inverse mapping (swaps the two directions).
    pub fn inverse(&self) -> Permutation {
        Permutation { new_of_old: self.old_of_new.clone(), old_of_new: self.new_of_old.clone() }
    }

    /// Composition: apply `self` first, then `next` (both must cover
    /// the same node count). `result.new_of_old(x) ==
    /// next.new_of_old(self.new_of_old(x))`.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn then(&self, next: &Permutation) -> Permutation {
        assert_eq!(self.len(), next.len(), "composing permutations of different sizes");
        let new_of_old: Vec<u32> =
            self.new_of_old.iter().map(|&mid| next.new_of_old(mid)).collect();
        Permutation::from_new_of_old(new_of_old)
    }
}

/// The search-boundary translator: a [`Permutation`] plus the strategy
/// that produced it (persisted alongside the index so a reloaded
/// bundle keeps reporting original ids).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdMap {
    /// old = original/external ids, new = internal layout ids.
    pub perm: Permutation,
    /// Strategy that produced `perm` (reporting + persistence tag).
    pub strategy: RelabelStrategy,
}

impl IdMap {
    /// Internal (layout) id of an original id.
    #[inline]
    pub fn internal_of_original(&self, original: u32) -> u32 {
        self.perm.new_of_old(original)
    }

    /// Original (external) id of an internal id.
    #[inline]
    pub fn original_of_internal(&self, internal: u32) -> u32 {
        self.perm.old_of_new(internal)
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True for the zero-node map.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }
}

/// Uniform read access over the two graph representations the
/// workspace uses (fixed-degree matrix and ragged lists).
trait NeighborAccess {
    fn node_count(&self) -> usize;
    fn row(&self, u: usize) -> &[u32];
}

impl NeighborAccess for FixedDegreeGraph {
    fn node_count(&self) -> usize {
        self.len()
    }
    fn row(&self, u: usize) -> &[u32] {
        self.neighbors(u)
    }
}

impl NeighborAccess for [Vec<u32>] {
    fn node_count(&self) -> usize {
        self.len()
    }
    fn row(&self, u: usize) -> &[u32] {
        &self[u]
    }
}

/// Compute the permutation a strategy induces on a fixed-degree graph.
pub fn compute_fixed(g: &FixedDegreeGraph, strategy: RelabelStrategy) -> Permutation {
    compute(g, strategy)
}

/// Compute the permutation a strategy induces on adjacency lists (the
/// shared entry point for the variable-degree baseline indexes).
pub fn compute_lists(lists: &[Vec<u32>], strategy: RelabelStrategy) -> Permutation {
    compute(lists, strategy)
}

fn compute<G: NeighborAccess + ?Sized>(g: &G, strategy: RelabelStrategy) -> Permutation {
    match strategy {
        RelabelStrategy::Identity => Permutation::identity(g.node_count()),
        RelabelStrategy::Degree => degree_order(g),
        RelabelStrategy::Rcm => rcm_order(g),
        RelabelStrategy::Gorder => gorder(g),
    }
}

fn in_degrees<G: NeighborAccess + ?Sized>(g: &G) -> Vec<u32> {
    let mut deg = vec![0u32; g.node_count()];
    for u in 0..g.node_count() {
        for &v in g.row(u) {
            deg[v as usize] += 1;
        }
    }
    deg
}

/// Hub-first: stable sort by in-degree descending. In-degree (not
/// out-degree, which is constant for CAGRA graphs) measures how often
/// a node is *gathered*, which is what cache residency rewards.
fn degree_order<G: NeighborAccess + ?Sized>(g: &G) -> Permutation {
    let deg = in_degrees(g);
    let mut order: Vec<u32> = (0..g.node_count() as u32).collect();
    order.sort_by_key(|&u| (std::cmp::Reverse(deg[u as usize]), u));
    Permutation::from_old_of_new(order)
}

/// Symmetrized adjacency (out ∪ in), deduplicated and sorted, which
/// both RCM and Gorder traverse: locality matters for whoever touches
/// a row, regardless of edge direction.
fn symmetrize<G: NeighborAccess + ?Sized>(g: &G) -> Vec<Vec<u32>> {
    let n = g.node_count();
    let mut sym: Vec<Vec<u32>> = vec![Vec::new(); n];
    for u in 0..n {
        for &v in g.row(u) {
            if v as usize != u {
                sym[u].push(v);
                sym[v as usize].push(u as u32);
            }
        }
    }
    for row in &mut sym {
        row.sort_unstable();
        row.dedup();
    }
    sym
}

/// Reverse Cuthill–McKee: BFS from a minimum-degree seed, visiting
/// neighbors in increasing symmetric-degree order, final order
/// reversed. Deterministic: every tie breaks on the original id.
fn rcm_order<G: NeighborAccess + ?Sized>(g: &G) -> Permutation {
    let n = g.node_count();
    let sym = symmetrize(g);
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut frontier: Vec<u32> = Vec::new();

    // Seeds in (degree, id) order, so each new component starts from
    // its lowest-degree node, as classic RCM prescribes.
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_by_key(|&u| (sym[u as usize].len(), u));

    for &seed in &seeds {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        order.push(seed);
        let mut head = order.len() - 1;
        while head < order.len() {
            let u = order[head];
            head += 1;
            frontier.clear();
            for &v in &sym[u as usize] {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    frontier.push(v);
                }
            }
            frontier.sort_by_key(|&v| (sym[v as usize].len(), v));
            order.extend_from_slice(&frontier);
        }
    }
    order.reverse();
    Permutation::from_old_of_new(order)
}

/// Sliding-window width for [`gorder`]: how many recently placed nodes
/// contribute to a candidate's score (the Gorder paper uses w = 5; 8
/// keeps whole 128-byte lines of small adjacency rows in scope).
const GORDER_WINDOW: usize = 8;

/// Gorder-style greedy placement: repeatedly append the unplaced node
/// with the highest shared-neighborhood score against the last
/// [`GORDER_WINDOW`] placed nodes (score = # of symmetric edges into
/// the window). Lazy max-heap keeps each step near O(d log n).
fn gorder<G: NeighborAccess + ?Sized>(g: &G) -> Permutation {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = g.node_count();
    let sym = symmetrize(g);
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut score = vec![0u32; n];
    // Max-heap of (score, smaller-id-wins) with lazy invalidation: an
    // entry is trusted only if its score matches the current score.
    let mut heap: BinaryHeap<(u32, Reverse<u32>)> = BinaryHeap::new();
    // Seed order for exhausted phases: hubs first, so disconnected
    // pockets still start from their most-shared node.
    let deg_perm = degree_order(g);
    let mut seed_cursor = 0usize;

    while order.len() < n {
        // Pick the best-scored unplaced node, or the next seed if no
        // candidate currently shares anything with the window.
        let pick = loop {
            match heap.pop() {
                Some((s, Reverse(u))) => {
                    if placed[u as usize] {
                        continue;
                    }
                    if score[u as usize] != s {
                        // Stale score (a window slide changed it):
                        // re-queue at the current value.
                        heap.push((score[u as usize], Reverse(u)));
                        continue;
                    }
                    if s == 0 {
                        break None; // nothing shares with the window
                    }
                    break Some(u);
                }
                None => break None,
            }
        };
        let u = pick.unwrap_or_else(|| {
            while placed[deg_perm.old_of_new(seed_cursor as u32) as usize] {
                seed_cursor += 1;
            }
            deg_perm.old_of_new(seed_cursor as u32)
        });

        placed[u as usize] = true;
        order.push(u);
        // The window slides: u's neighbors gain a share, the neighbors
        // of the node falling out of the window lose theirs.
        for &v in &sym[u as usize] {
            if !placed[v as usize] {
                score[v as usize] += 1;
                heap.push((score[v as usize], Reverse(v)));
            }
        }
        if order.len() > GORDER_WINDOW {
            let out = order[order.len() - 1 - GORDER_WINDOW];
            for &v in &sym[out as usize] {
                if !placed[v as usize] {
                    score[v as usize] -= 1;
                    // No push: the stale higher entry re-queues itself
                    // on pop via the score check above.
                }
            }
        }
    }
    Permutation::from_old_of_new(order)
}

/// Apply a permutation to a fixed-degree graph: row `new` of the
/// result is the (id-mapped) row of old node `old_of_new[new]`, with
/// the within-row neighbor order preserved — required for bit-exact
/// search parity, since expansion consumes rows in stored order.
///
/// # Panics
/// Panics if the permutation size differs from the graph size.
pub fn apply_to_fixed(g: &FixedDegreeGraph, perm: &Permutation) -> FixedDegreeGraph {
    assert_eq!(
        g.len(),
        perm.len(),
        "permutation covers {} nodes, graph has {}",
        perm.len(),
        g.len()
    );
    let n = g.len();
    let d = g.degree();
    let mut flat = vec![0u32; n * d];
    for new_u in 0..n {
        let old_u = perm.old_of_new(new_u as u32) as usize;
        let dst = &mut flat[new_u * d..(new_u + 1) * d];
        for (slot, &old_v) in dst.iter_mut().zip(g.neighbors(old_u)) {
            *slot = perm.new_of_old(old_v);
        }
    }
    FixedDegreeGraph::from_flat_unchecked(flat, n, d)
}

/// [`apply_to_fixed`] for ragged adjacency lists (the baselines).
///
/// # Panics
/// Panics if the permutation size differs from the list count.
pub fn apply_to_lists(lists: &[Vec<u32>], perm: &Permutation) -> Vec<Vec<u32>> {
    assert_eq!(lists.len(), perm.len(), "permutation/list size mismatch");
    (0..lists.len())
        .map(|new_u| {
            lists[perm.old_of_new(new_u as u32) as usize]
                .iter()
                .map(|&old_v| perm.new_of_old(old_v))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, degree: usize) -> FixedDegreeGraph {
        let rows: Vec<Vec<u32>> =
            (0..n).map(|i| (1..=degree).map(|k| ((i + k) % n) as u32).collect()).collect();
        FixedDegreeGraph::from_rows(&rows, degree)
    }

    /// Every strategy must yield a valid bijection on every graph.
    fn assert_bijection(p: &Permutation, n: usize) {
        assert_eq!(p.len(), n);
        for old in 0..n as u32 {
            assert_eq!(p.old_of_new(p.new_of_old(old)), old);
        }
    }

    #[test]
    fn identity_maps_everything_to_itself() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.new_of_old(3), 3);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::from_old_of_new(vec![2, 0, 3, 1]);
        let inv = p.inverse();
        assert_eq!(p.then(&inv), Permutation::identity(4));
        assert_eq!(inv.inverse(), p);
        assert!(!p.is_identity());
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_id_rejected() {
        Permutation::from_old_of_new(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_rejected() {
        Permutation::from_old_of_new(vec![0, 3]);
    }

    #[test]
    fn composition_applies_in_order() {
        let a = Permutation::from_new_of_old(vec![1, 2, 0]); // 0→1, 1→2, 2→0
        let b = Permutation::from_new_of_old(vec![0, 2, 1]); // swap 1,2
        let c = a.then(&b);
        assert_eq!(c.new_of_old(0), 2); // a: 0→1, b: 1→2
        assert_eq!(c.new_of_old(1), 1);
        assert_eq!(c.new_of_old(2), 0);
    }

    #[test]
    fn every_strategy_is_a_bijection() {
        let g = ring(37, 3);
        for s in RelabelStrategy::ALL {
            assert_bijection(&compute_fixed(&g, s), 37);
        }
    }

    #[test]
    fn degree_puts_hubs_first() {
        // Node 0 is pointed at by everyone; node 1 by nobody extra.
        let rows: Vec<Vec<u32>> = (0..8).map(|i| vec![0u32, ((i + 1) % 8) as u32]).collect();
        let g = FixedDegreeGraph::from_rows(&rows, 2);
        let p = compute_fixed(&g, RelabelStrategy::Degree);
        assert_eq!(p.new_of_old(0), 0, "highest in-degree node must come first");
    }

    #[test]
    fn rcm_reduces_bandwidth_on_a_shuffled_path() {
        // A path graph numbered badly: edge spans are huge. RCM must
        // bring the maximum span down to a small constant.
        let n = 64usize;
        // Shuffle: old id = bit-reversed position (deterministic mess).
        let bits = 6;
        let shuffled: Vec<u32> = (0..n as u32).map(|i| i.reverse_bits() >> (32 - bits)).collect();
        // Path i — i+1 in *shuffled* labels, as a degree-2 ring minus
        // wraparound (self-loop padding keeps the degree fixed).
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        for w in shuffled.windows(2) {
            rows[w[0] as usize].push(w[1]);
            rows[w[1] as usize].push(w[0]);
        }
        for (i, row) in rows.iter_mut().enumerate() {
            while row.len() < 2 {
                row.push(shuffled[if i == 0 { 1 } else { 0 }]); // filler edge
            }
            row.truncate(2);
        }
        let g = FixedDegreeGraph::from_rows(&rows, 2);
        let span = |g: &FixedDegreeGraph| -> u32 {
            (0..g.len())
                .flat_map(|u| {
                    g.neighbors(u).iter().map(move |&v| (u as i64 - v as i64).unsigned_abs() as u32)
                })
                .max()
                .unwrap()
        };
        let before = span(&g);
        let p = compute_fixed(&g, RelabelStrategy::Rcm);
        let after = span(&apply_to_fixed(&g, &p));
        assert!(after < before / 2, "rcm bandwidth {after} not well below {before}");
    }

    #[test]
    fn gorder_packs_shared_neighborhoods() {
        // Two cliques glued by one edge: Gorder must place each clique
        // contiguously (mean edge span ~1 within cliques).
        let clique = |base: u32, ids: &[u32]| -> Vec<Vec<u32>> {
            ids.iter()
                .map(|&i| ids.iter().copied().filter(|&j| j != i).chain([base]).take(5).collect())
                .collect()
        };
        // Interleave the two cliques' ids so the original layout is bad.
        let a = [0u32, 2, 4, 6, 8, 10];
        let b = [1u32, 3, 5, 7, 9, 11];
        let mut rows = vec![Vec::new(); 12];
        for (ids, other0) in [(&a, b[0]), (&b, a[0])] {
            for (i, row) in clique(other0, ids).into_iter().enumerate() {
                rows[ids[i] as usize] = row;
            }
        }
        let g = FixedDegreeGraph::from_rows(&rows, 5);
        let p = compute_fixed(&g, RelabelStrategy::Gorder);
        let relabeled = apply_to_fixed(&g, &p);
        let mean_span = |g: &FixedDegreeGraph| -> f64 {
            let mut total = 0u64;
            let mut edges = 0u64;
            for u in 0..g.len() {
                for &v in g.neighbors(u) {
                    total += (u as i64 - v as i64).unsigned_abs();
                    edges += 1;
                }
            }
            total as f64 / edges as f64
        };
        assert!(
            mean_span(&relabeled) < mean_span(&g),
            "gorder span {} vs original {}",
            mean_span(&relabeled),
            mean_span(&g)
        );
    }

    #[test]
    fn apply_preserves_edges_and_row_order() {
        let g = ring(10, 3);
        for s in [RelabelStrategy::Degree, RelabelStrategy::Rcm, RelabelStrategy::Gorder] {
            let p = compute_fixed(&g, s);
            let h = apply_to_fixed(&g, &p);
            assert_eq!(h.len(), g.len());
            assert_eq!(h.degree(), g.degree());
            for old_u in 0..g.len() {
                let new_u = p.new_of_old(old_u as u32) as usize;
                let mapped: Vec<u32> =
                    g.neighbors(old_u).iter().map(|&v| p.new_of_old(v)).collect();
                // Same neighbors in the same stored order.
                assert_eq!(h.neighbors(new_u), &mapped[..], "strategy {s:?} node {old_u}");
            }
        }
    }

    #[test]
    fn apply_to_lists_matches_fixed() {
        let g = ring(12, 2);
        let lists: Vec<Vec<u32>> = (0..12).map(|u| g.neighbors(u).to_vec()).collect();
        let p = compute_lists(&lists, RelabelStrategy::Rcm);
        let pf = compute_fixed(&g, RelabelStrategy::Rcm);
        assert_eq!(p, pf, "same graph, same permutation");
        let relabeled = apply_to_lists(&lists, &p);
        let fixed = apply_to_fixed(&g, &p);
        for (u, row) in relabeled.iter().enumerate() {
            assert_eq!(row, fixed.neighbors(u));
        }
    }

    #[test]
    fn strategy_labels_round_trip() {
        for s in RelabelStrategy::ALL {
            assert_eq!(RelabelStrategy::parse(s.label()), Some(s));
            assert_eq!(RelabelStrategy::from_tag(s.tag()), Some(s));
        }
        assert_eq!(RelabelStrategy::parse("nope"), None);
        assert_eq!(RelabelStrategy::from_tag(9), None);
    }

    #[test]
    fn id_map_translates_both_ways() {
        let m = IdMap {
            perm: Permutation::from_old_of_new(vec![2, 0, 1]),
            strategy: RelabelStrategy::Degree,
        };
        assert_eq!(m.len(), 3);
        assert_eq!(m.original_of_internal(0), 2);
        assert_eq!(m.internal_of_original(2), 0);
        for orig in 0..3 {
            assert_eq!(m.original_of_internal(m.internal_of_original(orig)), orig);
        }
    }

    #[test]
    fn empty_graph_permutations() {
        for s in RelabelStrategy::ALL {
            let p = compute_lists(&[], s);
            assert!(p.is_empty());
            assert!(p.is_identity());
        }
    }
}
