//! Graph substrate for the CAGRA reproduction.
//!
//! CAGRA's central data structure is a *fixed out-degree* directed
//! graph stored as a dense `N x d` neighbor matrix ([`FixedDegreeGraph`])
//! — the layout that makes GPU traversal uniform. Baselines use the
//! variable-degree [`AdjacencyGraph`]. The analysis modules implement
//! the two reachability metrics of Sec. III-A: strongly connected
//! component counting ([`scc`]) and the average 2-hop node count
//! ([`two_hop`]).

pub mod adj;
pub mod fixed;
pub mod io;
pub mod relabel;
pub mod scc;
pub mod stats;
pub mod two_hop;

pub use adj::AdjacencyGraph;
pub use fixed::FixedDegreeGraph;
pub use relabel::{IdMap, Permutation, RelabelStrategy};
