//! Summary statistics used by the Fig. 3 experiment and DESIGN checks.

use crate::adj::AdjacencyGraph;
use crate::scc::strongly_connected_components;
use crate::two_hop::average_two_hop_sampled;

/// Reachability metrics for a proximity graph (Sec. III-A).
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Number of nodes.
    pub n: usize,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Number of strongly connected components (smaller is better).
    pub strong_cc: usize,
    /// Fraction of nodes in the largest strong component.
    pub largest_cc_fraction: f64,
    /// Average 2-hop node count (larger is better).
    pub avg_two_hop: f64,
}

/// Compute all reachability metrics. `two_hop_stride` samples the
/// 2-hop average (1 = exact).
pub fn graph_stats(g: &AdjacencyGraph, two_hop_stride: usize) -> GraphStats {
    let scc = strongly_connected_components(g);
    let n = g.len();
    GraphStats {
        n,
        avg_degree: g.average_degree(),
        strong_cc: scc.count,
        largest_cc_fraction: if n == 0 { 0.0 } else { scc.largest() as f64 / n as f64 },
        avg_two_hop: average_two_hop_sampled(g, two_hop_stride),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_a_cycle() {
        let lists: Vec<Vec<u32>> = (0..6).map(|i| vec![((i + 1) % 6) as u32]).collect();
        let s = graph_stats(&AdjacencyGraph::from_lists(&lists), 1);
        assert_eq!(s.n, 6);
        assert_eq!(s.strong_cc, 1);
        assert_eq!(s.largest_cc_fraction, 1.0);
        assert_eq!(s.avg_degree, 1.0);
        assert_eq!(s.avg_two_hop, 2.0);
    }

    #[test]
    fn stats_on_disconnected_graph() {
        let s = graph_stats(&AdjacencyGraph::from_lists(&[vec![], vec![]]), 1);
        assert_eq!(s.strong_cc, 2);
        assert_eq!(s.largest_cc_fraction, 0.5);
        assert_eq!(s.avg_two_hop, 0.0);
    }

    #[test]
    fn stats_on_empty_graph() {
        let s = graph_stats(&AdjacencyGraph::from_lists(&[]), 1);
        assert_eq!(s.n, 0);
        assert_eq!(s.strong_cc, 0);
        assert_eq!(s.largest_cc_fraction, 0.0);
    }
}

/// In-degree distribution summary. The NSW "hub" problem the paper
/// cites as HNSW's motivation (Sec. I) shows up as heavy in-degree
/// skew; CAGRA's reverse-edge cap keeps skew moderate even though only
/// *out*-degree is fixed.
#[derive(Clone, Debug)]
pub struct InDegreeStats {
    /// Maximum in-degree.
    pub max: u32,
    /// Mean in-degree (equals mean out-degree).
    pub mean: f64,
    /// Gini coefficient of the in-degree distribution (0 = perfectly
    /// uniform, →1 = a few hubs own every edge).
    pub gini: f64,
}

/// Compute the in-degree distribution summary of `g`.
pub fn in_degree_stats(g: &AdjacencyGraph) -> InDegreeStats {
    let n = g.len();
    if n == 0 {
        return InDegreeStats { max: 0, mean: 0.0, gini: 0.0 };
    }
    let mut deg = vec![0u32; n];
    for u in 0..n {
        for &v in g.neighbors(u) {
            deg[v as usize] += 1;
        }
    }
    let max = deg.iter().copied().max().unwrap_or(0);
    let total: u64 = deg.iter().map(|&d| d as u64).sum();
    let mean = total as f64 / n as f64;
    // Gini via the sorted-rank formula.
    deg.sort_unstable();
    let gini = if total == 0 {
        0.0
    } else {
        let weighted: f64 = deg.iter().enumerate().map(|(i, &d)| (i as f64 + 1.0) * d as f64).sum();
        (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
    };
    InDegreeStats { max, mean, gini }
}

/// Memory-locality metrics of a node numbering (the `relabel` module
/// exists to improve these). All three are pure functions of the
/// layout: relabeling changes them, the topology does not.
#[derive(Clone, Debug)]
pub struct LocalityStats {
    /// Mean |u − v| over all directed edges: how far an expansion
    /// jumps through the id space on average.
    pub mean_edge_span: f64,
    /// Maximum |u − v| over all edges (the matrix bandwidth).
    pub bandwidth: u32,
    /// Estimated 128-bit (16-byte) memory transactions needed to gather
    /// one adjacency row's neighbor *vectors*, averaged over rows:
    /// distinct 128-byte lines touched × 8, assuming `vec_row_bytes`
    /// per vector and a cold cache. Neighbors packed into adjacent ids
    /// share lines (when vectors are small) and lower this.
    pub est_row_transactions: f64,
}

/// 128-byte cache-line size the transaction estimate assumes (matches
/// the GPU L2 line / 8 × 16-byte transactions).
const LINE_BYTES: u64 = 128;

/// Compute [`LocalityStats`] for a fixed-degree graph whose vectors
/// occupy `vec_row_bytes` each.
pub fn locality_stats(g: &crate::fixed::FixedDegreeGraph, vec_row_bytes: usize) -> LocalityStats {
    let n = g.len();
    let mut total_span = 0u64;
    let mut edges = 0u64;
    let mut bandwidth = 0u32;
    let mut total_lines = 0u64;
    let mut lines: Vec<u64> = Vec::with_capacity(g.degree() * 4);
    for u in 0..n {
        lines.clear();
        for &v in g.neighbors(u) {
            let span = (u as i64 - v as i64).unsigned_abs();
            total_span += span;
            bandwidth = bandwidth.max(span as u32);
            edges += 1;
            // 128-byte lines covered by neighbor v's vector row.
            let start = v as u64 * vec_row_bytes as u64;
            let end = start + vec_row_bytes as u64;
            let mut line = start / LINE_BYTES;
            while line * LINE_BYTES < end {
                lines.push(line);
                line += 1;
            }
        }
        lines.sort_unstable();
        lines.dedup();
        total_lines += lines.len() as u64;
    }
    LocalityStats {
        mean_edge_span: if edges == 0 { 0.0 } else { total_span as f64 / edges as f64 },
        bandwidth,
        est_row_transactions: if n == 0 {
            0.0
        } else {
            (total_lines * (LINE_BYTES / 16)) as f64 / n as f64
        },
    }
}

#[cfg(test)]
mod locality_tests {
    use super::*;
    use crate::fixed::FixedDegreeGraph;

    #[test]
    fn ring_locality_is_tight() {
        // Ring of shift-1/shift-2 edges: spans 1 and 2 except wraps.
        let rows: Vec<Vec<u32>> = (0..8u32).map(|i| vec![(i + 1) % 8, (i + 2) % 8]).collect();
        let g = FixedDegreeGraph::from_rows(&rows, 2);
        let s = locality_stats(&g, 32);
        assert_eq!(s.bandwidth, 7); // the wraparound edge
        assert!(s.mean_edge_span < 3.0, "mean span {}", s.mean_edge_span);
        // 32-byte rows: adjacent neighbors share a 128-byte line, so
        // well under 2 lines (16 tx) per row.
        assert!(s.est_row_transactions <= 16.0, "{}", s.est_row_transactions);
    }

    #[test]
    fn scattered_layout_costs_more_transactions() {
        // Same topology, neighbors numbered far apart.
        let near = FixedDegreeGraph::from_rows(
            &(0..16u32).map(|i| vec![(i + 1) % 16, (i + 2) % 16]).collect::<Vec<_>>(),
            2,
        );
        let far = FixedDegreeGraph::from_rows(
            &(0..16u32).map(|i| vec![(i + 7) % 16, (i + 11) % 16]).collect::<Vec<_>>(),
            2,
        );
        let sn = locality_stats(&near, 32);
        let sf = locality_stats(&far, 32);
        assert!(sn.mean_edge_span < sf.mean_edge_span);
        assert!(sn.est_row_transactions <= sf.est_row_transactions);
    }

    #[test]
    fn large_vectors_never_share_lines() {
        // 512-byte rows: every neighbor costs exactly 512/16 = 32 tx.
        let g = FixedDegreeGraph::from_rows(
            &(0..8u32).map(|i| vec![(i + 1) % 8]).collect::<Vec<_>>(),
            1,
        );
        let s = locality_stats(&g, 512);
        assert_eq!(s.est_row_transactions, 32.0);
    }

    #[test]
    fn empty_graph_is_zeroed() {
        let g = FixedDegreeGraph::from_flat(Vec::new(), 0, 1);
        let s = locality_stats(&g, 32);
        assert_eq!(s.bandwidth, 0);
        assert_eq!(s.mean_edge_span, 0.0);
        assert_eq!(s.est_row_transactions, 0.0);
    }
}

#[cfg(test)]
mod in_degree_tests {
    use super::*;

    #[test]
    fn uniform_ring_has_zero_gini() {
        let lists: Vec<Vec<u32>> = (0..8).map(|i| vec![((i + 1) % 8) as u32]).collect();
        let s = in_degree_stats(&AdjacencyGraph::from_lists(&lists));
        assert_eq!(s.max, 1);
        assert!((s.mean - 1.0).abs() < 1e-12);
        assert!(s.gini.abs() < 1e-9, "gini {}", s.gini);
    }

    #[test]
    fn star_graph_has_high_gini() {
        // Everyone points at node 0.
        let lists: Vec<Vec<u32>> = (0..10).map(|i| if i == 0 { vec![] } else { vec![0] }).collect();
        let s = in_degree_stats(&AdjacencyGraph::from_lists(&lists));
        assert_eq!(s.max, 9);
        assert!(s.gini > 0.85, "gini {}", s.gini);
    }

    #[test]
    fn empty_graph_is_zeroed() {
        let s = in_degree_stats(&AdjacencyGraph::from_lists(&[]));
        assert_eq!((s.max, s.mean, s.gini), (0, 0.0, 0.0));
    }
}
