//! Summary statistics used by the Fig. 3 experiment and DESIGN checks.

use crate::adj::AdjacencyGraph;
use crate::scc::strongly_connected_components;
use crate::two_hop::average_two_hop_sampled;

/// Reachability metrics for a proximity graph (Sec. III-A).
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Number of nodes.
    pub n: usize,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Number of strongly connected components (smaller is better).
    pub strong_cc: usize,
    /// Fraction of nodes in the largest strong component.
    pub largest_cc_fraction: f64,
    /// Average 2-hop node count (larger is better).
    pub avg_two_hop: f64,
}

/// Compute all reachability metrics. `two_hop_stride` samples the
/// 2-hop average (1 = exact).
pub fn graph_stats(g: &AdjacencyGraph, two_hop_stride: usize) -> GraphStats {
    let scc = strongly_connected_components(g);
    let n = g.len();
    GraphStats {
        n,
        avg_degree: g.average_degree(),
        strong_cc: scc.count,
        largest_cc_fraction: if n == 0 { 0.0 } else { scc.largest() as f64 / n as f64 },
        avg_two_hop: average_two_hop_sampled(g, two_hop_stride),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_a_cycle() {
        let lists: Vec<Vec<u32>> = (0..6).map(|i| vec![((i + 1) % 6) as u32]).collect();
        let s = graph_stats(&AdjacencyGraph::from_lists(&lists), 1);
        assert_eq!(s.n, 6);
        assert_eq!(s.strong_cc, 1);
        assert_eq!(s.largest_cc_fraction, 1.0);
        assert_eq!(s.avg_degree, 1.0);
        assert_eq!(s.avg_two_hop, 2.0);
    }

    #[test]
    fn stats_on_disconnected_graph() {
        let s = graph_stats(&AdjacencyGraph::from_lists(&[vec![], vec![]]), 1);
        assert_eq!(s.strong_cc, 2);
        assert_eq!(s.largest_cc_fraction, 0.5);
        assert_eq!(s.avg_two_hop, 0.0);
    }

    #[test]
    fn stats_on_empty_graph() {
        let s = graph_stats(&AdjacencyGraph::from_lists(&[]), 1);
        assert_eq!(s.n, 0);
        assert_eq!(s.strong_cc, 0);
        assert_eq!(s.largest_cc_fraction, 0.0);
    }
}

/// In-degree distribution summary. The NSW "hub" problem the paper
/// cites as HNSW's motivation (Sec. I) shows up as heavy in-degree
/// skew; CAGRA's reverse-edge cap keeps skew moderate even though only
/// *out*-degree is fixed.
#[derive(Clone, Debug)]
pub struct InDegreeStats {
    /// Maximum in-degree.
    pub max: u32,
    /// Mean in-degree (equals mean out-degree).
    pub mean: f64,
    /// Gini coefficient of the in-degree distribution (0 = perfectly
    /// uniform, →1 = a few hubs own every edge).
    pub gini: f64,
}

/// Compute the in-degree distribution summary of `g`.
pub fn in_degree_stats(g: &AdjacencyGraph) -> InDegreeStats {
    let n = g.len();
    if n == 0 {
        return InDegreeStats { max: 0, mean: 0.0, gini: 0.0 };
    }
    let mut deg = vec![0u32; n];
    for u in 0..n {
        for &v in g.neighbors(u) {
            deg[v as usize] += 1;
        }
    }
    let max = deg.iter().copied().max().unwrap_or(0);
    let total: u64 = deg.iter().map(|&d| d as u64).sum();
    let mean = total as f64 / n as f64;
    // Gini via the sorted-rank formula.
    deg.sort_unstable();
    let gini = if total == 0 {
        0.0
    } else {
        let weighted: f64 = deg.iter().enumerate().map(|(i, &d)| (i as f64 + 1.0) * d as f64).sum();
        (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
    };
    InDegreeStats { max, mean, gini }
}

#[cfg(test)]
mod in_degree_tests {
    use super::*;

    #[test]
    fn uniform_ring_has_zero_gini() {
        let lists: Vec<Vec<u32>> = (0..8).map(|i| vec![((i + 1) % 8) as u32]).collect();
        let s = in_degree_stats(&AdjacencyGraph::from_lists(&lists));
        assert_eq!(s.max, 1);
        assert!((s.mean - 1.0).abs() < 1e-12);
        assert!(s.gini.abs() < 1e-9, "gini {}", s.gini);
    }

    #[test]
    fn star_graph_has_high_gini() {
        // Everyone points at node 0.
        let lists: Vec<Vec<u32>> = (0..10).map(|i| if i == 0 { vec![] } else { vec![0] }).collect();
        let s = in_degree_stats(&AdjacencyGraph::from_lists(&lists));
        assert_eq!(s.max, 9);
        assert!(s.gini > 0.85, "gini {}", s.gini);
    }

    #[test]
    fn empty_graph_is_zeroed() {
        let s = in_degree_stats(&AdjacencyGraph::from_lists(&[]));
        assert_eq!((s.max, s.mean, s.gini), (0, 0.0, 0.0));
    }
}
