//! Binary serialization for graphs.
//!
//! Built indexes are reusable across runs (the paper stresses that a
//! proximity graph is constructed once and searched many times), so a
//! compact little-endian format is provided:
//!
//! ```text
//! magic "CAGR" | version u32 | n u64 | degree u64 | n*degree u32 ids
//! ```

use crate::fixed::FixedDegreeGraph;
use bytes::{Buf, BufMut};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CAGR";
const VERSION: u32 = 1;

/// Serialize a fixed-degree graph.
pub fn write_fixed<W: Write>(mut w: W, g: &FixedDegreeGraph) -> io::Result<()> {
    let mut header = Vec::with_capacity(4 + 4 + 16);
    header.put_slice(MAGIC);
    header.put_u32_le(VERSION);
    header.put_u64_le(g.len() as u64);
    header.put_u64_le(g.degree() as u64);
    w.write_all(&header)?;
    // Stream the body in chunks to bound memory.
    let mut buf = Vec::with_capacity(64 * 1024);
    for chunk in g.as_flat().chunks(16 * 1024) {
        buf.clear();
        for &v in chunk {
            buf.put_u32_le(v);
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Deserialize a fixed-degree graph.
pub fn read_fixed<R: Read>(mut r: R) -> io::Result<FixedDegreeGraph> {
    let mut header = [0u8; 4 + 4 + 16];
    r.read_exact(&mut header)?;
    let mut cursor = &header[..];
    let mut magic = [0u8; 4];
    cursor.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad graph magic"));
    }
    let version = cursor.get_u32_le();
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported graph version {version}"),
        ));
    }
    let n = cursor.get_u64_le() as usize;
    let degree = cursor.get_u64_le() as usize;
    let total = n
        .checked_mul(degree)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "graph size overflow"))?;
    let mut body = vec![0u8; total * 4];
    r.read_exact(&mut body)?;
    let neighbors = body
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect::<Vec<_>>();
    if neighbors.iter().any(|&v| (v as usize) >= n) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "neighbor id out of range"));
    }
    Ok(FixedDegreeGraph::from_flat(neighbors, n, degree))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = FixedDegreeGraph::from_flat(vec![1, 2, 2, 0, 0, 1], 3, 2);
        let mut buf = Vec::new();
        write_fixed(&mut buf, &g).unwrap();
        let back = read_fixed(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_fixed(&mut buf, &FixedDegreeGraph::from_flat(vec![0], 1, 1)).unwrap();
        buf[0] = b'X';
        assert!(read_fixed(&buf[..]).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_fixed(&mut buf, &FixedDegreeGraph::from_flat(vec![0], 1, 1)).unwrap();
        buf[4] = 99;
        assert!(read_fixed(&buf[..]).is_err());
    }

    #[test]
    fn truncated_body_rejected() {
        let mut buf = Vec::new();
        write_fixed(&mut buf, &FixedDegreeGraph::from_flat(vec![1, 0, 0, 1], 2, 2)).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_fixed(&buf[..]).is_err());
    }

    #[test]
    fn corrupt_neighbor_id_rejected() {
        let mut buf = Vec::new();
        write_fixed(&mut buf, &FixedDegreeGraph::from_flat(vec![1, 0], 2, 1)).unwrap();
        let last = buf.len() - 4;
        buf[last..].copy_from_slice(&77u32.to_le_bytes());
        assert!(read_fixed(&buf[..]).is_err());
    }
}
