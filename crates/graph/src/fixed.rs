//! Fixed out-degree directed graph — the CAGRA graph layout.
//!
//! Every node has exactly `degree` out-edges stored contiguously, so
//! the whole graph is one `n * degree` index array. This uniformity is
//! what lets the GPU kernel (and our simulator) assign identical work
//! to every traversal step with no load imbalance (Sec. III of the
//! paper).

/// Dense `n x degree` directed graph over node ids `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedDegreeGraph {
    neighbors: Vec<u32>,
    degree: usize,
    n: usize,
}

impl FixedDegreeGraph {
    /// Build from a flat row-major neighbor array.
    ///
    /// # Panics
    /// Panics if the buffer shape is inconsistent or any id is out of
    /// range.
    pub fn from_flat(neighbors: Vec<u32>, n: usize, degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        assert_eq!(neighbors.len(), n * degree, "neighbor buffer shape mismatch");
        assert!(neighbors.iter().all(|&v| (v as usize) < n), "neighbor id out of range (n = {n})");
        FixedDegreeGraph { neighbors, degree, n }
    }

    /// [`FixedDegreeGraph::from_flat`] for buffers whose ids are
    /// in-range by construction (e.g. filled from an already-validated
    /// graph): skips the O(n·d) id scan in release builds but keeps it
    /// as a debug assertion.
    pub fn from_flat_unchecked(neighbors: Vec<u32>, n: usize, degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        assert_eq!(neighbors.len(), n * degree, "neighbor buffer shape mismatch");
        debug_assert!(
            neighbors.iter().all(|&v| (v as usize) < n),
            "neighbor id out of range (n = {n})"
        );
        FixedDegreeGraph { neighbors, degree, n }
    }

    /// Build from per-node neighbor rows.
    ///
    /// # Panics
    /// Panics if any row length differs from `degree`.
    pub fn from_rows(rows: &[Vec<u32>], degree: usize) -> Self {
        let n = rows.len();
        let mut flat = Vec::with_capacity(n * degree);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), degree, "row {i} has wrong degree");
            flat.extend_from_slice(row);
        }
        Self::from_flat(flat, n, degree)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Fixed out-degree `d`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Out-neighbors of `node`.
    #[inline]
    pub fn neighbors(&self, node: usize) -> &[u32] {
        &self.neighbors[node * self.degree..(node + 1) * self.degree]
    }

    /// Mutable out-neighbors of `node`.
    #[inline]
    pub fn neighbors_mut(&mut self, node: usize) -> &mut [u32] {
        &mut self.neighbors[node * self.degree..(node + 1) * self.degree]
    }

    /// The flat neighbor buffer.
    pub fn as_flat(&self) -> &[u32] {
        &self.neighbors
    }

    /// In-degree of every node (not fixed — CAGRA fixes out-degree only).
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n];
        for &v in &self.neighbors {
            deg[v as usize] += 1;
        }
        deg
    }

    /// Count self-loop edges (CAGRA graphs should have none after
    /// optimization; the builder asserts on this in debug builds).
    pub fn self_loops(&self) -> usize {
        (0..self.n).map(|u| self.neighbors(u).iter().filter(|&&v| v as usize == u).count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, degree: usize) -> FixedDegreeGraph {
        let rows: Vec<Vec<u32>> =
            (0..n).map(|i| (1..=degree).map(|k| ((i + k) % n) as u32).collect()).collect();
        FixedDegreeGraph::from_rows(&rows, degree)
    }

    #[test]
    fn ring_shape() {
        let g = ring(5, 2);
        assert_eq!(g.len(), 5);
        assert_eq!(g.degree(), 2);
        assert_eq!(g.neighbors(3), &[4, 0]);
        assert_eq!(g.as_flat().len(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_neighbor_rejected() {
        FixedDegreeGraph::from_flat(vec![0, 5], 2, 1);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_shape_rejected() {
        FixedDegreeGraph::from_flat(vec![0, 1, 0], 2, 2);
    }

    #[test]
    fn in_degrees_sum_to_edges() {
        let g = ring(7, 3);
        let deg = g.in_degrees();
        assert_eq!(deg.iter().sum::<u32>() as usize, 7 * 3);
        assert!(deg.iter().all(|&d| d == 3)); // a ring shift is regular
    }

    #[test]
    fn self_loop_count() {
        let g = FixedDegreeGraph::from_flat(vec![0, 1, 1, 0], 2, 2);
        assert_eq!(g.self_loops(), 2); // node0->0 and node1->1
        assert_eq!(ring(4, 2).self_loops(), 0);
    }

    #[test]
    fn neighbors_mut_edits_in_place() {
        let mut g = ring(4, 2);
        g.neighbors_mut(0)[0] = 3;
        assert_eq!(g.neighbors(0), &[3, 2]);
    }
}
