//! Strongly connected components (iterative Tarjan).
//!
//! Sec. III-A of the paper assesses graph reachability property (1) by
//! the number of strong CCs: a node can reach every other node in its
//! strong component, so fewer components means fewer unreachable
//! targets from a random search start. Tarjan's algorithm is
//! implemented iteratively (graphs here have 10^5+ nodes; recursion
//! would overflow the stack).

use crate::adj::AdjacencyGraph;

/// Result of an SCC decomposition.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// `component[v]` is the id (0-based, reverse topological order of
    /// discovery) of the strong component containing `v`.
    pub component: Vec<u32>,
    /// Number of strong components.
    pub count: usize,
}

impl SccResult {
    /// Sizes of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest strong component.
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }
}

/// Decompose `g` into strongly connected components.
pub fn strongly_connected_components(g: &AdjacencyGraph) -> SccResult {
    let n = g.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0usize;

    // Explicit DFS frames: (node, next-edge-position).
    let mut frames: Vec<(u32, u32)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root as u32, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            let vu = v as usize;
            let neigh = g.neighbors(vu);
            if (*ei as usize) < neigh.len() {
                let w = neigh[*ei as usize];
                *ei += 1;
                let wu = w as usize;
                if index[wu] == UNVISITED {
                    index[wu] = next_index;
                    lowlink[wu] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wu] = true;
                    frames.push((w, 0));
                } else if on_stack[wu] {
                    lowlink[vu] = lowlink[vu].min(index[wu]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    let pu = parent as usize;
                    lowlink[pu] = lowlink[pu].min(lowlink[vu]);
                }
                if lowlink[vu] == index[vu] {
                    // v is the root of a component; pop it.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = count as u32;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }

    SccResult { component, count }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_component() {
        let g = AdjacencyGraph::from_lists(&[vec![1], vec![2], vec![0]]);
        let r = strongly_connected_components(&g);
        assert_eq!(r.count, 1);
        assert_eq!(r.largest(), 3);
    }

    #[test]
    fn chain_is_all_singletons() {
        let g = AdjacencyGraph::from_lists(&[vec![1], vec![2], vec![]]);
        let r = strongly_connected_components(&g);
        assert_eq!(r.count, 3);
        assert_eq!(r.sizes(), vec![1, 1, 1]);
    }

    #[test]
    fn two_cycles_bridged_one_way() {
        // {0,1} cycle -> {2,3} cycle, bridge 1->2 only.
        let g = AdjacencyGraph::from_lists(&[vec![1], vec![0, 2], vec![3], vec![2]]);
        let r = strongly_connected_components(&g);
        assert_eq!(r.count, 2);
        assert_eq!(r.component[0], r.component[1]);
        assert_eq!(r.component[2], r.component[3]);
        assert_ne!(r.component[0], r.component[2]);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(strongly_connected_components(&AdjacencyGraph::from_lists(&[])).count, 0);
        let g = AdjacencyGraph::from_lists(&[vec![]]);
        assert_eq!(strongly_connected_components(&g).count, 1);
    }

    #[test]
    fn self_loop_is_one_component() {
        let g = AdjacencyGraph::from_lists(&[vec![0]]);
        assert_eq!(strongly_connected_components(&g).count, 1);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 200k-node chain would blow a recursive Tarjan's call stack.
        let n = 200_000;
        let lists: Vec<Vec<u32>> =
            (0..n).map(|i| if i + 1 < n { vec![(i + 1) as u32] } else { vec![] }).collect();
        let g = AdjacencyGraph::from_lists(&lists);
        assert_eq!(strongly_connected_components(&g).count, n);
    }

    #[test]
    fn matches_naive_reachability_on_small_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(1..12);
            let lists: Vec<Vec<u32>> = (0..n)
                .map(|_| (0..n).filter(|_| rng.gen_bool(0.25)).map(|v| v as u32).collect())
                .collect();
            let g = AdjacencyGraph::from_lists(&lists);
            let r = strongly_connected_components(&g);
            // Naive: Floyd-Warshall reachability.
            let mut reach = vec![vec![false; n]; n];
            for (u, row) in reach.iter_mut().enumerate() {
                row[u] = true;
                for &v in g.neighbors(u) {
                    row[v as usize] = true;
                }
            }
            for k in 0..n {
                for i in 0..n {
                    for j in 0..n {
                        if reach[i][k] && reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
            for (i, ri) in reach.iter().enumerate() {
                for (j, &fwd) in ri.iter().enumerate() {
                    let same = r.component[i] == r.component[j];
                    let mutual = fwd && reach[j][i];
                    assert_eq!(same, mutual, "nodes {i},{j}");
                }
            }
        }
    }
}
