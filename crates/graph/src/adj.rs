//! Variable-degree directed graph in CSR form.
//!
//! Used by the non-CAGRA baselines (HNSW layers, NSSG, NSW) whose
//! out-degree is bounded but not fixed, and as the common exchange
//! format for the reachability analyses. Construction goes through a
//! builder of per-node `Vec`s and is finalized into CSR for compact,
//! cache-friendly traversal.

use crate::fixed::FixedDegreeGraph;

/// Immutable CSR directed graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdjacencyGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl AdjacencyGraph {
    /// Finalize per-node neighbor lists into CSR.
    ///
    /// # Panics
    /// Panics if any target id is out of range.
    pub fn from_lists(lists: &[Vec<u32>]) -> Self {
        let n = lists.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        offsets.push(0u32);
        for list in lists {
            for &t in list {
                assert!((t as usize) < n, "target id {t} out of range (n = {n})");
                targets.push(t);
            }
            offsets.push(targets.len() as u32);
        }
        AdjacencyGraph { offsets, targets }
    }

    /// View a fixed-degree graph as CSR (no copy of structure semantics).
    pub fn from_fixed(g: &FixedDegreeGraph) -> Self {
        let n = g.len();
        let d = g.degree();
        let offsets = (0..=n).map(|i| (i * d) as u32).collect();
        AdjacencyGraph { offsets, targets: g.as_flat().to_vec() }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Average out-degree (0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.edge_count() as f64 / self.len() as f64
    }

    /// Out-neighbors of `node`.
    #[inline]
    pub fn neighbors(&self, node: usize) -> &[u32] {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        &self.targets[lo..hi]
    }

    /// The graph with every edge reversed.
    pub fn reversed(&self) -> AdjacencyGraph {
        let n = self.len();
        let mut counts = vec![0u32; n];
        for &t in &self.targets {
            counts[t as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for i in 0..n {
            offsets.push(offsets[i] + counts[i]);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; self.targets.len()];
        for u in 0..n {
            for &v in self.neighbors(u) {
                let slot = cursor[v as usize];
                targets[slot as usize] = u as u32;
                cursor[v as usize] += 1;
            }
        }
        AdjacencyGraph { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> AdjacencyGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        AdjacencyGraph::from_lists(&[vec![1, 2], vec![3], vec![3], vec![]])
    }

    #[test]
    fn csr_layout() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.average_degree(), 1.0);
    }

    #[test]
    fn reversed_flips_edges() {
        let g = diamond().reversed();
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(0), &[] as &[u32]);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn double_reverse_is_identity_up_to_order() {
        let g = diamond();
        let rr = g.reversed().reversed();
        for u in 0..g.len() {
            let mut a = g.neighbors(u).to_vec();
            let mut b = rr.neighbors(u).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "node {u}");
        }
    }

    #[test]
    fn from_fixed_preserves_neighbors() {
        let f = FixedDegreeGraph::from_flat(vec![1, 2, 2, 0, 0, 1], 3, 2);
        let g = AdjacencyGraph::from_fixed(&f);
        assert_eq!(g.neighbors(1), &[2, 0]);
        assert_eq!(g.average_degree(), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_rejected() {
        AdjacencyGraph::from_lists(&[vec![1]]);
    }

    #[test]
    fn empty_graph() {
        let g = AdjacencyGraph::from_lists(&[]);
        assert!(g.is_empty());
        assert_eq!(g.average_degree(), 0.0);
        assert!(g.reversed().is_empty());
    }
}
