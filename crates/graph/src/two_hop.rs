//! Average 2-hop node count (reachability property 2 of Sec. III-A).
//!
//! For a node `u`, the 2-hop count is the number of *distinct* nodes
//! reachable in at most two edge traversals, excluding `u` itself. For
//! a fixed-degree-`d` graph its maximum is `d + d^2`; the paper uses
//! the dataset-wide average to quantify how much of the graph a fixed
//! number of search iterations can explore.

use crate::adj::AdjacencyGraph;
use crate::fixed::FixedDegreeGraph;

/// Exact 2-hop count for one node using a stamped visited array.
fn two_hop_one(g: &AdjacencyGraph, u: usize, stamp: &mut [u32], cur: u32) -> usize {
    let mut count = 0usize;
    stamp[u] = cur; // exclude self
    for &v in g.neighbors(u) {
        let v = v as usize;
        if stamp[v] != cur {
            stamp[v] = cur;
            count += 1;
        }
        for &w in g.neighbors(v) {
            let w = w as usize;
            if stamp[w] != cur {
                stamp[w] = cur;
                count += 1;
            }
        }
    }
    count
}

/// Average 2-hop node count over all nodes (exact).
pub fn average_two_hop(g: &AdjacencyGraph) -> f64 {
    let n = g.len();
    if n == 0 {
        return 0.0;
    }
    let mut stamp = vec![u32::MAX; n];
    let mut total = 0usize;
    for u in 0..n {
        total += two_hop_one(g, u, &mut stamp, u as u32);
    }
    total as f64 / n as f64
}

/// Average 2-hop node count estimated on a node sample. Deterministic:
/// samples `max(1, n/stride)` evenly spaced nodes. Exact when
/// `stride == 1`. Used on large graphs where exact counting dominates
/// the experiment's runtime.
pub fn average_two_hop_sampled(g: &AdjacencyGraph, stride: usize) -> f64 {
    let n = g.len();
    if n == 0 {
        return 0.0;
    }
    let stride = stride.max(1);
    let mut stamp = vec![u32::MAX; n];
    let mut total = 0usize;
    let mut samples = 0usize;
    let mut u = 0usize;
    while u < n {
        total += two_hop_one(g, u, &mut stamp, samples as u32);
        samples += 1;
        u += stride;
    }
    total as f64 / samples as f64
}

/// Convenience wrapper for fixed-degree graphs.
pub fn average_two_hop_fixed(g: &FixedDegreeGraph) -> f64 {
    average_two_hop(&AdjacencyGraph::from_fixed(g))
}

/// Theoretical maximum 2-hop count for degree `d` (`d + d^2`).
pub fn max_two_hop(d: usize) -> usize {
    d + d * d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_tree_reaches_maximum() {
        // Node 0 -> {1,2}; 1 -> {3,4}; 2 -> {5,6}; leaves loop among
        // themselves far away, so from node 0 the 2-hop set is exactly
        // d + d^2 = 6 distinct nodes.
        let g = AdjacencyGraph::from_lists(&[
            vec![1, 2],
            vec![3, 4],
            vec![5, 6],
            vec![4, 5],
            vec![3, 6],
            vec![6, 3],
            vec![5, 4],
        ]);
        let mut stamp = vec![u32::MAX; g.len()];
        assert_eq!(two_hop_one(&g, 0, &mut stamp, 0), max_two_hop(2));
    }

    #[test]
    fn duplicates_and_self_do_not_count() {
        // 0 -> 1 -> 0: from 0 we can reach {1} in one hop and {0} in
        // two, but self is excluded, so the count is 1.
        let g = AdjacencyGraph::from_lists(&[vec![1], vec![0]]);
        assert_eq!(average_two_hop(&g), 1.0);
    }

    #[test]
    fn ring_of_five_degree_one() {
        // Each node reaches exactly 2 distinct others in <=2 hops.
        let lists: Vec<Vec<u32>> = (0..5).map(|i| vec![((i + 1) % 5) as u32]).collect();
        let g = AdjacencyGraph::from_lists(&lists);
        assert_eq!(average_two_hop(&g), 2.0);
    }

    #[test]
    fn sampled_with_stride_one_is_exact() {
        let lists: Vec<Vec<u32>> =
            (0..20).map(|i| vec![((i + 1) % 20) as u32, ((i + 7) % 20) as u32]).collect();
        let g = AdjacencyGraph::from_lists(&lists);
        assert_eq!(average_two_hop(&g), average_two_hop_sampled(&g, 1));
    }

    #[test]
    fn sampled_is_close_on_regular_graph() {
        let lists: Vec<Vec<u32>> =
            (0..100).map(|i| vec![((i + 1) % 100) as u32, ((i + 13) % 100) as u32]).collect();
        let g = AdjacencyGraph::from_lists(&lists);
        let exact = average_two_hop(&g);
        let approx = average_two_hop_sampled(&g, 7);
        assert!((exact - approx).abs() < 0.5, "exact {exact} approx {approx}");
    }

    #[test]
    fn empty_graph_is_zero() {
        assert_eq!(average_two_hop(&AdjacencyGraph::from_lists(&[])), 0.0);
    }

    #[test]
    fn max_two_hop_formula() {
        assert_eq!(max_two_hop(32), 32 + 32 * 32);
    }

    #[test]
    fn fixed_wrapper_agrees() {
        let f = FixedDegreeGraph::from_flat(vec![1, 2, 2, 0, 0, 1], 3, 2);
        let a = AdjacencyGraph::from_fixed(&f);
        assert_eq!(average_two_hop_fixed(&f), average_two_hop(&a));
    }
}
