//! Graph substrate invariants over arbitrary digraphs.

use graph::scc::strongly_connected_components;
use graph::two_hop::{average_two_hop, max_two_hop};
use graph::{AdjacencyGraph, FixedDegreeGraph};
use proptest::prelude::*;

/// Arbitrary digraph as adjacency lists over `n` nodes.
fn digraph() -> impl Strategy<Value = Vec<Vec<u32>>> {
    (1usize..16).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0..n as u32, 0..n), n..=n)
    })
}

proptest! {
    #[test]
    fn double_reverse_preserves_edge_multiset(lists in digraph()) {
        let g = AdjacencyGraph::from_lists(&lists);
        let rr = g.reversed().reversed();
        prop_assert_eq!(g.edge_count(), rr.edge_count());
        for u in 0..g.len() {
            let mut a = g.neighbors(u).to_vec();
            let mut b = rr.neighbors(u).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn scc_component_count_bounds(lists in digraph()) {
        let g = AdjacencyGraph::from_lists(&lists);
        let r = strongly_connected_components(&g);
        prop_assert!(r.count >= 1 && r.count <= g.len());
        prop_assert_eq!(r.sizes().iter().sum::<usize>(), g.len());
        // SCC of the reversed graph has the same component count.
        let rrev = strongly_connected_components(&g.reversed());
        prop_assert_eq!(r.count, rrev.count);
    }

    #[test]
    fn scc_members_are_mutually_reachable(lists in digraph()) {
        let g = AdjacencyGraph::from_lists(&lists);
        let r = strongly_connected_components(&g);
        // BFS reachability oracle.
        let n = g.len();
        let reach = |from: usize| -> Vec<bool> {
            let mut seen = vec![false; n];
            let mut stack = vec![from];
            seen[from] = true;
            while let Some(v) = stack.pop() {
                for &u in g.neighbors(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        stack.push(u as usize);
                    }
                }
            }
            seen
        };
        for i in 0..n {
            let ri = reach(i);
            for (j, &reachable) in ri.iter().enumerate() {
                if r.component[i] == r.component[j] {
                    prop_assert!(reachable, "{i} cannot reach same-component {j}");
                }
            }
        }
    }

    #[test]
    fn two_hop_respects_fixed_degree_bounds(n in 4usize..20, seed in any::<u64>()) {
        // Build a random fixed-degree-3 graph without self loops.
        let d = 3;
        prop_assume!(n > d);
        let mut x = seed | 1;
        let mut flat = Vec::with_capacity(n * d);
        for v in 0..n {
            let mut picked = Vec::new();
            while picked.len() < d {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let c = (x >> 33) as usize % n;
                if c != v && !picked.contains(&(c as u32)) {
                    picked.push(c as u32);
                }
            }
            flat.extend_from_slice(&picked);
        }
        let g = FixedDegreeGraph::from_flat(flat, n, d);
        let avg = average_two_hop(&AdjacencyGraph::from_fixed(&g));
        // Distinct non-self out-edges guarantee at least d reachable
        // nodes; the maximum is d + d^2 (and also n - 1).
        prop_assert!(avg >= d as f64 - 1e-9, "avg {avg} below degree {d}");
        prop_assert!(avg <= max_two_hop(d) as f64 + 1e-9);
        prop_assert!(avg <= (n - 1) as f64 + 1e-9);
    }
}
